#![forbid(unsafe_code)]
//! Umbrella crate for the SAFEXPLAIN reproduction.
//!
//! Re-exports every member crate under a short alias so the examples and
//! integration tests can write `safexplain::nn::...` etc. Library users
//! should normally depend on the individual `safex-*` crates directly.

pub mod demo;

pub use safex_core as core;
pub use safex_fusa as fusa;
pub use safex_nn as nn;
pub use safex_patterns as patterns;
pub use safex_platform as platform;
pub use safex_scenarios as scenarios;
pub use safex_supervision as supervision;
pub use safex_tensor as tensor;
pub use safex_timing as timing;
pub use safex_trace as trace;
pub use safex_xai as xai;
