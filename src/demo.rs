//! Shared helpers for the examples and integration tests.
//!
//! These wrap the common "generate a scenario, train a classifier on it"
//! preamble so each example can focus on the pillar it demonstrates. They
//! are *demo* utilities: a real deployment trains off-board and ships a
//! frozen model.

use safex_nn::model::ModelBuilder;
use safex_nn::train::{SgdConfig, Trainer};
use safex_nn::{Engine, Model, NnError};
use safex_scenarios::Dataset;
use safex_tensor::DetRng;

/// Trains a small MLP classifier (`flatten -> dense 48 -> relu -> dense
/// classes -> softmax`) on a dataset for the given number of epochs.
///
/// Deterministic: the same `(dataset, epochs, seed)` triple yields a
/// bit-identical model.
///
/// # Errors
///
/// Propagates model-construction and training failures.
pub fn train_mlp(data: &Dataset, epochs: usize, seed: u64) -> Result<Model, NnError> {
    let mut rng = DetRng::new(seed);
    let mut model = ModelBuilder::new(data.shape())
        .flatten()
        .dense(48, &mut rng)?
        .relu()
        .dense(data.classes(), &mut rng)?
        .softmax()
        .build()?;
    let inputs = data.inputs_owned();
    let labels = data.labels();
    // lr 0.02 is stable across all three scenario domains and seeds
    // (0.05 + momentum 0.9 occasionally diverges on the space imagery,
    // whose background intensity is higher).
    let mut trainer = Trainer::new(SgdConfig {
        learning_rate: 0.02,
        momentum: 0.9,
        batch_size: 16,
    })?;
    for _ in 0..epochs {
        trainer.train_epoch(&mut model, &inputs, &labels, &mut rng)?;
    }
    Ok(model)
}

/// Builds a small (untrained) convolutional model matching a dataset's
/// input shape — the workload shape the timing experiments execute.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn convnet_for(data: &Dataset, seed: u64) -> Result<Model, NnError> {
    let mut rng = DetRng::new(seed);
    ModelBuilder::new(data.shape())
        .conv2d(4, 3, 1, 1, &mut rng)?
        .relu()
        .maxpool2d(2, 2)?
        .flatten()
        .dense(data.classes(), &mut rng)?
        .softmax()
        .build()
}

/// Classification accuracy of an engine over a dataset.
///
/// # Errors
///
/// Propagates inference failures.
pub fn accuracy(engine: &mut Engine, data: &Dataset) -> Result<f64, NnError> {
    let mut correct = 0usize;
    for s in data.samples() {
        if engine.classify(&s.input)?.class == s.label {
            correct += 1;
        }
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_scenarios::automotive::{self, AutomotiveConfig};

    #[test]
    fn mlp_learns_automotive() {
        let mut rng = DetRng::new(1);
        let data = automotive::generate(
            &AutomotiveConfig {
                samples_per_class: 20,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let model = train_mlp(&data, 15, 7).unwrap();
        let mut engine = Engine::new(model);
        let acc = accuracy(&mut engine, &data).unwrap();
        assert!(acc > 0.8, "training accuracy {acc}");
    }

    #[test]
    fn helpers_deterministic() {
        let mut rng = DetRng::new(2);
        let data = automotive::generate(
            &AutomotiveConfig {
                samples_per_class: 5,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        let a = train_mlp(&data, 3, 9).unwrap();
        let b = train_mlp(&data, 3, 9).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = convnet_for(&data, 1).unwrap();
        assert_eq!(c.input_shape(), data.shape());
    }
}
