//! Experiment E5 support: determinism and reproducibility guarantees of
//! the DL library, measured across crates.

use safexplain::demo;
use safexplain::nn::{Engine, QEngine, QModel};
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::tensor::fixed::Q16_16;
use safexplain::tensor::DetRng;

fn dataset(samples_per_class: usize, seed: u64) -> safexplain::scenarios::Dataset {
    automotive::generate(
        &AutomotiveConfig {
            samples_per_class,
            ..Default::default()
        },
        &mut DetRng::new(seed),
    )
    .expect("generate")
}

#[test]
fn float_inference_bit_identical_across_runs_and_engines() {
    let data = dataset(5, 1);
    let model = demo::convnet_for(&data, 9).expect("model");
    let mut e1 = Engine::new(model.clone());
    let mut e2 = Engine::new(model);
    for s in data.samples() {
        let a = e1.infer(&s.input).expect("infer").to_vec();
        for _ in 0..3 {
            assert_eq!(e1.infer(&s.input).expect("infer"), &a[..]);
        }
        assert_eq!(e2.infer(&s.input).expect("infer"), &a[..]);
    }
}

#[test]
fn training_reproducible_end_to_end() {
    // Same data + same seeds -> bit-identical model, bit-identical outputs.
    let d1 = dataset(10, 2);
    let d2 = dataset(10, 2);
    assert_eq!(d1, d2, "dataset generation must be reproducible");
    let m1 = demo::train_mlp(&d1, 10, 3).expect("train");
    let m2 = demo::train_mlp(&d2, 10, 3).expect("train");
    assert_eq!(m1.digest(), m2.digest(), "training must be reproducible");

    let mut e1 = Engine::new(m1);
    let mut e2 = Engine::new(m2);
    let probe = &d1.samples()[0].input;
    assert_eq!(e1.infer(probe).expect("infer"), e2.infer(probe).expect("infer"));
}

#[test]
fn quantised_engine_bit_exact_and_close_to_float() {
    let data = dataset(10, 4);
    let model = demo::train_mlp(&data, 15, 5).expect("train");
    let qmodel = QModel::quantize(&model).expect("quantize");
    let mut fe = Engine::new(model);
    let mut qe1 = QEngine::new(qmodel.clone());
    let mut qe2 = QEngine::new(qmodel);

    let mut agree = 0usize;
    let mut max_dev = 0.0f32;
    for s in data.samples() {
        let q: Vec<Q16_16> = s.input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let out1: Vec<Q16_16> = qe1.infer(&q).expect("infer").to_vec();
        let out2: Vec<Q16_16> = qe2.infer(&q).expect("infer").to_vec();
        assert_eq!(out1, out2, "quantised engines must agree bit-exactly");

        let fout = fe.infer(&s.input).expect("infer").to_vec();
        let fclass = argmax(&fout);
        let qclass = argmax(&out1.iter().map(|v| v.to_f32()).collect::<Vec<_>>());
        if fclass == qclass {
            agree += 1;
        }
        for (f, q) in fout.iter().zip(&out1) {
            max_dev = max_dev.max((f - q.to_f32()).abs());
        }
    }
    let rate = agree as f64 / data.len() as f64;
    assert!(rate >= 0.95, "float/quant class agreement {rate}");
    assert!(max_dev < 0.05, "max probability deviation {max_dev}");
}

#[test]
fn quantisation_accuracy_cost_is_small() {
    let mut rng = DetRng::new(6);
    let data = dataset(20, 6);
    let (train, test) = data.split(0.7, &mut rng).expect("split");
    let model = demo::train_mlp(&train, 30, 7).expect("train");
    let mut fe = Engine::new(model.clone());
    let facc = demo::accuracy(&mut fe, &test).expect("accuracy");

    let mut qe = QEngine::new(QModel::quantize(&model).expect("quantize"));
    let mut qcorrect = 0usize;
    for s in test.samples() {
        let q: Vec<Q16_16> = s.input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let (pred, _) = qe.classify(&q).expect("classify");
        if pred == s.label {
            qcorrect += 1;
        }
    }
    let qacc = qcorrect as f64 / test.len() as f64;
    assert!(
        (facc - qacc).abs() <= 0.05,
        "quantisation accuracy cost too high: float {facc} vs quant {qacc}"
    );
}

#[test]
fn deterministic_platform_timing_is_constant() {
    use safexplain::platform::platform::{Platform, PlatformConfig};
    use safexplain::platform::TraceProgram;

    let data = dataset(2, 8);
    let model = demo::convnet_for(&data, 11).expect("model");
    let program = TraceProgram::from_model(&model, 256);
    let platform = Platform::new(PlatformConfig::deterministic()).expect("platform");
    let cycles = platform
        .measure(&program, 20, &mut DetRng::new(1))
        .expect("measure");
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "deterministic platform must have zero jitter: {cycles:?}"
    );
}

#[test]
fn explanation_deterministic_across_runs() {
    use safexplain::xai::saliency::{occlusion_saliency, OcclusionConfig};

    let data = dataset(3, 9);
    let model = demo::convnet_for(&data, 12).expect("model");
    let mut engine = Engine::new(model);
    let sample = &data.samples()[5];
    let a = occlusion_saliency(&mut engine, &sample.input, 0, &OcclusionConfig::default())
        .expect("saliency");
    let b = occlusion_saliency(&mut engine, &sample.input, 0, &OcclusionConfig::default())
        .expect("saliency");
    assert_eq!(a, b);
}

fn argmax(v: &[f32]) -> usize {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, &x) in v.iter().enumerate() {
        if x > best.1 {
            best = (i, x);
        }
    }
    best.0
}
