//! Experiment E5 support: determinism and reproducibility guarantees of
//! the DL library, measured across crates.

use safexplain::demo;
use safexplain::nn::{Engine, QEngine, QModel};
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::tensor::fixed::Q16_16;
use safexplain::tensor::DetRng;

fn dataset(samples_per_class: usize, seed: u64) -> safexplain::scenarios::Dataset {
    automotive::generate(
        &AutomotiveConfig {
            samples_per_class,
            ..Default::default()
        },
        &mut DetRng::new(seed),
    )
    .expect("generate")
}

#[test]
fn float_inference_bit_identical_across_runs_and_engines() {
    let data = dataset(5, 1);
    let model = demo::convnet_for(&data, 9).expect("model");
    let mut e1 = Engine::new(model.clone());
    let mut e2 = Engine::new(model);
    for s in data.samples() {
        let a = e1.infer(&s.input).expect("infer").to_vec();
        for _ in 0..3 {
            assert_eq!(e1.infer(&s.input).expect("infer"), &a[..]);
        }
        assert_eq!(e2.infer(&s.input).expect("infer"), &a[..]);
    }
}

#[test]
fn training_reproducible_end_to_end() {
    // Same data + same seeds -> bit-identical model, bit-identical outputs.
    let d1 = dataset(10, 2);
    let d2 = dataset(10, 2);
    assert_eq!(d1, d2, "dataset generation must be reproducible");
    let m1 = demo::train_mlp(&d1, 10, 3).expect("train");
    let m2 = demo::train_mlp(&d2, 10, 3).expect("train");
    assert_eq!(m1.digest(), m2.digest(), "training must be reproducible");

    let mut e1 = Engine::new(m1);
    let mut e2 = Engine::new(m2);
    let probe = &d1.samples()[0].input;
    assert_eq!(
        e1.infer(probe).expect("infer"),
        e2.infer(probe).expect("infer")
    );
}

#[test]
fn quantised_engine_bit_exact_and_close_to_float() {
    let data = dataset(10, 4);
    let model = demo::train_mlp(&data, 15, 5).expect("train");
    let qmodel = QModel::quantize(&model).expect("quantize");
    let mut fe = Engine::new(model);
    let mut qe1 = QEngine::new(qmodel.clone());
    let mut qe2 = QEngine::new(qmodel);

    let mut agree = 0usize;
    let mut max_dev = 0.0f32;
    for s in data.samples() {
        let q: Vec<Q16_16> = s.input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let out1: Vec<Q16_16> = qe1.infer(&q).expect("infer").to_vec();
        let out2: Vec<Q16_16> = qe2.infer(&q).expect("infer").to_vec();
        assert_eq!(out1, out2, "quantised engines must agree bit-exactly");

        let fout = fe.infer(&s.input).expect("infer").to_vec();
        let fclass = argmax(&fout);
        let qclass = argmax(&out1.iter().map(|v| v.to_f32()).collect::<Vec<_>>());
        if fclass == qclass {
            agree += 1;
        }
        for (f, q) in fout.iter().zip(&out1) {
            max_dev = max_dev.max((f - q.to_f32()).abs());
        }
    }
    let rate = agree as f64 / data.len() as f64;
    assert!(rate >= 0.95, "float/quant class agreement {rate}");
    assert!(max_dev < 0.05, "max probability deviation {max_dev}");
}

#[test]
fn quantisation_accuracy_cost_is_small() {
    let mut rng = DetRng::new(6);
    let data = dataset(20, 6);
    let (train, test) = data.split(0.7, &mut rng).expect("split");
    let model = demo::train_mlp(&train, 30, 7).expect("train");
    let mut fe = Engine::new(model.clone());
    let facc = demo::accuracy(&mut fe, &test).expect("accuracy");

    let mut qe = QEngine::new(QModel::quantize(&model).expect("quantize"));
    let mut qcorrect = 0usize;
    for s in test.samples() {
        let q: Vec<Q16_16> = s.input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        if qe.classify(&q).expect("classify").class == s.label {
            qcorrect += 1;
        }
    }
    let qacc = qcorrect as f64 / test.len() as f64;
    assert!(
        (facc - qacc).abs() <= 0.05,
        "quantisation accuracy cost too high: float {facc} vs quant {qacc}"
    );
}

#[test]
fn deterministic_platform_timing_is_constant() {
    use safexplain::platform::platform::{Platform, PlatformConfig};
    use safexplain::platform::TraceProgram;

    let data = dataset(2, 8);
    let model = demo::convnet_for(&data, 11).expect("model");
    let program = TraceProgram::from_model(&model, 256);
    let platform = Platform::new(PlatformConfig::deterministic()).expect("platform");
    let cycles = platform
        .measure(&program, 20, &mut DetRng::new(1))
        .expect("measure");
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "deterministic platform must have zero jitter: {cycles:?}"
    );
}

#[test]
fn explanation_deterministic_across_runs() {
    use safexplain::xai::saliency::{occlusion_saliency, OcclusionConfig};

    let data = dataset(3, 9);
    let model = demo::convnet_for(&data, 12).expect("model");
    let mut engine = Engine::new(model);
    let sample = &data.samples()[5];
    let a = occlusion_saliency(&mut engine, &sample.input, 0, &OcclusionConfig::default())
        .expect("saliency");
    let b = occlusion_saliency(&mut engine, &sample.input, 0, &OcclusionConfig::default())
        .expect("saliency");
    assert_eq!(a, b);
}

fn argmax(v: &[f32]) -> usize {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, &x) in v.iter().enumerate() {
        if x > best.1 {
            best = (i, x);
        }
    }
    best.0
}

/// The pool determinism matrix: every worker count in {1, 2, 4, 8} must
/// produce byte-identical batch outputs for the float engine.
#[test]
fn float_pool_bit_identical_across_worker_counts() {
    use safexplain::nn::EnginePool;

    let data = dataset(10, 13);
    let model = demo::train_mlp(&data, 10, 3).expect("train");
    let inputs: Vec<Vec<f32>> = data.samples().iter().map(|s| s.input.clone()).collect();

    let mut reference = Engine::new(model.clone());
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| reference.infer(x).expect("infer").to_vec())
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let mut pool = EnginePool::new(model.clone(), workers).expect("pool");
        let outputs = pool.infer_batch(&inputs).expect("batch");
        assert_eq!(
            outputs, expected,
            "float pool with {workers} workers diverged from sequential"
        );
        // Byte-identical, not merely numerically equal: compare raw bits.
        for (out, exp) in outputs.iter().zip(&expected) {
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = exp.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ob, eb, "float bits diverged at {workers} workers");
        }
    }
}

/// Same matrix for the fixed-point engine: Q16.16 outputs are integers,
/// so equality is already bitwise.
#[test]
fn quant_pool_bit_identical_across_worker_counts() {
    use safexplain::nn::QEnginePool;

    let data = dataset(10, 14);
    let model = demo::train_mlp(&data, 10, 4).expect("train");
    let qmodel = QModel::quantize(&model).expect("quantize");
    let inputs: Vec<Vec<Q16_16>> = data
        .samples()
        .iter()
        .map(|s| s.input.iter().map(|&v| Q16_16::from_f32(v)).collect())
        .collect();

    let mut reference = QEngine::new(qmodel.clone());
    let expected: Vec<Vec<Q16_16>> = inputs
        .iter()
        .map(|x| reference.infer(x).expect("infer").to_vec())
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let mut pool = QEnginePool::new(qmodel.clone(), workers).expect("pool");
        let outputs = pool.infer_batch(&inputs).expect("batch");
        assert_eq!(
            outputs, expected,
            "quant pool with {workers} workers diverged from sequential"
        );
    }
}

/// Pooled classification agrees with pooled inference for every worker
/// count (same argmax over the same bit-identical outputs).
#[test]
fn pool_classification_matrix_consistent() {
    use safexplain::nn::EnginePool;

    let data = dataset(8, 15);
    let model = demo::train_mlp(&data, 10, 5).expect("train");
    let inputs: Vec<Vec<f32>> = data.samples().iter().map(|s| s.input.clone()).collect();

    let mut reference = Engine::new(model.clone());
    let expected: Vec<usize> = inputs
        .iter()
        .map(|x| reference.classify(x).expect("classify").class)
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let mut pool = EnginePool::new(model.clone(), workers).expect("pool");
        let classes: Vec<usize> = pool
            .classify_batch(&inputs)
            .expect("classify")
            .into_iter()
            .map(|c| c.class)
            .collect();
        assert_eq!(classes, expected, "classes diverged at {workers} workers");
    }
}

/// The chunked dense kernel's own determinism matrix: it reassociates the
/// f64 accumulation (so it is *not* bit-compatible with `Exact`, which is
/// why `Exact` stays the default), but it must be bit-identical across
/// runs, engines, and pool worker counts, and numerically within 1e-5 of
/// the exact kernel.
#[test]
fn chunked_kernel_bit_identical_across_runs_and_worker_counts() {
    use safexplain::nn::{DenseKernel, EnginePool};

    let data = dataset(10, 16);
    let model = demo::train_mlp(&data, 10, 6).expect("train");
    let inputs: Vec<Vec<f32>> = data.samples().iter().map(|s| s.input.clone()).collect();

    let mut chunked = Engine::with_kernel(model.clone(), DenseKernel::Chunked);
    let expected: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| chunked.infer(x).expect("infer").to_vec())
        .collect();

    // Run-to-run and engine-to-engine bit equality.
    let mut again = Engine::with_kernel(model.clone(), DenseKernel::Chunked);
    for (x, exp) in inputs.iter().zip(&expected) {
        assert_eq!(chunked.infer(x).expect("infer"), &exp[..]);
        assert_eq!(again.infer(x).expect("infer"), &exp[..]);
    }

    // Numerically tracks the exact kernel.
    let mut exact = Engine::new(model.clone());
    for (x, exp) in inputs.iter().zip(&expected) {
        for (c, e) in exp.iter().zip(exact.infer(x).expect("infer")) {
            assert!(
                (c - e).abs() < 1e-5,
                "chunked kernel drifted from exact: {c} vs {e}"
            );
        }
    }

    // Worker-count matrix: static partitioning makes the kernel choice
    // orthogonal to pooling.
    for workers in [1usize, 2, 4, 8] {
        let mut pool =
            EnginePool::with_kernel(model.clone(), workers, DenseKernel::Chunked).expect("pool");
        let outputs = pool.infer_batch(&inputs).expect("batch");
        for (out, exp) in outputs.iter().zip(&expected) {
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = exp.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ob, eb, "chunked bits diverged at {workers} workers");
        }
    }
}

/// The fused verify-on-read strategy joins the kernel matrix: hardened
/// pools running `CrcStrategy::Fused` must be bit-identical to the
/// sequential hardened engine for every worker count in {1, 2, 4, 8},
/// for both the float and the Q16.16 engine — and, with pristine
/// weights, must reproduce the bare engines' answers exactly (the
/// in-pass digest accumulation may not perturb the arithmetic).
#[test]
fn fused_pool_matrix_bit_identical_for_float_and_quant() {
    use safexplain::nn::{
        CrcStrategy, HardenConfig, HardenedEngine, HardenedPool, HardenedQEngine, HardenedQPool,
    };

    let data = dataset(10, 17);
    let model = demo::train_mlp(&data, 10, 7).expect("train");
    let inputs: Vec<Vec<f32>> = data.samples().iter().map(|s| s.input.clone()).collect();
    let harden = HardenConfig {
        crc_strategy: CrcStrategy::Fused,
        crc_cadence: 2,
        ..HardenConfig::default()
    };

    // Float matrix.
    let mut seq = HardenedEngine::new(model.clone(), harden).expect("harden");
    seq.calibrate(&inputs).expect("calibrate");
    let mut bare = Engine::new(model.clone());
    let mut expected = Vec::new();
    for (i, x) in inputs.iter().enumerate() {
        let c = seq.classify_indexed(i as u64, x).expect("classify");
        assert!(
            seq.last_events().is_empty(),
            "clean weights must stay silent"
        );
        let b = bare.classify(x).expect("classify");
        assert_eq!(
            (c.class, c.confidence.to_bits()),
            (b.class, b.confidence.to_bits()),
            "fused verification perturbed the bare float answer"
        );
        expected.push(c);
    }
    for workers in [1usize, 2, 4, 8] {
        let mut fresh = HardenedEngine::new(model.clone(), harden).expect("harden");
        fresh.calibrate(&inputs).expect("calibrate");
        let mut pool = HardenedPool::new(&fresh, workers).expect("pool");
        let out = pool.classify_batch(&inputs).expect("batch");
        assert_eq!(out.len(), expected.len());
        for (got, exp) in out.iter().zip(&expected) {
            assert_eq!(
                got.classification, *exp,
                "fused float pool diverged at {workers} workers"
            );
            assert!(got.events.is_empty());
        }
    }

    // Q16.16 matrix: fixed-point outputs are integers, so equality is
    // already bitwise.
    let qmodel = QModel::quantize(&model).expect("quantize");
    let qinputs: Vec<Vec<Q16_16>> = inputs
        .iter()
        .map(|x| x.iter().map(|&v| Q16_16::from_f32(v)).collect())
        .collect();
    let mut qseq = HardenedQEngine::new(qmodel.clone(), harden).expect("harden");
    qseq.calibrate(&qinputs).expect("calibrate");
    let mut qbare = QEngine::new(qmodel.clone());
    let mut qexpected = Vec::new();
    for (i, x) in qinputs.iter().enumerate() {
        let c = qseq.classify_indexed(i as u64, x).expect("classify");
        let b = qbare.classify(x).expect("classify");
        assert_eq!(
            c.class, b.class,
            "fused verification perturbed the bare quant answer"
        );
        qexpected.push(c);
    }
    for workers in [1usize, 2, 4, 8] {
        let mut fresh = HardenedQEngine::new(qmodel.clone(), harden).expect("harden");
        fresh.calibrate(&qinputs).expect("calibrate");
        let mut pool = HardenedQPool::new(&fresh, workers).expect("pool");
        let out = pool.classify_batch(&qinputs).expect("batch");
        assert_eq!(out.len(), qexpected.len());
        for (got, exp) in out.iter().zip(&qexpected) {
            assert_eq!(
                got.classification, *exp,
                "fused quant pool diverged at {workers} workers"
            );
            assert!(got.events.is_empty());
        }
    }
}

/// `SafePipeline::decide_batch` must append evidence records in input
/// order, and its decisions must match one-at-a-time `decide` calls.
#[test]
fn pipeline_batch_evidence_preserves_input_order() {
    use safexplain::core::pipeline::PipelineBuilder;
    use safexplain::patterns::channel::RuleChannel;
    use safexplain::patterns::pattern::Bare;
    use safexplain::patterns::Sil;
    use safexplain::trace::record::Value;

    // A rule channel whose class equals the integer in the input, so the
    // expected evidence sequence is readable from the batch itself.
    let build = || {
        PipelineBuilder::new("order", Sil::Sil1)
            .pattern(Bare::new(RuleChannel::new("id", |x: &[f32]| x[0] as usize)))
            .allow_under_provisioned()
            .evidence("order-campaign")
            .build()
            .expect("build")
    };
    let inputs: Vec<Vec<f32>> = vec![
        vec![3.0],
        vec![0.0],
        vec![2.0],
        vec![5.0],
        vec![1.0],
        vec![4.0],
    ];

    let mut batched = build();
    let decisions = batched.decide_batch(&inputs).expect("batch");
    assert_eq!(decisions.len(), inputs.len());
    assert_eq!(batched.decision_count(), inputs.len() as u64);

    let mut sequential = build();
    for (input, batched_decision) in inputs.iter().zip(&decisions) {
        let d = sequential.decide(input).expect("decide");
        assert_eq!(d, *batched_decision, "batch must equal per-input decide");
    }

    // Evidence records land in input order with the matching class.
    let chain = batched.evidence().expect("chain");
    assert_eq!(chain.len(), inputs.len());
    for (record, input) in chain.records().iter().zip(&inputs) {
        assert_eq!(
            record.field("class"),
            Some(&Value::U64(input[0] as u64)),
            "evidence record out of input order"
        );
    }
    batched.verify_evidence().expect("verify");
}
