//! Experiment E9 support: evidence-chain integrity under tampering.

use safexplain::tensor::DetRng;
use safexplain::trace::record::{RecordKind, Value};
use safexplain::trace::EvidenceChain;

fn campaign_chain(records: usize) -> EvidenceChain {
    let mut chain = EvidenceChain::new("e9");
    chain.append(
        RecordKind::DatasetGenerated,
        vec![("seed".into(), Value::U64(42))],
    );
    chain.append(
        RecordKind::ModelTrained,
        vec![("digest".into(), Value::U64(0xabcdef))],
    );
    for i in 0..records {
        chain.append(
            RecordKind::InferencePerformed,
            vec![
                ("frame".into(), Value::U64(i as u64)),
                ("class".into(), Value::U64((i % 4) as u64)),
                ("confidence".into(), Value::F64(0.9)),
            ],
        );
    }
    chain
}

#[test]
fn content_tampering_always_detected() {
    let mut rng = DetRng::new(1);
    let n = 100;
    let mut detected = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let mut chain = campaign_chain(n);
        let victim = rng.below_usize(chain.len());
        let new_class = rng.below(1000);
        chain.simulate_tamper(victim, |r| {
            r.fields.push(("tampered".into(), Value::U64(new_class)));
        });
        if chain.verify().is_err() {
            detected += 1;
        }
    }
    assert_eq!(
        detected, trials,
        "content tampering must always be detected"
    );
}

#[test]
fn rehashed_tampering_detected_everywhere_but_the_head() {
    let n = 50;
    let len = campaign_chain(n).len();
    // Tamper each position in turn, recomputing the record's own hash
    // (the stronger adversary).
    for victim in 0..len {
        let mut chain = campaign_chain(n);
        chain.simulate_tamper(victim, |r| {
            r.fields.push(("evil".into(), Value::Bool(true)));
            r.hash = r.computed_hash();
        });
        let result = chain.verify();
        if victim == len - 1 {
            // Head rewrite verifies internally; the external anchor must
            // catch it.
            assert!(result.is_ok());
            assert_ne!(
                chain.head_hash(),
                campaign_chain(n).head_hash(),
                "anchored head hash must differ"
            );
        } else {
            let defect = result.expect_err("must detect");
            assert_eq!(
                defect.index,
                victim as u64 + 1,
                "broken link surfaces at the successor"
            );
        }
    }
}

#[test]
fn record_deletion_detected() {
    // Simulate deletion by rebuilding a chain without one record: the
    // indices and links of the survivors no longer verify when spliced.
    let chain = campaign_chain(20);
    let records = chain.records();
    // A forged chain that simply drops record 5 and keeps the rest
    // verbatim breaks both the index sequence and the hash links.
    let mut forged = EvidenceChain::new("e9");
    // Recreate records 0..5 legitimately.
    for r in &records[..5] {
        forged.append(r.kind, r.fields.clone());
    }
    // Now splice in record 6's *original* content; its prev_hash cannot
    // match the forged chain's head (which differs from the original
    // record 5's hash chain-state by construction of logical time).
    let spliced_head = forged.head_hash();
    assert_ne!(
        spliced_head, records[6].prev_hash,
        "dropping a record leaves an unlinkable successor"
    );
}

#[test]
fn verification_cost_scales_linearly() {
    // Smoke check (not a benchmark): verifying 10x the records takes
    // roughly 10x the work — both complete quickly and correctly.
    for n in [100usize, 1000] {
        let chain = campaign_chain(n);
        chain.verify().expect("intact chain verifies");
        assert_eq!(chain.len(), n + 2);
    }
}

#[test]
fn cross_crate_chain_binds_model_to_decisions() {
    use safexplain::demo;
    use safexplain::scenarios::automotive::{self, AutomotiveConfig};

    let mut rng = DetRng::new(3);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 5,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("generate");
    let model = demo::train_mlp(&data, 5, 1).expect("train");
    let digest = model.digest();

    let mut chain = EvidenceChain::new("bind");
    chain.append(
        RecordKind::ModelTrained,
        vec![("digest".into(), Value::U64(digest))],
    );
    let mut engine = safexplain::nn::Engine::new(model);
    for s in data.samples().iter().take(5) {
        let c = engine.classify(&s.input).expect("classify");
        chain.append(
            RecordKind::InferencePerformed,
            vec![
                ("model".into(), Value::U64(digest)),
                ("class".into(), Value::U64(c.class as u64)),
                ("confidence".into(), Value::F64(f64::from(c.confidence))),
            ],
        );
    }
    chain.verify().expect("intact");
    // Every inference record points at the recorded model digest.
    let trained = chain.records_of_kind(RecordKind::ModelTrained);
    let inferences = chain.records_of_kind(RecordKind::InferencePerformed);
    assert_eq!(trained.len(), 1);
    assert_eq!(inferences.len(), 5);
    for r in inferences {
        assert_eq!(r.field("model"), trained[0].field("digest"));
    }
}
