//! End-to-end graceful degradation: a trained model behind a hardened
//! channel, real weight-corruption faults, and the full ladder
//! Nominal → Degraded → SafeStop → recovery, with every transition in the
//! evidence chain.

use safexplain::core::health::{HealthConfig, HealthMonitor, HealthState};
use safexplain::core::pipeline::PipelineBuilder;
use safexplain::demo;
use safexplain::nn::{FaultInjector, HardenConfig, HardenedEngine, HealthSink};
use safexplain::patterns::channel::HardenedChannel;
use safexplain::patterns::decision::Action;
use safexplain::patterns::pattern::MonitorActuator;
use safexplain::patterns::Sil;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::tensor::DetRng;
use safexplain::trace::record::{RecordKind, Value};

#[test]
fn escalating_faults_walk_the_ladder_with_evidence() {
    // Train a real classifier and harden it.
    let mut rng = DetRng::new(400);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 20,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("generate");
    let model = demo::train_mlp(&data, 25, 7).expect("train");
    let calibration = data.inputs_owned();

    let mut engine = HardenedEngine::new(model.clone(), HardenConfig::default()).expect("harden");
    engine.calibrate(&calibration).expect("calibrate");
    let sink = HealthSink::new();
    engine.attach_sink(sink.clone());
    let channel = HardenedChannel::new("primary", engine);
    let handle = channel.handle();

    let monitor = HealthMonitor::new(HealthConfig {
        window: 8,
        degrade_events: 2,
        stop_events: 4,
        recover_after: 4,
        resume_after: 6,
        warn_budget: 3,
    })
    .expect("config");
    let mut pipeline = PipelineBuilder::new("degradation", Sil::Sil2)
        .pattern(MonitorActuator::new(channel, 0.3, 0).expect("pattern"))
        .allow_under_provisioned()
        .evidence("degradation-campaign")
        .health(monitor, sink)
        .build()
        .expect("build");

    let pristine = model.clone();
    let mut injector = FaultInjector::new(31);
    let input = &data.samples()[0].input;

    // Phase 1: clean operation stays nominal with real proceeds.
    for _ in 0..10 {
        let d = pipeline.decide(input).expect("decide");
        assert!(
            !matches!(d.action, Action::SafeStop { .. }),
            "clean frames must not stop"
        );
    }
    assert_eq!(pipeline.health_state(), Some(HealthState::Nominal));

    // Phase 2: escalating schedule — corrupt a weight before every
    // decision. The CRC fires each frame; two events degrade, four stop.
    let mut states = Vec::new();
    for _ in 0..6 {
        {
            let mut e = handle.lock().expect("engine");
            injector
                .flip_weight_bits(e.model_mut(), 1, 1)
                .expect("inject");
        }
        pipeline.decide(input).expect("decide");
        states.push(pipeline.health_state().expect("health"));
        assert!(
            !pipeline.last_health_events().is_empty(),
            "every strike must be detected"
        );
    }
    assert!(states.contains(&HealthState::Degraded), "{states:?}");
    assert_eq!(*states.last().unwrap(), HealthState::SafeStop, "{states:?}");

    // While stopped, every decision is forced conservative.
    let d = pipeline.decide(input).expect("decide");
    assert!(matches!(d.action, Action::SafeStop { .. }));

    // Phase 3: repair the model and let clean decisions earn recovery —
    // SafeStop resumes one rung to Degraded, then back to Nominal.
    {
        let mut e = handle.lock().expect("engine");
        *e.model_mut() = pristine;
    }
    for _ in 0..20 {
        pipeline.decide(input).expect("decide");
    }
    assert_eq!(pipeline.health_state(), Some(HealthState::Nominal));
    let d = pipeline.decide(input).expect("decide");
    assert!(d.action.is_proceed(), "recovered pipeline proceeds again");

    // Every ladder transition is in the evidence chain, in order.
    let chain = pipeline.evidence().expect("evidence");
    let transitions: Vec<(String, String)> = chain
        .records()
        .iter()
        .filter(|r| r.kind == RecordKind::HealthTransition)
        .map(|r| {
            let get = |k: &str| match r.field(k) {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("bad field {k}: {other:?}"),
            };
            (get("from"), get("to"))
        })
        .collect();
    assert_eq!(
        transitions,
        vec![
            ("nominal".into(), "degraded".into()),
            ("degraded".into(), "safe_stop".into()),
            ("safe_stop".into(), "degraded".into()),
            ("degraded".into(), "nominal".into()),
        ],
        "the full ladder walk is certification evidence"
    );
    pipeline.verify_evidence().expect("chain intact");

    // The monitor's own ledger agrees with the chain.
    let health = pipeline.health().expect("health");
    assert_eq!(health.transitions().len(), 4);
    assert!(health.time_in(HealthState::Degraded) > 0);
    assert!(health.time_in(HealthState::SafeStop) > 0);
}
