//! Recovery-block integration: a trained primary, a quantised diverse
//! alternate, and an ODD-envelope acceptance test, end to end.

use safexplain::demo;
use safexplain::nn::{Engine, QEngine, QModel};
use safexplain::patterns::channel::{ModelChannel, QuantChannel};
use safexplain::patterns::fault::{FaultModel, FaultyChannel};
use safexplain::patterns::pattern::{RecoveryBlock, SafetyPattern};
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::shift::Shift;
use safexplain::supervision::odd::OddEnvelope;
use safexplain::tensor::DetRng;

fn setup() -> (safexplain::scenarios::Dataset, safexplain::nn::Model) {
    let mut rng = DetRng::new(2000);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 25,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("generate");
    let model = demo::train_mlp(&data, 30, 7).expect("train");
    (data, model)
}

/// Builds a recovery block whose acceptance test is an ODD envelope on
/// the input plus a confidence floor on the proposal.
fn build(
    data: &safexplain::scenarios::Dataset,
    model: &safexplain::nn::Model,
    primary_fault: FaultModel,
) -> RecoveryBlock {
    let envelope = OddEnvelope::fit(&data.inputs_owned(), 0.3, 0.05).expect("fit");
    let primary = FaultyChannel::new(
        ModelChannel::new("primary", Engine::new(model.clone())),
        primary_fault,
        data.classes(),
        DetRng::new(9),
    )
    .expect("fault model");
    let alternate = QuantChannel::new(
        "alternate",
        QEngine::new(QModel::quantize(model).expect("quantize")),
    );
    RecoveryBlock::new(primary, alternate, move |input: &[f32], _class, conf| {
        conf >= 0.3 && envelope.contains(input).unwrap_or(false)
    })
}

#[test]
fn nominal_frames_accepted_via_primary() {
    let (data, model) = setup();
    let mut rb = build(&data, &model, FaultModel::none());
    let mut proceeds = 0usize;
    for s in data.samples() {
        let d = rb.decide(&s.input).expect("decide");
        if d.action.is_proceed() {
            proceeds += 1;
            assert_eq!(d.channel_evals, 1, "primary suffices on nominal frames");
        }
    }
    assert!(
        proceeds as f64 > data.len() as f64 * 0.7,
        "availability on nominal data: {proceeds}/{}",
        data.len()
    );
}

#[test]
fn primary_crashes_recovered_by_alternate() {
    let (data, model) = setup();
    // Primary always crashes; the quantised alternate carries the load.
    let mut rb = build(
        &data,
        &model,
        FaultModel {
            wrong_class: 0.0,
            stuck: 0.0,
            crash: 1.0,
            erratic: 0.0,
        },
    );
    let mut recovered = 0usize;
    let mut correct = 0usize;
    for s in data.samples() {
        let d = rb.decide(&s.input).expect("decide");
        if let Some(class) = d.action.class() {
            assert!(
                d.action.is_conservative(),
                "alternate results are flagged as recovery, not nominal"
            );
            recovered += 1;
            if class == s.label {
                correct += 1;
            }
        }
    }
    assert!(
        recovered as f64 > data.len() as f64 * 0.7,
        "alternate must keep the function available: {recovered}/{}",
        data.len()
    );
    assert!(
        correct as f64 > recovered as f64 * 0.7,
        "recovered decisions stay accurate: {correct}/{recovered}"
    );
}

#[test]
fn out_of_odd_frames_rejected_by_both_paths() {
    let (data, model) = setup();
    let mut rb = build(&data, &model, FaultModel::none());
    let mut rng = DetRng::new(11);
    let shifted = Shift::Brightness(2.0)
        .apply(&data, &mut rng)
        .expect("shift");
    for s in shifted.samples().iter().take(30) {
        let d = rb.decide(&s.input).expect("decide");
        assert_eq!(
            d.action.class(),
            None,
            "far out-of-ODD input must safe-stop (both proposals fail acceptance)"
        );
        assert_eq!(d.channel_evals, 2, "both channels were consulted");
    }
}
