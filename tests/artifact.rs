//! Deployment-artifact integration: save/load a trained model, bind its
//! digest into the evidence chain, and detect corrupted artifacts — plus
//! streaming drift detection over real supervisor scores.

use safexplain::demo;
use safexplain::nn::io::{load_model, save_model};
use safexplain::nn::Engine;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::shift::Shift;
use safexplain::supervision::drift::CusumDetector;
use safexplain::supervision::observation::observe;
use safexplain::supervision::supervisor::{Mahalanobis, Supervisor};
use safexplain::tensor::DetRng;
use safexplain::trace::record::{RecordKind, Value};
use safexplain::trace::EvidenceChain;

fn setup() -> (safexplain::scenarios::Dataset, safexplain::nn::Model) {
    let mut rng = DetRng::new(1000);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 20,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("generate");
    let model = demo::train_mlp(&data, 20, 7).expect("train");
    (data, model)
}

#[test]
fn trained_artifact_round_trips_and_infers_identically() {
    let (data, model) = setup();
    let mut artifact = Vec::new();
    save_model(&model, &mut artifact).expect("save");
    let loaded = load_model(artifact.as_slice()).expect("load");
    assert_eq!(loaded.digest(), model.digest());

    let mut e1 = Engine::new(model);
    let mut e2 = Engine::new(loaded);
    for s in data.samples().iter().take(20) {
        assert_eq!(
            e1.infer(&s.input).expect("infer"),
            e2.infer(&s.input).expect("infer"),
            "loaded artifact must be bit-identical in behaviour"
        );
    }
}

#[test]
fn artifact_digest_binds_into_evidence_chain() {
    let (_, model) = setup();
    let mut artifact = Vec::new();
    save_model(&model, &mut artifact).expect("save");

    let mut chain = EvidenceChain::new("deployment");
    chain.append(
        RecordKind::ModelTrained,
        vec![("digest".into(), Value::U64(model.digest()))],
    );
    // Deployment site loads the artifact and checks the digest against
    // the chain before going live.
    let loaded = load_model(artifact.as_slice()).expect("load");
    let recorded = chain.records_of_kind(RecordKind::ModelTrained)[0]
        .field("digest")
        .cloned();
    assert_eq!(recorded, Some(Value::U64(loaded.digest())));
    chain.verify().expect("intact");
}

#[test]
fn corrupted_artifact_refused() {
    let (_, model) = setup();
    let mut artifact = Vec::new();
    save_model(&model, &mut artifact).expect("save");
    // Corrupt a weight byte deep in the payload.
    let idx = artifact.len() * 2 / 3;
    artifact[idx] ^= 0x55;
    assert!(
        load_model(artifact.as_slice()).is_err(),
        "corrupted artifact must not load"
    );
}

#[test]
fn drift_detector_catches_slow_degradation_supervisors_miss() {
    // A gradual noise ramp: each individual frame stays below the
    // per-frame threshold for a while, but the CUSUM on the score stream
    // alarms early.
    let (data, model) = setup();
    let mut engine = Engine::new(model);
    let mut supervisor = Mahalanobis::new();
    let observations: Vec<_> = data
        .samples()
        .iter()
        .map(|s| observe(&mut engine, &s.input).expect("observe"))
        .collect();
    supervisor.fit(&observations, &data.labels()).expect("fit");
    let reference: Vec<f64> = observations
        .iter()
        .map(|o| supervisor.score(o).expect("score"))
        .collect();
    let mut detector = CusumDetector::fit(&reference, 0.5, 5.0).expect("fit");

    // Ramp: noise sigma grows 0.00 -> 0.20 over 80 frames.
    let mut rng = DetRng::new(77);
    let mut alarm_frame = None;
    for step in 0..80 {
        let sigma = 0.20 * step as f64 / 80.0;
        let frame = if sigma > 0.0 {
            Shift::GaussianNoise(sigma)
                .apply(&data, &mut rng)
                .expect("shift")
                .samples()[step % data.len()]
            .input
            .clone()
        } else {
            data.samples()[step % data.len()].input.clone()
        };
        let obs = observe(&mut engine, &frame).expect("observe");
        let score = supervisor.score(&obs).expect("score");
        if detector.update(score).expect("update").is_drifted() {
            alarm_frame = Some(step);
            break;
        }
    }
    let at = alarm_frame.expect("drift must be detected during the ramp");
    assert!(at > 0, "no alarm on the clean first frame");
    assert!(at < 80, "alarm within the ramp");
}

#[test]
fn drift_detector_quiet_on_stationary_stream() {
    let (data, model) = setup();
    let mut engine = Engine::new(model);
    let mut supervisor = Mahalanobis::new();
    let observations: Vec<_> = data
        .samples()
        .iter()
        .map(|s| observe(&mut engine, &s.input).expect("observe"))
        .collect();
    supervisor.fit(&observations, &data.labels()).expect("fit");
    let reference: Vec<f64> = observations
        .iter()
        .map(|o| supervisor.score(o).expect("score"))
        .collect();
    let mut detector = CusumDetector::fit(&reference, 0.5, 8.0).expect("fit");
    // Replay in-distribution frames in shuffled order (the generator
    // emits samples class-blocked; a class-ordered replay is genuinely a
    // non-stationary stream and *should* alarm, so shuffle first).
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = DetRng::new(31);
    let mut alarms = 0usize;
    for _ in 0..4 {
        rng.shuffle(&mut order);
        for &i in &order {
            let obs = observe(&mut engine, &data.samples()[i].input).expect("observe");
            let score = supervisor.score(&obs).expect("score");
            if detector.update(score).expect("update").is_drifted() {
                alarms += 1;
            }
        }
    }
    assert_eq!(
        alarms, 0,
        "stationary in-distribution stream must not alarm"
    );
}
