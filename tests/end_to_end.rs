//! End-to-end integration: dataset → training → assembly → operation →
//! evidence → report, across every SIL.

use safexplain::core::assemble::{self, AssemblySpec};
use safexplain::core::report::CertificationReport;
use safexplain::demo;
use safexplain::patterns::Sil;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::shift::Shift;
use safexplain::tensor::DetRng;
use safexplain::trace::record::RecordKind;

type Setup = (
    safexplain::scenarios::Dataset,
    safexplain::scenarios::Dataset,
    safexplain::nn::Model,
    safexplain::nn::Model,
);

/// Training is the expensive part; do it once per test binary.
fn setup() -> &'static Setup {
    static SETUP: std::sync::OnceLock<Setup> = std::sync::OnceLock::new();
    SETUP.get_or_init(build_setup)
}

fn build_setup() -> Setup {
    let mut rng = DetRng::new(500);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 60,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("generate");
    let (train, test) = data.split(0.7, &mut rng).expect("split");
    let a = demo::train_mlp(&train, 80, 17).expect("train a");
    let b = demo::train_mlp(&train, 80, 18).expect("train b");
    (train, test, a, b)
}

#[test]
fn every_sil_assembles_and_operates() {
    let (train, test, model_a, model_b) = setup().clone();
    for sil in Sil::ALL {
        let spec = AssemblySpec {
            sil,
            fallback_class: 0,
            confidence_floor: 0.3,
            input_range: (-1.0, 2.0),
            ..Default::default()
        };
        let mut pipeline = assemble::for_sil(
            &format!("e2e-{sil}"),
            &spec,
            &[model_a.clone(), model_b.clone()],
            &train.inputs_owned(),
            &train.labels(),
        )
        .unwrap_or_else(|e| panic!("assembly at {sil}: {e}"));

        let mut proceeds = 0usize;
        for s in test.samples() {
            let d = pipeline.decide(&s.input).expect("decide");
            if d.action.is_proceed() {
                proceeds += 1;
            }
        }
        assert!(
            proceeds as f64 >= test.len() as f64 * 0.5,
            "{sil}: pipeline must be mostly available on nominal data ({proceeds}/{})",
            test.len()
        );
        pipeline.verify_evidence().expect("chain intact");
        assert_eq!(pipeline.decision_count(), test.len() as u64);
    }
}

#[test]
fn simplex_rejects_heavy_shift_and_records_it() {
    let (train, test, model_a, _) = setup().clone();
    let spec = AssemblySpec {
        sil: Sil::Sil2,
        fallback_class: 0,
        ..Default::default()
    };
    let mut pipeline = assemble::for_sil(
        "e2e-shift",
        &spec,
        &[model_a],
        &train.inputs_owned(),
        &train.labels(),
    )
    .expect("assemble");

    let mut rng = DetRng::new(7);
    let shifted = Shift::GaussianNoise(1.0)
        .apply(&test, &mut rng)
        .expect("shift");
    for s in shifted.samples() {
        pipeline.decide(&s.input).expect("decide");
    }
    assert!(
        pipeline.conservative_rate() > 0.9,
        "heavy noise must be rejected: rate {}",
        pipeline.conservative_rate()
    );
    // Every decision left a PatternDecision record behind the calibration
    // and model records.
    let chain = pipeline.evidence().expect("evidence enabled");
    let decisions = chain.records_of_kind(RecordKind::PatternDecision);
    assert_eq!(decisions.len(), shifted.len());
    chain.verify().expect("intact");
}

#[test]
fn certification_report_reflects_operation() {
    let (train, test, model_a, _) = setup().clone();
    let spec = AssemblySpec {
        sil: Sil::Sil2,
        ..Default::default()
    };
    let mut pipeline = assemble::for_sil(
        "e2e-report",
        &spec,
        &[model_a],
        &train.inputs_owned(),
        &train.labels(),
    )
    .expect("assemble");
    for s in test.samples().iter().take(10) {
        pipeline.decide(&s.input).expect("decide");
    }
    let report = CertificationReport::from_pipeline(&pipeline)
        .with_supervisor_auroc(0.99)
        .with_objective_coverage(1.0);
    let json = report.to_json().to_string_compact();
    assert!(json.contains("\"decisions\":10"));
    assert!(json.contains("\"pattern\":\"simplex\""));
    assert!(json.contains("\"sil\":\"SIL2\""));
    assert!(json.contains("\"supervisor_auroc\":0.99"));
    // The evidence head in the report matches the live chain.
    let head = format!("{:016x}", pipeline.evidence().expect("chain").head_hash());
    assert!(json.contains(&head));
}

#[test]
fn fusa_objectives_discharged_by_experiment_results() {
    use safexplain::fusa::objective::{ObjectiveLedger, VerificationMethod};
    use safexplain::fusa::requirement::{Registry, RequirementKind};

    let (train, test, model_a, _) = setup().clone();
    // Requirements for the function.
    let mut reg = Registry::new();
    let top = reg
        .add(
            "REQ-PER-1",
            "classify road objects with >= 60 % accuracy in-ODD",
            Sil::Sil2,
            RequirementKind::Functional,
            None,
        )
        .expect("add");
    let mon = reg
        .add(
            "REQ-PER-2",
            "reject out-of-ODD inputs",
            Sil::Sil2,
            RequirementKind::Monitoring,
            None,
        )
        .expect("add");
    let mut ledger = ObjectiveLedger::new();
    let o_acc = ledger
        .add(
            &reg,
            "OBJ-1",
            top,
            VerificationMethod::Test,
            "test-set accuracy",
        )
        .expect("obj");
    let o_ood = ledger
        .add(
            &reg,
            "OBJ-2",
            mon,
            VerificationMethod::Simulation,
            "shift rejection",
        )
        .expect("obj");

    // Discharge OBJ-1 with a measured accuracy.
    let mut engine = safexplain::nn::Engine::new(model_a.clone());
    let acc = demo::accuracy(&mut engine, &test).expect("accuracy");
    if acc >= 0.6 {
        ledger
            .pass(o_acc, format!("accuracy {acc:.3}"))
            .expect("pass");
    } else {
        ledger
            .fail(o_acc, format!("accuracy {acc:.3}"))
            .expect("fail");
    }

    // Discharge OBJ-2 with the simplex shift-rejection measurement.
    let spec = AssemblySpec {
        sil: Sil::Sil2,
        ..Default::default()
    };
    let mut pipeline = assemble::for_sil(
        "fusa",
        &spec,
        &[model_a],
        &train.inputs_owned(),
        &train.labels(),
    )
    .expect("assemble");
    let mut rng = DetRng::new(8);
    let shifted = Shift::GaussianNoise(1.0)
        .apply(&test, &mut rng)
        .expect("shift");
    for s in shifted.samples() {
        pipeline.decide(&s.input).expect("decide");
    }
    if pipeline.conservative_rate() > 0.9 {
        ledger
            .pass(
                o_ood,
                format!("rejection {:.3}", pipeline.conservative_rate()),
            )
            .expect("pass");
    }

    assert_eq!(ledger.coverage(&reg), 1.0, "all requirements verified");
    assert!(ledger.requirement_verified(top));
    assert!(ledger.requirement_verified(mon));
}

#[test]
fn safety_case_for_the_pipeline_is_complete() {
    use safexplain::fusa::case::SafetyCase;

    let mut case = SafetyCase::new("G1", "automotive perception is acceptably safe at SIL2");
    let s1 = case
        .add_strategy(case.root(), "S1", "argument over the SAFEXPLAIN pillars")
        .expect("strategy");
    let g_trust = case
        .add_goal(
            s1,
            "G2",
            "untrustworthy predictions are detected and handled",
        )
        .expect("goal");
    case.add_solution(
        g_trust,
        "Sn1",
        "E1 supervisor study",
        "supervisor_study output",
    )
    .expect("solution");
    let g_pattern = case
        .add_goal(s1, "G3", "residual channel faults are tolerated")
        .expect("goal");
    case.add_solution(
        g_pattern,
        "Sn2",
        "E3 fault-injection study",
        "pattern_faults output",
    )
    .expect("solution");
    let g_time = case
        .add_goal(s1, "G4", "deadline met with probabilistic guarantee")
        .expect("goal");
    case.add_solution(g_time, "Sn3", "E2 MBPTA analysis", "timing_analysis output")
        .expect("solution");
    assert!(case.is_complete(), "case:\n{case}");
    assert!(case.render().contains("SAFEXPLAIN pillars"));
}
