//! Platform → timing integration: the full MBPTA flow on real DL
//! workload traces (experiments E2/E8 support).

use safexplain::demo;
use safexplain::platform::platform::{Platform, PlatformConfig};
use safexplain::platform::TraceProgram;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::tensor::DetRng;
use safexplain::timing::mbpta::{analyze, MbptaConfig};

fn workload() -> TraceProgram {
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 2,
            ..Default::default()
        },
        &mut DetRng::new(1),
    )
    .expect("generate");
    let model = demo::convnet_for(&data, 3).expect("model");
    TraceProgram::from_model(&model, 256)
}

#[test]
fn randomized_platform_yields_admissible_campaign() {
    let platform = Platform::new(PlatformConfig::time_randomized()).expect("platform");
    let samples = platform
        .measure(&workload(), 400, &mut DetRng::new(2))
        .expect("measure");
    let result = analyze(&samples, &MbptaConfig::default()).expect("analyze");
    assert!(
        result.admissible(),
        "time-randomised measurements must pass i.i.d. tests: {:?}",
        result.iid
    );
    // The pWCET bound clears the high-water mark.
    let bound = result.pwcet.bound_at(1e-12).expect("bound");
    assert!(bound > result.high_water_mark());
    // And the curve covers the statistically meaningful empirical tail.
    let margin = result
        .pwcet
        .tail_margin(&samples, 0.9, 10.0 / samples.len() as f64)
        .expect("margin");
    assert!(
        margin > -(result.gumbel.beta * 2.0),
        "curve should cover the empirical tail: margin {margin}, beta {}",
        result.gumbel.beta
    );
}

#[test]
fn interference_inflates_pwcet_and_partitioning_recovers() {
    let program = workload();
    let bound_for = |config: PlatformConfig| -> f64 {
        let platform = Platform::new(config).expect("platform");
        let samples = platform
            .measure(&program, 400, &mut DetRng::new(3))
            .expect("measure");
        analyze(&samples, &MbptaConfig::default())
            .expect("analyze")
            .pwcet
            .bound_at(1e-9)
            .expect("bound")
    };
    let alone = bound_for(PlatformConfig::time_randomized());
    let contended = bound_for(PlatformConfig::time_randomized().with_co_runners(3));
    let partitioned = bound_for(
        PlatformConfig::time_randomized()
            .with_co_runners(3)
            .partitioned(),
    );
    assert!(
        contended > alone * 1.1,
        "contention must inflate pWCET: {alone} -> {contended}"
    );
    assert!(
        partitioned < contended,
        "partitioning must recover: {contended} -> {partitioned}"
    );
}

#[test]
fn slowdown_grows_with_co_runner_count() {
    let program = workload();
    let mean_for = |co: usize| -> f64 {
        let platform =
            Platform::new(PlatformConfig::time_randomized().with_co_runners(co)).expect("p");
        let samples = platform
            .measure(&program, 60, &mut DetRng::new(4))
            .expect("measure");
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    let means: Vec<f64> = [0usize, 1, 2, 3].iter().map(|&c| mean_for(c)).collect();
    for w in means.windows(2) {
        assert!(
            w[1] > w[0],
            "mean execution time must grow with co-runners: {means:?}"
        );
    }
}

#[test]
fn deterministic_platform_fails_gumbel_fit_by_design() {
    // Zero-variance measurements cannot (and should not) be EVT-fitted:
    // the protocol surfaces that instead of inventing a distribution.
    let platform = Platform::new(PlatformConfig::deterministic()).expect("platform");
    let samples = platform
        .measure(&workload(), 250, &mut DetRng::new(5))
        .expect("measure");
    let err = analyze(&samples, &MbptaConfig::default()).unwrap_err();
    let msg = err.to_string();
    // The rejection may surface at the admissibility battery (a constant
    // sample has no values off the median for the runs test) or at the
    // Gumbel fit (zero variance); either is the correct refusal.
    assert!(
        msg.contains("variance") || msg.contains("constant") || msg.contains("median"),
        "unexpected error: {msg}"
    );
}

#[test]
fn quantised_and_float_traces_have_same_shape() {
    // The trace generator works on the architecture, not the numerics:
    // the same model yields the same access pattern whichever engine runs
    // it, which is what lets one timing analysis cover both builds.
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 2,
            ..Default::default()
        },
        &mut DetRng::new(6),
    )
    .expect("generate");
    let model = demo::convnet_for(&data, 7).expect("model");
    let t1 = TraceProgram::from_model(&model, 128);
    let t2 = TraceProgram::from_model(&model, 128);
    assert_eq!(t1, t2);
    assert!(t1.access_count() > 0);
}
