//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use safexplain::nn::model::ModelBuilder;
use safexplain::nn::Engine;
use safexplain::supervision::drift::CusumDetector;
use safexplain::supervision::odd::OddEnvelope;
use safexplain::tensor::fixed::Q16_16;
use safexplain::tensor::ops;
use safexplain::tensor::{stats, DetRng, Shape, Tensor};
use safexplain::trace::record::{RecordKind, Value};
use safexplain::trace::EvidenceChain;

proptest! {
    // ---------------- fixed point ----------------

    #[test]
    fn q16_round_trip_within_half_lsb(v in -30000.0f32..30000.0) {
        let q = Q16_16::from_f32(v);
        let back = q.to_f32();
        prop_assert!((back - v).abs() <= 1.0 / 65536.0, "{v} -> {back}");
    }

    #[test]
    fn q16_add_commutes(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (x, y) = (Q16_16::from_f32(a), Q16_16::from_f32(b));
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn q16_mul_commutes(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let (x, y) = (Q16_16::from_f32(a), Q16_16::from_f32(b));
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn q16_mul_accuracy(a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let product = (Q16_16::from_f32(a) * Q16_16::from_f32(b)).to_f64();
        let exact = a as f64 * b as f64;
        // Error bound: quantisation of both operands plus one rounding.
        let bound = (a.abs() as f64 + b.abs() as f64 + 1.0) / 65536.0;
        prop_assert!((product - exact).abs() <= bound, "{a}*{b}: {product} vs {exact}");
    }

    #[test]
    fn q16_never_panics_on_any_bits(bits_a in any::<i32>(), bits_b in any::<i32>()) {
        let a = Q16_16::from_bits(bits_a);
        let b = Q16_16::from_bits(bits_b);
        let _ = a + b;
        let _ = a - b;
        let _ = a * b;
        let _ = a / b;
        let _ = -a;
        let _ = a.saturating_abs();
    }

    // ---------------- RNG ----------------

    #[test]
    fn rng_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), n in 1usize..50) {
        let mut rng = DetRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    // ---------------- tensor ops ----------------

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-30.0f32..30.0, 1..32)) {
        let mut out = vec![0.0f32; logits.len()];
        ops::softmax_into(&logits, &mut out).expect("softmax");
        let total: f64 = out.iter().map(|&p| p as f64).sum();
        prop_assert!((total - 1.0).abs() < 1e-5, "sum {total}");
        prop_assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_preserves_argmax(logits in prop::collection::vec(-10.0f32..10.0, 2..16)) {
        let mut out = vec![0.0f32; logits.len()];
        ops::softmax_into(&logits, &mut out).expect("softmax");
        let arg = |v: &[f32]| v.iter().enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty").0;
        prop_assert_eq!(arg(&logits), arg(&out));
    }

    #[test]
    fn relu_idempotent(xs in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let mut once = vec![0.0f32; xs.len()];
        ops::relu_into(&xs, &mut once).expect("relu");
        let mut twice = vec![0.0f32; xs.len()];
        ops::relu_into(&once, &mut twice).expect("relu");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn matmul_identity_is_neutral(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::new(seed);
        let a = Tensor::gaussian(Shape::matrix(rows, cols), 0.0, 1.0, &mut rng);
        let mut id = Tensor::zeros(Shape::matrix(cols, cols));
        for i in 0..cols {
            id.set(&[i, i], 1.0).expect("set");
        }
        let product = a.matmul(&id).expect("matmul");
        prop_assert_eq!(product, a);
    }

    #[test]
    fn tensor_add_commutes(seed in any::<u64>(), n in 1usize..32) {
        let mut rng = DetRng::new(seed);
        let a = Tensor::gaussian(Shape::vector(n), 0.0, 1.0, &mut rng);
        let b = Tensor::gaussian(Shape::vector(n), 0.0, 1.0, &mut rng);
        prop_assert_eq!(a.add(&b).expect("add"), b.add(&a).expect("add"));
    }

    // ---------------- stats ----------------

    #[test]
    fn quantiles_monotone(
        xs in prop::collection::vec(-1000.0f64..1000.0, 2..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&xs, lo).expect("quantile");
        let b = stats::quantile(&xs, hi).expect("quantile");
        prop_assert!(a <= b, "q{lo}={a} > q{hi}={b}");
    }

    #[test]
    fn summary_bounds_hold(xs in prop::collection::vec(-1000.0f64..1000.0, 1..100)) {
        let s = stats::summary(&xs).expect("summary");
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    // ---------------- shapes ----------------

    #[test]
    fn shape_flat_index_bijective(
        d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5,
    ) {
        let shape = Shape::new(&[d0, d1, d2]).expect("shape");
        let mut seen = vec![false; shape.len()];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let flat = shape.flat_index(&[i, j, k]).expect("index");
                    prop_assert!(!seen[flat]);
                    seen[flat] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    // ---------------- evidence chain ----------------

    #[test]
    fn chain_always_verifies_after_appends(
        kinds in prop::collection::vec(0usize..4, 0..30),
    ) {
        let mut chain = EvidenceChain::new("prop");
        for (i, &k) in kinds.iter().enumerate() {
            let kind = match k {
                0 => RecordKind::InferencePerformed,
                1 => RecordKind::MonitorVerdict,
                2 => RecordKind::PatternDecision,
                _ => RecordKind::TimingAnalysis,
            };
            chain.append(kind, vec![("i".into(), Value::U64(i as u64))]);
        }
        prop_assert!(chain.verify().is_ok());
        prop_assert_eq!(chain.len(), kinds.len());
    }

    #[test]
    fn chain_field_tamper_detected(
        n in 2usize..20,
        victim_frac in 0.0f64..1.0,
    ) {
        let mut chain = EvidenceChain::new("prop");
        for i in 0..n {
            chain.append(
                RecordKind::InferencePerformed,
                vec![("i".into(), Value::U64(i as u64))],
            );
        }
        let victim = ((n as f64 - 1.0) * victim_frac) as usize;
        chain.simulate_tamper(victim, |r| {
            r.fields[0].1 = Value::U64(999_999);
        });
        prop_assert!(chain.verify().is_err());
    }

    // ---------------- engine ----------------

    #[test]
    fn engine_output_is_finite_distribution(
        seed in any::<u64>(),
        input in prop::collection::vec(-3.0f32..3.0, 6),
    ) {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(Shape::vector(6))
            .dense(8, &mut rng).expect("dense")
            .relu()
            .dense(3, &mut rng).expect("dense")
            .softmax()
            .build().expect("build");
        let mut engine = Engine::new(model);
        let out = engine.infer(&input).expect("infer");
        prop_assert!(out.iter().all(|p| p.is_finite()));
        let total: f32 = out.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
    }

    // ---------------- ODD envelopes ----------------

    #[test]
    fn odd_envelope_contains_its_training_set(
        seed in any::<u64>(),
        n in 10usize..60,
        dim in 1usize..32,
        margin in 0.0f64..0.5,
    ) {
        let mut rng = DetRng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.next_f32()).collect())
            .collect();
        let env = OddEnvelope::fit(&inputs, margin, 0.0).expect("fit");
        for x in &inputs {
            prop_assert!(env.contains(x).expect("check"));
        }
    }

    #[test]
    fn odd_envelope_rejects_far_points(seed in any::<u64>(), dim in 4usize..32) {
        let mut rng = DetRng::new(seed);
        let inputs: Vec<Vec<f32>> = (0..50)
            .map(|_| (0..dim).map(|_| rng.next_f32()).collect())
            .collect();
        let env = OddEnvelope::fit(&inputs, 0.2, 0.05).expect("fit");
        let far = vec![1000.0f32; dim];
        prop_assert!(!env.contains(&far).expect("check"));
    }

    // ---------------- drift detection ----------------

    #[test]
    fn cusum_never_panics_and_alarms_on_large_shift(
        seed in any::<u64>(),
        shift_sigmas in 2.0f64..10.0,
    ) {
        let mut rng = DetRng::new(seed);
        let reference: Vec<f64> = (0..100).map(|_| rng.gaussian(5.0, 1.0)).collect();
        // Degenerate references are rejected, not panicked on.
        let Ok(mut det) = CusumDetector::fit(&reference, 0.5, 5.0) else {
            return Ok(());
        };
        let mut alarmed = false;
        for _ in 0..200 {
            if det.update(5.0 + shift_sigmas).expect("update").is_drifted() {
                alarmed = true;
                break;
            }
        }
        prop_assert!(alarmed, "a {shift_sigmas}-sigma sustained shift must alarm");
    }
}
