//! End-to-end detect-and-correct: a single-bit weight flip struck
//! mid-traffic through the serving runtime is repaired in place by the
//! ECC sidecar — the server never leaves Nominal and records the repair
//! as evidence — while a double-bit (uncorrectable) flip still walks the
//! existing Degraded → SafeStop ladder.

use safex_core::health::{HealthConfig, HealthState};
use safex_nn::model::ModelBuilder;
use safex_nn::{EccConfig, Engine, HardenConfig, HardenedEngine, Model};
use safex_serve::{ModelId, Outcome, PoolBackend, Server, ServerConfig, TrafficConfig};
use safex_tensor::{DetRng, Shape};
use safex_trace::RecordKind;

fn fixture() -> (Model, Vec<Vec<f32>>) {
    let mut rng = DetRng::new(0x0E2E);
    let model = ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs: Vec<Vec<f32>> = (0..24)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect();
    (model, inputs)
}

fn repairing_engine(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    let config = HardenConfig {
        repair: Some(EccConfig::default()),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model.clone(), config).unwrap();
    engine.calibrate(inputs).unwrap();
    engine
}

fn server_config() -> ServerConfig {
    ServerConfig::default().with_health(HealthConfig {
        window: 8,
        degrade_events: 2,
        stop_events: 6,
        recover_after: 16,
        resume_after: 0,
        warn_budget: 3,
    })
}

#[test]
fn single_bit_flip_is_corrected_and_the_server_stays_nominal() {
    let (model, inputs) = fixture();
    let engine = repairing_engine(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0xE13,
        requests: 160,
        mean_interarrival: 4.0,
        deadline: 500,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let backend = PoolBackend::new(&engine, 4).unwrap();
    let mut server = Server::single(server_config(), backend).unwrap();
    // One SEU flipping one bit of one weight, landing mid-traffic.
    let report = server
        .run_trace_with(&trace, |request, fleet| {
            if request.id == 40 {
                fleet
                    .backend_mut(ModelId::new(0))
                    .unwrap()
                    .strike_weights(0xBAD5EED, 1, 1)
                    .unwrap();
            }
        })
        .unwrap();

    // The fault was absorbed: no service-level transition ever fired.
    assert_eq!(server.service_level(), HealthState::Nominal);
    assert!(
        report.transitions.is_empty(),
        "a corrected fault must not move the ladder: {:?}",
        report.transitions
    );
    // The repair left evidence behind and the chain verifies.
    assert!(server.evidence().verify().is_ok());
    let corrected = server
        .evidence()
        .records_of_kind(RecordKind::FaultCorrected);
    assert!(
        !corrected.is_empty(),
        "the repair must be recorded as evidence"
    );
    assert!(server
        .evidence()
        .records_of_kind(RecordKind::HealthTransition)
        .is_empty());

    // Every released answer matches the pristine model: the flip was
    // repaired before it could corrupt a classification.
    let mut reference = Engine::new(model.clone());
    let mut completed = 0usize;
    for r in &report.responses {
        if let Outcome::Completed { class, .. } = &r.outcome {
            let truth = reference
                .classify(&trace.arrivals()[r.id as usize].request.input)
                .unwrap()
                .class;
            assert_eq!(*class, truth, "request {} released a wrong answer", r.id);
            completed += 1;
        }
    }
    assert!(completed > 100, "most of the trace must complete normally");
    assert!(
        !report
            .responses
            .iter()
            .any(|r| matches!(r.outcome, Outcome::SafeStop { .. })),
        "nothing may fail safe when the fault is correctable"
    );
}

#[test]
fn double_bit_flip_still_walks_degraded_then_safe_stop() {
    let (model, inputs) = fixture();
    let engine = repairing_engine(&model, &inputs);
    let trace = TrafficConfig {
        seed: 0xE13,
        requests: 160,
        mean_interarrival: 4.0,
        deadline: 500,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .unwrap();
    let backend = PoolBackend::new(&engine, 4).unwrap();
    let mut server = Server::single(server_config(), backend).unwrap();
    // Two bits of the same weight word: beyond single-error correction,
    // so the sidecar must refuse to touch it and escalate as before.
    let report = server
        .run_trace_with(&trace, |request, fleet| {
            if request.id == 40 {
                fleet
                    .backend_mut(ModelId::new(0))
                    .unwrap()
                    .strike_weights(0xBAD5EED, 1, 2)
                    .unwrap();
            }
        })
        .unwrap();

    let walk: Vec<(HealthState, HealthState)> =
        report.transitions.iter().map(|t| (t.from, t.to)).collect();
    assert_eq!(
        walk,
        vec![
            (HealthState::Nominal, HealthState::Degraded),
            (HealthState::Degraded, HealthState::SafeStop),
        ],
        "uncorrectable damage must keep the existing escalation: {:?}",
        report.transitions
    );
    assert_eq!(server.service_level(), HealthState::SafeStop);
    // An uncorrectable fault must never masquerade as a repair.
    assert!(server
        .evidence()
        .records_of_kind(RecordKind::FaultCorrected)
        .is_empty());
    assert!(
        report
            .responses
            .iter()
            .any(|r| matches!(r.outcome, Outcome::SafeStop { .. })),
        "traffic after the stop must fail safe"
    );
}
