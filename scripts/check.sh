#!/usr/bin/env bash
# Local quality gate: formatting, lints, and the full test suite.
# Mirrors what CI would run; keep it green before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --benches"
cargo build --benches

echo "==> cargo test -q"
cargo test -q

echo "==> scripts/bench.sh --quick"
scripts/bench.sh --quick

echo "All checks passed."
