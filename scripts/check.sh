#!/usr/bin/env bash
# Local quality gate: formatting, lints, and the full test suite.
# Mirrors what CI would run; keep it green before pushing.
#
# Usage:
#   scripts/check.sh              # full gate: fmt, clippy, benches, tests,
#                                 # quick bench + fused-overhead perf smoke
#   scripts/check.sh --tests-only # fast tier: just the workspace test suite
#                                 # (plus the test-count floor below)
#   scripts/check.sh --soak-smoke # bounded wall-clock soak tier: ~6 s of
#                                 # real-time pacing with seeded SEU faults,
#                                 # one atomic hot swap, the watchdog armed,
#                                 # and a snapshot/restore fidelity check
#   scripts/check.sh --falsify-smoke # bounded adversarial-search tier: a few
#                                 # seconds of scenario search that must
#                                 # rediscover a seeded violation region in
#                                 # the automotive and trajectory workloads
#   scripts/check.sh --fuzz-smoke # bounded structure-aware fuzzing tier:
#                                 # >= 10k seed-reproducible cases across the
#                                 # byte decoders, the admission/ladder state
#                                 # machines, and the differential oracles;
#                                 # nonzero exit on any panic, fail-open
#                                 # decode, or divergence (seed printed, so
#                                 # SAFEX_FUZZ_SEED=... replays the run)
#
# The test modes count the tests the workspace actually ran and fail if
# the total drops below the floor recorded in scripts/test_baseline —
# a silently deleted or no-longer-compiled test binary is a regression,
# not a cleanup.
set -euo pipefail

cd "$(dirname "$0")/.."

TESTS_ONLY=0
if [[ "${1:-}" == "--tests-only" ]]; then
    TESTS_ONLY=1
fi

if [[ "${1:-}" == "--soak-smoke" ]]; then
    echo "==> cargo run --release -p safex-serve --example soak_smoke"
    cargo run --release -p safex-serve --example soak_smoke
    echo "Soak smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--falsify-smoke" ]]; then
    echo "==> cargo run --release -p safex-falsify --example falsify_smoke"
    cargo run --release -p safex-falsify --example falsify_smoke
    echo "Falsify smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--fuzz-smoke" ]]; then
    echo "==> cargo run --release -p safex-fuzz --example fuzz_smoke"
    cargo run --release -p safex-fuzz --example fuzz_smoke
    echo "Fuzz smoke passed."
    exit 0
fi

if [[ "$TESTS_ONLY" == 0 ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo build --benches"
    cargo build --benches
fi

echo "==> cargo test -q --workspace"
TEST_LOG="$(mktemp)"
trap 'rm -f "$TEST_LOG"' EXIT
cargo test -q --workspace 2>&1 | tee "$TEST_LOG"

# Sum the "N passed" counts over every test binary and doc-test run.
TOTAL=$(awk '/^test result: ok\./ { for (i = 1; i <= NF; i++) if ($(i+1) == "passed;") sum += $i } END { print sum + 0 }' "$TEST_LOG")
BASELINE=$(cat scripts/test_baseline)
echo "==> workspace test count: $TOTAL (baseline $BASELINE)"
if [[ "$TOTAL" -lt "$BASELINE" ]]; then
    echo "error: workspace ran $TOTAL tests, below the recorded baseline of $BASELINE." >&2
    echo "       If tests were intentionally consolidated, update scripts/test_baseline." >&2
    exit 1
fi

if [[ "$TESTS_ONLY" == 0 ]]; then
    echo "==> scripts/bench.sh --quick"
    scripts/bench.sh --quick
fi

echo "All checks passed."
