#!/usr/bin/env bash
# Benchmark runner: executes the overhead-relevant experiment benches
# (E6 pipeline cost, E10 throughput, E11 hardening overhead, E12 serving,
# E14 fleet serving, E15 soak runtime, E16 fused verify-on-read,
# E17 falsification search, E18 fuzz smoke)
# and collects machine-readable medians.
#
# Usage:
#   scripts/bench.sh           # full run, writes BENCH_pr10.json at repo root
#   scripts/bench.sh --quick   # CI smoke: short budgets, writes
#                              # target/BENCH_quick.json and validates that
#                              # every expected bench emitted an entry
#
# Output format: one JSON object per line,
#   {"id": "<group>/<bench>", "median_ns": N, "mean_ns": N, "min_ns": N}
# written by the vendored criterion shim when SAFEX_BENCH_JSON is set.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

BENCHES=(e6_overhead e10_throughput e11_fault_campaign e12_serving e13_repair e14_fleet e15_soak e16_fused e17_falsify e18_fuzz)

if [[ "$QUICK" == 1 ]]; then
    OUT="target/BENCH_quick.json"
    export SAFEX_BENCH_QUICK=1
else
    OUT="BENCH_pr10.json"
fi
mkdir -p "$(dirname "$OUT")" 2>/dev/null || true
rm -f "$OUT"
export SAFEX_BENCH_JSON="$PWD/$OUT"

for bench in "${BENCHES[@]}"; do
    echo "==> cargo bench -p safex-bench --bench $bench"
    cargo bench -p safex-bench --bench "$bench"
done

echo "==> wrote $OUT ($(wc -l <"$OUT") entries)"

# Every bench binary must have emitted at least one entry; a missing
# prefix means a bench silently stopped registering its group.
for prefix in e6_pipeline_decide e10_batch_256 e11_hardened_inference e12_serving e13_repair_overhead e14_fleet/fleet_replay e14_fleet/stats/cache_hit_rate e14_fleet/stats/time_in_state e14_fleet/stats/fairness e15_soak/soak_replay e15_soak/snapshot_codec e15_soak/restore_stage e15_soak/stats/swap_latency e15_soak/stats/watchdog e15_soak/stats/restore_fidelity e16_fused/bare_engine e16_fused/fused_every_decision e16_fused/fused_cadence_8 e16_fused/requests16_batch1 e16_fused/requests16_batch16 e17_falsify/classification_eval e17_falsify/trajectory_episode e17_falsify/search_trajectory e17_falsify/stats/automotive e17_falsify/stats/railway e17_falsify/stats/space e17_falsify/stats/trajectory e18_fuzz/mutate_probe_snapshot e18_fuzz/mutate_probe_model e18_fuzz/queue_sequence e18_fuzz/stats/smoke_wall_ms e18_fuzz/stats/smoke_cases; do
    if ! grep -q "\"id\":\"$prefix" "$OUT"; then
        echo "error: no benchmark entries matching '$prefix' in $OUT" >&2
        exit 1
    fi
done
echo "All expected benchmark groups present."

# Perf floor for the fused verify-on-read kernels: hardened inference
# with in-pass digests must stay within 2.0x of the bare engine. The
# ratio is generous against the 1.5x full-run target so CI jitter in
# --quick mode does not flap the gate.
median() {
    grep "\"id\":\"$1\"" "$OUT" | sed -n 's/.*"median_ns":\([0-9]*\).*/\1/p' | head -1
}
BARE=$(median "e16_fused/bare_engine")
FUSED=$(median "e16_fused/fused_every_decision")
if [[ -n "$BARE" && -n "$FUSED" && "$BARE" -gt 0 ]]; then
    RATIO_X100=$((FUSED * 100 / BARE))
    echo "fused/bare per-decision ratio: ${RATIO_X100}% (fused ${FUSED}ns vs bare ${BARE}ns)"
    if [[ "$RATIO_X100" -gt 200 ]]; then
        echo "error: fused every-decision hardening costs ${RATIO_X100}% of bare (>200%)." >&2
        echo "       The in-pass digest sweep regressed; see crates/tensor/src/ops.rs." >&2
        exit 1
    fi
else
    echo "error: could not extract e16 medians from $OUT" >&2
    exit 1
fi
