//! Experiment E3: safety patterns under channel-fault injection.
//!
//! Wraps the trained automotive classifier in a fault injector (silent
//! wrong answers, stuck-at outputs, detectable crashes) and measures, per
//! safety pattern: hazard coverage (faulted decisions that did NOT lead to
//! an acted-on wrong class), availability (fraction of nominal proceeds),
//! false-trip rate (conservative decisions with no fault present), and
//! evaluation cost.
//!
//! Run with: `cargo run --release --example pattern_faults`

use safexplain::demo;
use safexplain::nn::{Engine, QEngine, QModel};
use safexplain::patterns::channel::{Channel, ConstantChannel, ModelChannel, QuantChannel};
use safexplain::patterns::fault::{FaultModel, FaultyChannel, InjectedFault};
use safexplain::patterns::pattern::{
    Bare, MonitorActuator, SafetyBag, SafetyPattern, TwoOutOfThree,
};
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::Dataset;
use safexplain::tensor::DetRng;

/// Builds the faulty primary channel for one trial.
fn faulty_primary(
    model: &safexplain::nn::Model,
    fault: FaultModel,
    classes: usize,
    seed: u64,
) -> FaultyChannel {
    let inner = ModelChannel::new("primary", Engine::new(model.clone()));
    FaultyChannel::new(inner, fault, classes, DetRng::new(seed)).expect("valid fault model")
}

struct Tally {
    decisions: u64,
    hazards: u64,     // fault present AND wrong class acted on
    faults: u64,      // faults injected
    false_trips: u64, // conservative with no fault present
    clean: u64,       // decisions with no fault present
    proceeds_ok: u64, // correct nominal proceeds
    cost: u64,
}

fn run_pattern(
    mut pattern: Box<dyn SafetyPattern>,
    injector_stats: impl Fn() -> InjectedFault,
    data: &Dataset,
    rounds: usize,
) -> Result<Tally, Box<dyn std::error::Error>> {
    let mut t = Tally {
        decisions: 0,
        hazards: 0,
        faults: 0,
        false_trips: 0,
        clean: 0,
        proceeds_ok: 0,
        cost: 0,
    };
    for _ in 0..rounds {
        for s in data.samples() {
            let d = pattern.decide(&s.input)?;
            let fault = injector_stats();
            let faulted = fault != InjectedFault::None;
            t.decisions += 1;
            t.cost += u64::from(d.total_cost());
            if faulted {
                t.faults += 1;
                // Hazard: the system acted on a class different from the
                // truth while a fault was active.
                if let Some(class) = d.action.class() {
                    if d.action.is_proceed() && class != s.label {
                        t.hazards += 1;
                    }
                }
            } else {
                t.clean += 1;
                if d.action.is_conservative() {
                    t.false_trips += 1;
                } else if d.action.class() == Some(s.label) {
                    t.proceeds_ok += 1;
                }
            }
        }
    }
    Ok(t)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(55);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 30,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.7, &mut rng)?;
    let model = demo::train_mlp(&train, 40, 7)?;
    let model_b = demo::train_mlp(&train, 40, 8)?; // diverse second opinion
    let classes = data.classes();
    let fault = FaultModel {
        wrong_class: 0.06,
        stuck: 0.02,
        crash: 0.02,
        erratic: 0.0,
    };
    let rounds = 20;

    println!("== E3: safety patterns under fault injection ==");
    println!(
        "fault model per decision: wrong-class 6%, stuck 2%, crash 2% (total {:.0}%)",
        fault.total() * 100.0
    );
    println!("{} test frames x {} rounds", test.len(), rounds);
    println!();
    println!(
        "{:<18} {:>9} {:>10} {:>11} {:>11} {:>9}",
        "pattern", "hazards", "coverage", "false-trip", "avail(ok)", "cost/dec"
    );

    // Shared injector-bookkeeping: each pattern gets its own injector; we
    // thread `last_fault` out through a mutex captured by the closure
    // (channels are `Send`, so `Rc<RefCell<..>>` is not an option).
    use std::sync::{Arc, Mutex};

    /// Wraps a faulty channel so the latest injected fault is observable
    /// from outside the pattern.
    struct Reporting {
        inner: FaultyChannel,
        last: Arc<Mutex<InjectedFault>>,
    }
    impl Channel for Reporting {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn decide(
            &mut self,
            input: &[f32],
        ) -> Result<safexplain::patterns::channel::ChannelVerdict, safexplain::patterns::PatternError>
        {
            let r = self.inner.decide(input);
            *self.last.lock().expect("fault cell") = self.inner.last_fault();
            r
        }
    }

    let build_reporting = |seed: u64| -> (Reporting, Arc<Mutex<InjectedFault>>) {
        let cell = Arc::new(Mutex::new(InjectedFault::None));
        let inner = faulty_primary(&model, fault, classes, seed);
        (
            Reporting {
                inner,
                last: cell.clone(),
            },
            cell,
        )
    };

    let mut rows: Vec<(String, Tally)> = Vec::new();

    // Bare.
    let (ch, cell) = build_reporting(1);
    let tally = run_pattern(
        Box::new(Bare::new(ch)),
        move || *cell.lock().expect("fault cell"),
        &test,
        rounds,
    )?;
    rows.push(("bare".into(), tally));

    // Monitor-actuator (confidence floor 0.6).
    let (ch, cell) = build_reporting(2);
    let tally = run_pattern(
        Box::new(MonitorActuator::new(ch, 0.6, 0)?),
        move || *cell.lock().expect("fault cell"),
        &test,
        rounds,
    )?;
    rows.push(("monitor_actuator".into(), tally));

    // Safety bag: veto when the proposal contradicts a brightness rule
    // (an object proposal with an almost-dark frame is implausible).
    let (ch, cell) = build_reporting(3);
    let bag = SafetyBag::new(ch, |input: &[f32], class| {
        let bright = input.iter().filter(|&&p| p > 0.6).count();
        // Claiming an object with no bright pixels is implausible.
        class == 0 || bright >= 4
    });
    let tally = run_pattern(
        Box::new(bag),
        move || *cell.lock().expect("fault cell"),
        &test,
        rounds,
    )?;
    rows.push(("safety_bag".into(), tally));

    // 2oo3: faulty primary + quantised twin + diverse second model.
    let (ch, cell) = build_reporting(4);
    let qtwin = QuantChannel::new("quant", QEngine::new(QModel::quantize(&model)?));
    let diverse = ModelChannel::new("diverse", Engine::new(model_b.clone()));
    let voter = TwoOutOfThree::new(ch, qtwin, diverse)?;
    let tally = run_pattern(
        Box::new(voter),
        move || *cell.lock().expect("fault cell"),
        &test,
        rounds,
    )?;
    rows.push(("two_out_of_three".into(), tally));

    // Fallback-only reference (never hazards, never available).
    let cell = Arc::new(Mutex::new(InjectedFault::None));
    let c2 = cell.clone();
    let tally = run_pattern(
        Box::new(Bare::new(ConstantChannel::new("always-safe", 0))),
        move || *c2.lock().expect("fault cell"),
        &test,
        rounds,
    )?;
    drop(cell);
    rows.push(("constant-fallback".into(), tally));

    for (name, t) in &rows {
        let coverage = if t.faults == 0 {
            1.0
        } else {
            1.0 - t.hazards as f64 / t.faults as f64
        };
        println!(
            "{:<18} {:>9} {:>9.1}% {:>10.1}% {:>10.1}% {:>9.2}",
            name,
            t.hazards,
            coverage * 100.0,
            100.0 * t.false_trips as f64 / t.clean.max(1) as f64,
            100.0 * t.proceeds_ok as f64 / t.clean.max(1) as f64,
            t.cost as f64 / t.decisions as f64
        );
    }
    println!();
    println!("expected shape: hazard coverage bare < monitor/bag < 2oo3; cost rises");
    println!("with sophistication; false trips price the monitors' aggressiveness.");
    Ok(())
}
