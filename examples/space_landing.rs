//! Space case study: terrain hazard avoidance for visual landing at SIL 4.
//!
//! A lander's hazard-detection function runs the highest-criticality
//! configuration the crate offers: 2-out-of-3 diverse redundancy (float
//! build + bit-exact quantised build + independently trained second
//! model) for channel faults, *layered with* an ODD envelope that
//! detects sensor degradation — demonstrating the E6 finding that
//! redundancy alone is blind to distribution shift.
//!
//! Run with: `cargo run --release --example space_landing`

use safexplain::demo;
use safexplain::nn::{Engine, QEngine, QModel};
use safexplain::patterns::channel::{ModelChannel, QuantChannel};
use safexplain::patterns::fault::{FaultModel, FaultyChannel};
use safexplain::patterns::pattern::{SafetyPattern, TwoOutOfThree};
use safexplain::scenarios::shift::Shift;
use safexplain::scenarios::space::{self, SpaceConfig, CLASS_NAMES};
use safexplain::supervision::odd::OddEnvelope;
use safexplain::tensor::DetRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(404);
    let data = space::generate(
        &SpaceConfig {
            samples_per_class: 60,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.7, &mut rng)?;
    let model_a = demo::train_mlp(&train, 60, 7)?;
    let model_b = demo::train_mlp(&train, 60, 8)?;
    let mut probe = Engine::new(model_a.clone());
    println!("== space landing hazard detection at SIL4 ==");
    println!(
        "classes: {:?}; nominal accuracy {:.0}%",
        CLASS_NAMES,
        demo::accuracy(&mut probe, &test)? * 100.0
    );

    // ODD envelope fitted on training imagery: detects sensor degradation
    // (dead pixels, gain loss) before it reaches the voter.
    let envelope = OddEnvelope::fit(&train.inputs_owned(), 0.3, 0.05)?;

    // Diverse 2oo3 voter; the primary channel carries injected faults to
    // show what the voter is *for*.
    let faulty_primary = FaultyChannel::new(
        ModelChannel::new("primary", Engine::new(model_a.clone())),
        FaultModel {
            wrong_class: 0.08,
            stuck: 0.02,
            crash: 0.02,
            erratic: 0.0,
        },
        data.classes(),
        DetRng::new(5),
    )?;
    let quant_twin = QuantChannel::new("quant", QEngine::new(QModel::quantize(&model_a)?));
    let diverse = ModelChannel::new("diverse", Engine::new(model_b));
    let mut voter = TwoOutOfThree::new(faulty_primary, quant_twin, diverse)?;

    // Streams: nominal descent imagery, then sensor degradation.
    let degraded = Shift::DeadPixels(0.3).apply(&test, &mut rng)?;

    println!();
    println!(
        "{:<22} {:>7} {:>10} {:>12} {:>11} {:>12}",
        "phase", "frames", "odd-gate", "acted-right", "acted-wrong", "voter-stops"
    );
    for (phase, stream) in [("nominal", &test), ("sensor-degraded", &degraded)] {
        let mut odd_gated = 0usize;
        let mut right = 0usize;
        let mut wrong = 0usize;
        let mut stops = 0usize;
        for s in stream.samples() {
            // Layer 1: the specified ODD envelope.
            if !envelope.contains(&s.input)? {
                odd_gated += 1;
                continue; // abort to safe hover/divert
            }
            // Layer 2: the diverse voter.
            let d = voter.decide(&s.input)?;
            match d.action.class() {
                Some(class) if class == s.label => right += 1,
                Some(_) => wrong += 1,
                None => stops += 1,
            }
        }
        println!(
            "{:<22} {:>7} {:>10} {:>12} {:>11} {:>12}",
            phase,
            stream.len(),
            odd_gated,
            right,
            wrong,
            stops
        );
    }
    println!();
    println!("expected shape: nominal frames flow through the envelope and the voter");
    println!("masks nearly all injected channel faults (acted-wrong stays near the");
    println!("model's own error rate); dead-pixel degradation is caught by the ODD");
    println!("envelope *before* the voter — the layer redundancy cannot provide.");
    Ok(())
}
