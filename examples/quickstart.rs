//! Quickstart: the whole SAFEXPLAIN story in one binary.
//!
//! Generates a synthetic automotive perception task, trains a classifier,
//! assembles the SIL-2 recommended pipeline (simplex: Mahalanobis
//! supervisor gating the DL channel with a safe fallback), runs it on
//! nominal and out-of-distribution frames, explains one decision, and
//! prints the certification report with a verified evidence chain.
//!
//! Run with: `cargo run --example quickstart`

use safexplain::core::assemble::{self, AssemblySpec};
use safexplain::core::report::CertificationReport;
use safexplain::demo;
use safexplain::patterns::Sil;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::shift::Shift;
use safexplain::tensor::DetRng;
use safexplain::xai::saliency::{occlusion_saliency, OcclusionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(2024);

    // 1. Data and model (pillar 3: the deterministic DL library).
    println!("== SAFEXPLAIN quickstart ==");
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 60,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.75, &mut rng)?;
    println!(
        "scenario: automotive, {} train / {} test samples, classes {:?}",
        train.len(),
        test.len(),
        train.class_names()
    );
    let model = demo::train_mlp(&train, 60, 7)?;
    println!("model: {model}");

    // 2. Assemble the SIL-2 recommended pipeline (pillar 2).
    let spec = AssemblySpec {
        sil: Sil::Sil2,
        fallback_class: 3, // treat "cyclist" slot as the conservative class
        ..Default::default()
    };
    let mut pipeline = assemble::for_sil(
        "automotive-perception",
        &spec,
        std::slice::from_ref(&model),
        &train.inputs_owned(),
        &train.labels(),
    )?;
    println!(
        "pipeline: pattern={}, target {}",
        pipeline.pattern_name(),
        pipeline.sil()
    );

    // 3. Nominal operation.
    let mut nominal_ok = 0usize;
    for s in test.samples() {
        let d = pipeline.decide(&s.input)?;
        if d.action.is_proceed() && d.action.class() == Some(s.label) {
            nominal_ok += 1;
        }
    }
    println!(
        "nominal stream: {}/{} correct proceeds, conservative rate {:.1}%",
        nominal_ok,
        test.len(),
        pipeline.conservative_rate() * 100.0
    );

    // 4. Out-of-distribution operation (pillar 1: trust).
    let shifted = Shift::GaussianNoise(0.8).apply(&test, &mut rng)?;
    let before = pipeline.conservative_count();
    for s in shifted.samples() {
        pipeline.decide(&s.input)?;
    }
    let rejected = pipeline.conservative_count() - before;
    println!(
        "shifted stream (noise σ=0.8): supervisor rejected {}/{} frames to the fallback",
        rejected,
        shifted.len()
    );

    // 5. Explain one decision (pillar 1: explainability).
    let sample = test
        .samples()
        .iter()
        .find(|s| s.salient.is_some())
        .expect("object sample exists");
    let mut engine = safexplain::nn::Engine::new(model);
    let map = occlusion_saliency(
        &mut engine,
        &sample.input,
        sample.label,
        &OcclusionConfig::default(),
    )?;
    let (py, px) = map.peak();
    let truth = sample.salient.expect("checked above");
    println!(
        "explanation: saliency peak at ({py},{px}); ground-truth object at y={}..{} x={}..{} -> {}",
        truth.y,
        truth.y + truth.h,
        truth.x,
        truth.x + truth.w,
        if truth.contains(py, px) {
            "HIT"
        } else {
            "miss"
        }
    );

    // 6. Evidence and report (pillar 1: traceability).
    pipeline.verify_evidence()?;
    let report = CertificationReport::from_pipeline(&pipeline)
        .with_note("synthetic scenario per DESIGN.md substitutions");
    println!(
        "evidence chain verified ({} records)",
        pipeline.evidence().map(|c| c.len()).unwrap_or(0)
    );
    println!(
        "certification report: {}",
        report.to_json().to_string_compact()
    );
    Ok(())
}
