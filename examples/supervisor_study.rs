//! Experiment E1: out-of-distribution supervisor quality vs training
//! quality — the reproduction of the consortium's supervisor studies
//! (Henriksson et al., SEAA 2019 / IST 2020).
//!
//! Trains the automotive classifier to increasing quality levels and, at
//! each level, evaluates four supervisors (plus their ensemble) on
//! separating in-distribution test frames from shifted frames. Prints the
//! AUROC / TPR@FPR5% / FPR@TPR95% table.
//!
//! Run with: `cargo run --release --example supervisor_study`

use safexplain::demo;
use safexplain::nn::Engine;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::shift::Shift;
use safexplain::scenarios::Dataset;
use safexplain::supervision::ensemble::ScoreEnsemble;
use safexplain::supervision::observation::{observe, Observation};
use safexplain::supervision::roc;
use safexplain::supervision::supervisor::{
    LogitMargin, Mahalanobis, Reconstruction, SoftmaxThreshold, Supervisor,
};
use safexplain::tensor::DetRng;

fn observations(
    engine: &mut Engine,
    data: &Dataset,
) -> Result<Vec<Observation>, Box<dyn std::error::Error>> {
    let mut out = Vec::with_capacity(data.len());
    for s in data.samples() {
        out.push(observe(engine, &s.input)?);
    }
    Ok(out)
}

fn scores(
    sup: &dyn Supervisor,
    obs: &[Observation],
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    Ok(obs
        .iter()
        .map(|o| sup.score(o))
        .collect::<Result<Vec<_>, _>>()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(41);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 60,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.7, &mut rng)?;
    let ood = Shift::GaussianNoise(0.5).apply(&test, &mut rng)?;

    println!("== E1: supervisor quality vs training quality ==");
    println!("scenario: automotive; OOD shift: gaussian noise sigma=0.5");
    println!();
    println!(
        "{:<7} {:<9} {:<18} {:>7} {:>10} {:>11}",
        "epochs", "test-acc", "supervisor", "AUROC", "TPR@FPR5%", "FPR@TPR95%"
    );

    for &epochs in &[1usize, 5, 20, 60] {
        let model = demo::train_mlp(&train, epochs, 7)?;
        let mut engine = Engine::new(model);
        let acc = demo::accuracy(&mut engine, &test)?;

        let train_obs = observations(&mut engine, &train)?;
        let id_obs = observations(&mut engine, &test)?;
        let ood_obs = observations(&mut engine, &ood)?;
        let labels = train.labels();

        let mut mahalanobis = Mahalanobis::new();
        mahalanobis.fit(&train_obs, &labels)?;
        let mut reconstruction = Reconstruction::new(8)?;
        reconstruction.fit(&train_obs, &labels)?;

        let supervisors: Vec<Box<dyn Supervisor>> = vec![
            Box::new(SoftmaxThreshold::new()),
            Box::new(LogitMargin::new()),
            Box::new(mahalanobis.clone()),
            Box::new(reconstruction.clone()),
        ];
        let ensemble = ScoreEnsemble::fit(
            vec![
                Box::new(SoftmaxThreshold::new()),
                Box::new(LogitMargin::new()),
                Box::new(mahalanobis),
                Box::new(reconstruction),
            ],
            &train_obs,
        )?;

        let mut rows: Vec<(&str, roc::RocSummary)> = Vec::new();
        for sup in &supervisors {
            let id_scores = scores(sup.as_ref(), &id_obs)?;
            let ood_scores = scores(sup.as_ref(), &ood_obs)?;
            rows.push((sup.name(), roc::summarize(&id_scores, &ood_scores)?));
        }
        let id_scores = scores(&ensemble, &id_obs)?;
        let ood_scores = scores(&ensemble, &ood_obs)?;
        rows.push((ensemble.name(), roc::summarize(&id_scores, &ood_scores)?));

        for (i, (name, s)) in rows.iter().enumerate() {
            let (ec, ac) = if i == 0 {
                (format!("{epochs}"), format!("{:.2}", acc))
            } else {
                (String::new(), String::new())
            };
            println!(
                "{:<7} {:<9} {:<18} {:>7.3} {:>10.3} {:>11.3}",
                ec, ac, name, s.auroc, s.tpr_at_fpr5, s.fpr_at_tpr95
            );
        }
        println!();
    }
    println!("expected shape: distance-based supervisors (mahalanobis, reconstruction)");
    println!("detect covariate shift near-perfectly at every training level, while the");
    println!("softmax/logit baselines are weak and can even be anti-correlated -- the");
    println!("overconfidence-on-OOD failure the supervisor literature documents.");
    Ok(())
}
