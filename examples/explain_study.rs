//! Experiments E4 + E7: explanation fidelity and confidence calibration.
//!
//! E4: scores occlusion and gradient saliency explanations against the
//! scenario generator's ground-truth object locations (pointing game,
//! best-window IoU, mass concentration), as a function of model accuracy.
//!
//! E7: measures expected calibration error and Brier score before and
//! after temperature scaling, and fits a trust model predicting
//! per-prediction correctness.
//!
//! Run with: `cargo run --release --example explain_study`

use safexplain::demo;
use safexplain::nn::Engine;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::supervision::observation::observe;
use safexplain::supervision::supervisor::{Mahalanobis, Supervisor};
use safexplain::tensor::DetRng;
use safexplain::xai::calibration::{brier_score, expected_calibration_error, TemperatureScaling};
use safexplain::xai::fidelity;
use safexplain::xai::saliency::{gradient_saliency, occlusion_saliency, OcclusionConfig};
use safexplain::xai::trust::TrustModel;

/// Per-sample logits with ground-truth labels.
type LogitSet = (Vec<Vec<f32>>, Vec<usize>);
/// Per-sample trust features with correctness flags.
type FeatureSet = (Vec<Vec<f64>>, Vec<bool>);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(31);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 50,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.7, &mut rng)?;

    println!("== E4: explanation fidelity vs model quality ==");
    println!(
        "{:<7} {:<9} {:<10} {:>14} {:>9} {:>9}",
        "epochs", "test-acc", "explainer", "pointing-game", "IoU", "mass"
    );
    for &epochs in &[5usize, 60] {
        let model = demo::train_mlp(&train, epochs, 7)?;
        let mut engine = Engine::new(model);
        let acc = demo::accuracy(&mut engine, &test)?;
        // Score explanations on object-bearing test samples (cap for time).
        let subjects: Vec<_> = test
            .samples()
            .iter()
            .filter(|s| s.salient.is_some())
            .take(30)
            .collect();
        let mut occ_pairs = Vec::new();
        let mut grad_pairs = Vec::new();
        for s in &subjects {
            let truth = s.salient.expect("filtered");
            let occ =
                occlusion_saliency(&mut engine, &s.input, s.label, &OcclusionConfig::default())?;
            occ_pairs.push((occ, truth));
            let grad = gradient_saliency(&mut engine, &s.input, s.label, 0.05)?;
            grad_pairs.push((grad, truth));
        }
        let occ_report = fidelity::evaluate_batch(&occ_pairs)?;
        let grad_report = fidelity::evaluate_batch(&grad_pairs)?;
        println!(
            "{:<7} {:<9.2} {:<10} {:>13.0}% {:>9.2} {:>9.2}",
            epochs,
            acc,
            "occlusion",
            occ_report.pointing_game * 100.0,
            occ_report.mean_iou,
            occ_report.mean_mass
        );
        println!(
            "{:<7} {:<9} {:<10} {:>13.0}% {:>9.2} {:>9.2}",
            "",
            "",
            "gradient",
            grad_report.pointing_game * 100.0,
            grad_report.mean_iou,
            grad_report.mean_mass
        );
    }
    println!();
    println!("expected shape: fidelity rises with model accuracy; occlusion dominates");
    println!("finite-difference gradients (which are noisy at f32 resolution), and");
    println!("occlusion clears the ~20% random-pointing baseline by a wide margin.");
    println!();

    // E7: calibration.
    println!("== E7: confidence calibration ==");
    let model = demo::train_mlp(&train, 60, 7)?;
    let mut engine = Engine::new(model);
    // Collect logits + labels on a calibration split and a test split.
    let (cal, eval) = test.split(0.5, &mut rng)?;
    let collect = |engine: &mut Engine,
                   data: &safexplain::scenarios::Dataset|
     -> Result<LogitSet, Box<dyn std::error::Error>> {
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for s in data.samples() {
            let obs = observe(engine, &s.input)?;
            logits.push(obs.logits.clone());
            labels.push(s.label);
        }
        Ok((logits, labels))
    };
    let (cal_logits, cal_labels) = collect(&mut engine, &cal)?;
    let (eval_logits, eval_labels) = collect(&mut engine, &eval)?;

    let identity = TemperatureScaling::identity();
    let fitted = TemperatureScaling::fit(&cal_logits, &cal_labels)?;
    println!("fitted temperature: {:.3}", fitted.temperature());
    println!("{:<22} {:>8} {:>8}", "transform", "ECE", "Brier");
    for (name, ts) in [("identity (T=1)", identity), ("temperature-scaled", fitted)] {
        let probs: Vec<Vec<f32>> = eval_logits.iter().map(|z| ts.apply(z)).collect();
        let ece = expected_calibration_error(&probs, &eval_labels, 10)?;
        let brier = brier_score(&probs, &eval_labels)?;
        println!("{:<22} {:>8.3} {:>8.3}", name, ece, brier);
    }
    println!();

    // Trust model: predict correctness from (confidence, margin, anomaly).
    println!("== E7b: trust model (P(prediction correct)) ==");
    let mut mahalanobis = Mahalanobis::new();
    let mut train_obs = Vec::new();
    for s in train.samples() {
        train_obs.push(observe(&mut engine, &s.input)?);
    }
    mahalanobis.fit(&train_obs, &train.labels())?;
    let featurise = |engine: &mut Engine,
                     data: &safexplain::scenarios::Dataset|
     -> Result<FeatureSet, Box<dyn std::error::Error>> {
        let mut feats = Vec::new();
        let mut correct = Vec::new();
        for s in data.samples() {
            let obs = observe(engine, &s.input)?;
            let margin = {
                let mut v = obs.logits.clone();
                v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                (v[0] - v[1]) as f64
            };
            feats.push(vec![
                obs.confidence() as f64,
                margin,
                mahalanobis.score(&obs)?,
            ]);
            correct.push(obs.predicted_class() == s.label);
        }
        Ok((feats, correct))
    };
    let (train_feats, train_correct) = featurise(&mut engine, &cal)?;
    let trust = TrustModel::fit(&train_feats, &train_correct, 400, 0.5)?;
    let (eval_feats, eval_correct) = featurise(&mut engine, &eval)?;
    // Correlation between trust score and actual correctness.
    let trust_scores: Vec<f64> = eval_feats
        .iter()
        .map(|f| trust.trust(f))
        .collect::<Result<Vec<_>, _>>()?;
    let correct_f: Vec<f64> = eval_correct.iter().map(|&c| c as u8 as f64).collect();
    let corr = safexplain::tensor::stats::pearson(&trust_scores, &correct_f)?;
    let mean_trust_correct: f64 = trust_scores
        .iter()
        .zip(&eval_correct)
        .filter(|(_, &c)| c)
        .map(|(t, _)| *t)
        .sum::<f64>()
        / eval_correct.iter().filter(|&&c| c).count().max(1) as f64;
    let mean_trust_wrong: f64 = trust_scores
        .iter()
        .zip(&eval_correct)
        .filter(|(_, &c)| !c)
        .map(|(t, _)| *t)
        .sum::<f64>()
        / eval_correct.iter().filter(|&&c| !c).count().max(1) as f64;
    println!("trust-correctness correlation: {corr:.3}");
    println!(
        "mean trust on correct predictions: {mean_trust_correct:.3}; on wrong: {mean_trust_wrong:.3}"
    );
    println!();
    println!("expected shape: temperature scaling reduces ECE; trust scores separate");
    println!("correct from incorrect predictions (positive correlation, gap in means).");
    Ok(())
}
