//! Experiments E2 + E8: MBPTA pWCET curves and co-runner interference.
//!
//! Compiles a convolutional inference workload to a memory trace, measures
//! it on four platform configurations (deterministic LRU, time-randomised,
//! time-randomised + 3 co-runners shared vs partitioned L2), runs the
//! MBPTA protocol on each admissible campaign, and prints the pWCET table
//! and curve series.
//!
//! Run with: `cargo run --release --example timing_analysis`

use safexplain::demo;
use safexplain::platform::platform::{Platform, PlatformConfig};
use safexplain::platform::TraceProgram;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::tensor::stats;
use safexplain::tensor::DetRng;
use safexplain::timing::mbpta::{analyze, MbptaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(77);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 2,
            ..Default::default()
        },
        &mut rng,
    )?;
    let model = demo::convnet_for(&data, 3)?;
    let program = TraceProgram::from_model(&model, 512);
    println!("== E2/E8: MBPTA timing analysis of a DL inference workload ==");
    println!(
        "workload: {} ({} trace ops, {} memory accesses)",
        model.summary(),
        program.len(),
        program.access_count()
    );
    println!();

    let configs: Vec<(&str, PlatformConfig)> = vec![
        ("deterministic-lru", PlatformConfig::deterministic()),
        ("time-randomized", PlatformConfig::time_randomized()),
        (
            "randomized+3corunners-shared",
            PlatformConfig::time_randomized().with_co_runners(3),
        ),
        (
            "randomized+3corunners-partitioned",
            PlatformConfig::time_randomized()
                .with_co_runners(3)
                .partitioned(),
        ),
    ];

    let runs = 600;
    println!(
        "{:<34} {:>10} {:>10} {:>6} {:>12} {:>12}",
        "platform", "mean", "max(HWM)", "iid", "pWCET@1e-9", "pWCET@1e-12"
    );
    let mut curves = Vec::new();
    for (name, config) in &configs {
        let platform = Platform::new(*config)?;
        let mut campaign_rng = DetRng::new(7);
        let samples = platform.measure(&program, runs, &mut campaign_rng)?;
        let summary = stats::summary(&samples)?;
        if summary.std_dev == 0.0 {
            println!(
                "{:<34} {:>10.0} {:>10.0} {:>6} {:>12} {:>12}",
                name, summary.mean, summary.max, "n/a", "=HWM", "=HWM"
            );
            continue;
        }
        let result = analyze(&samples, &MbptaConfig::default())?;
        let b9 = result.pwcet.bound_at(1e-9)?;
        let b12 = result.pwcet.bound_at(1e-12)?;
        println!(
            "{:<34} {:>10.0} {:>10.0} {:>6} {:>12.0} {:>12.0}",
            name,
            summary.mean,
            summary.max,
            if result.admissible() { "pass" } else { "FAIL" },
            b9,
            b12
        );
        curves.push((*name, result.pwcet.curve_points(12)?));
    }

    println!();
    println!("pWCET curves (exceedance probability -> cycles):");
    print!("{:<8}", "prob");
    for (name, _) in &curves {
        print!(" {:>34}", name);
    }
    println!();
    if let Some((_, first)) = curves.first() {
        for i in 0..first.len() {
            print!("{:<8.0e}", first[i].0);
            for (_, pts) in &curves {
                print!(" {:>34.0}", pts[i].1);
            }
            println!();
        }
    }
    println!();
    println!("expected shape: deterministic platform is constant (no curve);");
    println!("shared-cache contention inflates both mean and pWCET; partitioning");
    println!("recovers most of the inflation. Time-randomised tails are Gumbel-bounded.");
    Ok(())
}
