//! Railway case study: signal-aspect recognition with a degraded-mode
//! cascade.
//!
//! A railway signalling function must never act on a misread aspect, and
//! fog (contrast loss) is its canonical adverse condition. This example
//! builds a two-level degraded-mode cascade:
//!
//! * **level 0** — simplex: the DL channel gated by a Mahalanobis
//!   supervisor on its penultimate features (fog lands far outside the
//!   per-class feature clusters), falling back to *command stop*;
//! * **level 1 (degraded)** — command stop outright. Softmax confidence is
//!   *over-confident* on fog (see experiment E1), so a confidence-floor
//!   degraded mode would be unsafe; outside the operational design domain
//!   the only defensible action is the safe one.
//!
//! The cascade demotes after 3 consecutive supervisor trips and probes
//! recovery after 10 healthy frames — so it periodically retries level 0
//! during fog and immediately falls back again.
//!
//! Run with: `cargo run --release --example railway_monitor`

use safexplain::demo;
use safexplain::nn::Engine;
use safexplain::patterns::channel::ConstantChannel;
use safexplain::patterns::pattern::{Bare, Cascade, SafetyPattern, Simplex};
use safexplain::scenarios::railway::{self, RailwayConfig, CLASS_NAMES};
use safexplain::scenarios::shift::Shift;
use safexplain::supervision::observation::observe;
use safexplain::supervision::supervisor::{Mahalanobis, Supervisor};
use safexplain::supervision::CalibratedMonitor;
use safexplain::tensor::DetRng;

const STOP: usize = 2; // "stop" aspect = the safe action

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(88);
    let data = railway::generate(
        &RailwayConfig {
            samples_per_class: 50,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.7, &mut rng)?;
    let model = demo::train_mlp(&train, 50, 7)?;
    let mut engine = Engine::new(model.clone());
    println!("== railway signal recognition with degraded-mode cascade ==");
    println!(
        "classes: {:?}; nominal accuracy {:.0}%",
        CLASS_NAMES,
        demo::accuracy(&mut engine, &test)? * 100.0
    );

    // Level 0: simplex gated by a Mahalanobis feature-space supervisor.
    let mut supervisor = Mahalanobis::new();
    let mut train_obs = Vec::new();
    for s in train.samples() {
        train_obs.push(observe(&mut engine, &s.input)?);
    }
    supervisor.fit(&train_obs, &train.labels())?;
    let id_scores: Vec<f64> = train_obs
        .iter()
        .map(|o| supervisor.score(o))
        .collect::<Result<Vec<_>, _>>()?;
    let monitor = CalibratedMonitor::fit(Box::new(supervisor), &id_scores, 0.05)?;
    let simplex = Simplex::new(
        Engine::new(model.clone()),
        monitor,
        ConstantChannel::new("command-stop", STOP),
    );

    // Level 1 (degraded): command the safe aspect outright.
    let degraded = Bare::new(ConstantChannel::new("command-stop", STOP));

    let mut cascade = Cascade::new(vec![Box::new(simplex), Box::new(degraded)], 3, 10)?;

    // Drive: clear -> fog -> clear.
    let fog = Shift::Contrast(0.3).apply(&test, &mut rng)?;
    let phases: [(&str, &safexplain::scenarios::Dataset); 3] =
        [("clear", &test), ("fog", &fog), ("clear-again", &test)];

    println!();
    println!(
        "{:<12} {:>7} {:>12} {:>11} {:>14} {:>11}",
        "phase", "frames", "acted-right", "stops", "hazard-acts", "mode-after"
    );
    for (phase, stream) in phases {
        let mut acted_right = 0usize; // acted on the true aspect
        let mut stops = 0usize; // commanded the safe aspect (any mechanism)
        let mut hazards = 0usize; // acted on a WRONG non-stop aspect
        let frames = stream.len().min(40);
        for s in stream.samples().iter().take(frames) {
            let d = cascade.decide(&s.input)?;
            match d.action.class() {
                Some(class) if class == STOP && s.label != STOP => stops += 1,
                Some(class) if class == s.label => acted_right += 1,
                Some(_) => hazards += 1,
                None => stops += 1, // safe stop
            }
        }
        println!(
            "{:<12} {:>7} {:>12} {:>11} {:>14} {:>11}",
            phase,
            frames,
            acted_right,
            stops,
            hazards,
            format!("level-{}", cascade.current_level()),
        );
    }
    println!();
    println!("expected shape: clear weather runs at level-0 with high availability");
    println!("and zero hazardous acts; fog demotes the cascade to command-stop within");
    println!("a few frames (hazard count stays ~0 because misread aspects are never");
    println!("acted on); clear weather recovers level-0 via the healthy-streak probe.");
    Ok(())
}
