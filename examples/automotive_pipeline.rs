//! Experiment E6: criticality vs overhead — the SIL ladder on one
//! automotive function.
//!
//! Assembles the recommended pipeline at every SIL for the same trained
//! perception function and drives each through the same nominal, shifted,
//! and fault-free streams, reporting behaviour and cost side by side. Then
//! prices each pattern in platform cycles by measuring its channel
//! evaluations on the simulated platform.
//!
//! Run with: `cargo run --release --example automotive_pipeline`

use safexplain::core::assemble::{self, AssemblySpec};
use safexplain::core::report::CertificationReport;
use safexplain::demo;
use safexplain::patterns::Sil;
use safexplain::platform::platform::{Platform, PlatformConfig};
use safexplain::platform::TraceProgram;
use safexplain::scenarios::automotive::{self, AutomotiveConfig};
use safexplain::scenarios::shift::Shift;
use safexplain::tensor::DetRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(11);
    let data = automotive::generate(
        &AutomotiveConfig {
            samples_per_class: 50,
            ..Default::default()
        },
        &mut rng,
    )?;
    let (train, test) = data.split(0.7, &mut rng)?;
    let model_a = demo::train_mlp(&train, 50, 7)?;
    let model_b = demo::train_mlp(&train, 50, 8)?;
    let shifted = Shift::GaussianNoise(1.0).apply(&test, &mut rng)?;

    // Per-inference platform cost of one model evaluation (mean cycles on
    // the time-randomised platform).
    let program = TraceProgram::from_model(&model_a, 512);
    let platform = Platform::new(PlatformConfig::time_randomized())?;
    let cycles = platform.measure(&program, 50, &mut DetRng::new(3))?;
    let cycles_per_eval = cycles.iter().sum::<f64>() / cycles.len() as f64;

    println!("== E6: criticality ladder — behaviour and overhead per SIL ==");
    println!(
        "function: automotive perception; {} test frames nominal + {} heavily-noised",
        test.len(),
        shifted.len()
    );
    println!("platform cost of one channel evaluation: {cycles_per_eval:.0} cycles (mean)");
    println!();
    println!(
        "{:<5} {:<17} {:>9} {:>12} {:>13} {:>10} {:>14}",
        "SIL", "pattern", "nom-acc", "nom-conserv", "shift-conserv", "cost/dec", "cycles/dec"
    );

    for sil in Sil::ALL {
        let spec = AssemblySpec {
            sil,
            fallback_class: 0,
            confidence_floor: 0.45,
            input_range: (-0.5, 1.6),
            ..Default::default()
        };
        let mut pipeline = assemble::for_sil(
            &format!("perception-{sil}"),
            &spec,
            &[model_a.clone(), model_b.clone()],
            &train.inputs_owned(),
            &train.labels(),
        )?;

        let mut nominal_correct = 0usize;
        let mut total_cost = 0u64;
        for s in test.samples() {
            let d = pipeline.decide(&s.input)?;
            total_cost += u64::from(d.channel_evals);
            if d.action.is_proceed() && d.action.class() == Some(s.label) {
                nominal_correct += 1;
            }
        }
        let nominal_conservative = pipeline.conservative_count();

        for s in shifted.samples() {
            let d = pipeline.decide(&s.input)?;
            total_cost += u64::from(d.channel_evals);
        }
        let shift_conservative = pipeline.conservative_count() - nominal_conservative;

        let decisions = pipeline.decision_count();
        let cost_per_dec = total_cost as f64 / decisions as f64;
        println!(
            "{:<5} {:<17} {:>8.0}% {:>11.0}% {:>12.0}% {:>10.2} {:>14.0}",
            sil.to_string(),
            pipeline.pattern_name(),
            100.0 * nominal_correct as f64 / test.len() as f64,
            100.0 * nominal_conservative as f64 / test.len() as f64,
            100.0 * shift_conservative as f64 / shifted.len() as f64,
            cost_per_dec,
            cost_per_dec * cycles_per_eval
        );

        pipeline.verify_evidence()?;
        if sil == Sil::Sil4 {
            let report = CertificationReport::from_pipeline(&pipeline)
                .with_pwcet(1e-12, cycles_per_eval * 3.0 * 1.5)
                .with_note("cycles budget = 3 channel evals x 1.5 pWCET margin");
            println!();
            println!("SIL4 certification report:");
            println!("{}", report.to_json().to_string_compact());
        }
    }
    println!();
    println!("expected shape: cost/decision rises up the ladder. The supervisor-gated");
    println!("simplex and the input-envelope safety bag both reject the shifted stream");
    println!("wholesale. Note the 2oo3 voter's 0% shift rejection: redundancy defends");
    println!("against *channel faults*, not out-of-distribution inputs (the replicated");
    println!("channels are all fooled the same way) -- which is exactly why SAFEXPLAIN");
    println!("pairs redundancy patterns with supervisors rather than choosing one.");
    Ok(())
}
