#![forbid(unsafe_code)]
//! Offline re-implementation of the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace's
//! bench harness uses.
//!
//! The build environment cannot fetch crates, so this shim keeps the
//! `crates/bench` benchmarks source-compatible: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples of adaptively-batched iterations. Mean, median,
//! minimum, and throughput are printed in a criterion-like one-line
//! format. There are no HTML reports and no statistical regression
//! analysis — the output is meant for EXPERIMENTS.md tables, not
//! dashboards.
//!
//! Two environment variables hook the shim into `scripts/bench.sh`:
//!
//! * `SAFEX_BENCH_JSON=<path>` — append one JSON line per benchmark:
//!   `{"id": ..., "median_ns": ..., "mean_ns": ..., "min_ns": ...}`.
//! * `SAFEX_BENCH_QUICK=1` — shrink warmup/measurement budgets and cap
//!   sample counts so the whole suite runs as a CI smoke test.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (upstream criterion 0.5 does the
/// same on recent toolchains).
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick =
            std::env::var_os("SAFEX_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
        if quick {
            Criterion {
                default_sample_size: 10,
                warmup: Duration::from_millis(50),
                measurement: Duration::from_millis(250),
                quick,
            }
        } else {
            Criterion {
                default_sample_size: 30,
                warmup: Duration::from_millis(300),
                measurement: Duration::from_millis(1500),
                quick,
            }
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group: {name} ──");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let (warmup, measurement) = (self.warmup, self.measurement);
        run_benchmark(&id.into(), sample_size, warmup, measurement, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group (capped in quick
    /// mode so smoke runs stay fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(if self.criterion.quick { n.min(10) } else { n });
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &id,
            sample_size,
            self.criterion.warmup,
            self.criterion.measurement,
            f,
        );
        self
    }

    /// Ends the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; measures the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warmup: grow the per-sample iteration count until one warmup slice
    // elapses, so sampling amortises timer overhead for fast routines.
    let mut iters_per_sample: u64 = 1;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warmup_start.elapsed() >= warmup {
            break;
        }
        if b.elapsed < Duration::from_millis(10) {
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
    }

    // Scale iterations so all samples fit the measurement budget.
    let mut probe = Bencher {
        iters: iters_per_sample,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_sample = probe.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement / sample_size.max(1) as u32;
    if per_sample > budget_per_sample && iters_per_sample > 1 {
        let shrink = (per_sample.as_nanos() / budget_per_sample.as_nanos().max(1)).max(1);
        iters_per_sample = (iters_per_sample / shrink as u64).max(1);
    }

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size.max(1));
    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / iters_per_sample.max(1) as u32;
        total += b.elapsed;
        total_iters += iters_per_sample;
        samples.push(per_iter);
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = median_of_sorted(&samples);
    let mean = total / total_iters.max(1) as u32;
    println!(
        "{id:<50} median {:>12} mean {:>12} min {:>12} ({} samples x {} iters)",
        format_duration(median),
        format_duration(mean),
        format_duration(min),
        samples.len(),
        iters_per_sample,
    );
    if let Some(path) = std::env::var_os("SAFEX_BENCH_JSON") {
        if let Err(e) = append_json(&path, id, median, mean, min) {
            eprintln!("warning: could not append to {path:?}: {e}");
        }
    }
}

/// Median of an already-sorted sample list (even counts round toward the
/// lower-middle average).
fn median_of_sorted(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Appends one machine-readable JSON line per benchmark, so
/// `scripts/bench.sh` can assemble `BENCH_pr3.json` without parsing the
/// human-oriented table.
fn append_json(
    path: &std::ffi::OsStr,
    id: &str,
    median: Duration,
    mean: Duration,
    min: Duration,
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        file,
        "{{\"id\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{}}}",
        json_escape(id),
        median.as_nanos(),
        mean.as_nanos(),
        min.as_nanos(),
    )
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
