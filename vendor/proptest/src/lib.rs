#![forbid(unsafe_code)]
//! Offline, deterministic re-implementation of the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be fetched. This shim keeps the property tests
//! source-compatible: `proptest!` test blocks, range / `any` / tuple /
//! collection strategies, `prop_filter_map`, and the `prop_assert*` /
//! `prop_assume!` macros all behave as the tests expect.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! seeds: case generation is fully deterministic (seeded from the test
//! name), which matches this repository's determinism discipline — a
//! failing case reproduces identically on every run.

pub mod strategy;
pub mod test_runner;

/// `proptest::prelude::*` — the import surface the tests use.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `prop::` namespace (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
}

/// Defines deterministic property tests.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} of {}: {msg}", config.cases);
                    }
                }
            }
        }
        $crate::__proptest_each! { ($cfg); $($rest)* }
    };
}

/// Rejects the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).into(),
            ));
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}
