//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a deterministic RNG.
///
/// The shim generates directly (no value tree, no shrinking); strategies
/// are passed by reference so `generate` can be called once per case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying otherwise.
    ///
    /// Panics (failing the test) if no candidate survives after many
    /// retries — mirroring proptest's "too many global rejects".
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            f,
            reason,
        }
    }

    /// Keeps only values satisfying `f`, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

const MAX_REJECTS: usize = 1024;

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.base.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_REJECTS} candidates: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected {MAX_REJECTS} candidates: {}",
            self.reason
        );
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = f64::from(self.end) - f64::from(self.start);
                (f64::from(self.start) + rng.next_f64() * span) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ----------------------------------------------------------------- any

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.next_f64() * 2.0 - 1.0) as f32 * 1.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() * 2.0 - 1.0) * 1.0e12
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()` etc).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------- collections

/// Length specification for [`collection_vec`]: a fixed size or a range.
pub trait SizeRange {
    /// Samples a length.
    fn sample(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

/// Strategy for vectors of `elem` values (`prop::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    elem: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Builds a vector strategy; exposed as `prop::collection::vec`.
pub fn collection_vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { elem, len }
}
