//! Case configuration, deterministic RNG, and case outcomes.

/// How many cases a `proptest!` test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` precondition not met; the case is skipped.
    Reject(String),
    /// `prop_assert*!` failure; the test fails.
    Fail(String),
}

/// Deterministic generator RNG (splitmix64).
///
/// Seeded from the property's name so every test draws an independent,
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is < 2^-64, irrelevant for
        // test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
