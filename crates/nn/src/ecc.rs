//! ECC sidecar codec: detect-*and-correct* for parameter words.
//!
//! [`crate::harden`] can tell that a weight buffer changed (CRC golden
//! checksums) but not *where*, so every single-bit SEU — the dominant
//! fault class in every campaign we run — escalates the health ladder
//! even though the corruption is trivially reversible. This module adds
//! the missing half: an interleaved-parity sidecar computed per layer at
//! harden time that localises a single flipped bit to its exact word and
//! bit position and corrects it in place.
//!
//! ## Code construction
//!
//! The layer's parameters are treated as a stream of 32-bit words split
//! into blocks of [`EccConfig::block_words`] words. Per block the sidecar
//! stores one 32-bit *column parity* (the XOR of every word in the
//! block); per word it stores one *row parity* bit (the word's overall
//! parity, packed 64 to a `u64`). A single bit flip then produces two
//! independent syndromes:
//!
//! * the block's column parity differs from golden in exactly one bit —
//!   the flipped **bit position**;
//! * exactly one word's row parity differs — the flipped **word**.
//!
//! Crossing the two recovers the flip exactly. Any double flip breaks at
//! least one of the signatures (two column bits, zero or two flagged
//! rows, or damage in two blocks) and is reported
//! [`RepairOutcome::Uncorrectable`] — never miscorrected — so it keeps
//! the detect-and-escalate path. Rarer aliasing patterns (≥ 3 flips
//! forging a single-flip signature) are caught one level up: the
//! hardened engines re-verify the layer CRC after every repair and fall
//! back to [`crate::harden::HealthEvent::ChecksumMismatch`] when it
//! still disagrees.
//!
//! ## Overhead
//!
//! For `n` words in blocks of `B`: `⌈n/B⌉ × 32` column bits plus `n` row
//! bits against `32 n` data bits — at the default `B = 32` that is
//! ≈ 6.25 % of the protected parameters, reported per engine via
//! [`crate::harden::HardenedEngine::sidecar_overhead`] and per campaign
//! cell as `sidecar_overhead_pct`.

use crate::error::NnError;

/// Sidecar construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EccConfig {
    /// Words per parity block (≥ 1). Smaller blocks localise faster and
    /// tolerate more distributed multi-bit damage; larger blocks shrink
    /// the column-parity share of the sidecar. Default 32.
    pub block_words: usize,
}

impl Default for EccConfig {
    fn default() -> Self {
        EccConfig { block_words: 32 }
    }
}

impl EccConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] when `block_words` is zero.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.block_words == 0 {
            return Err(NnError::Fault(
                "ecc block size must be at least one word".into(),
            ));
        }
        Ok(())
    }
}

/// What a repair pass concluded about a word buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// No parity signature differs: the buffer matches the encoded state.
    Clean,
    /// Exactly one bit was flipped and has been restored in place.
    Corrected {
        /// Index of the repaired word in the buffer.
        word: usize,
        /// Bit position (0..32) that was flipped back.
        bit: u32,
    },
    /// The damage does not match a single-bit signature; the buffer was
    /// left untouched.
    Uncorrectable,
}

/// The encoded sidecar for one word buffer (one parametric layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccCode {
    block_words: usize,
    /// Per-block XOR of all words in the block.
    columns: Vec<u32>,
    /// Per-word parity bits, packed 64 per limb, word `i` in
    /// `rows[i / 64]` bit `i % 64`.
    rows: Vec<u64>,
    /// Number of protected words.
    words: usize,
}

impl EccCode {
    /// Encodes a sidecar over `words` using `block_words`-word blocks.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] for a zero block size.
    pub fn encode(words: &[u32], config: EccConfig) -> Result<Self, NnError> {
        config.validate()?;
        let block_words = config.block_words;
        let columns = words
            .chunks(block_words)
            .map(|block| block.iter().fold(0u32, |acc, &w| acc ^ w))
            .collect();
        let mut rows = vec![0u64; words.len().div_ceil(64)];
        for (i, &w) in words.iter().enumerate() {
            rows[i / 64] |= u64::from(w.count_ones() & 1) << (i % 64);
        }
        Ok(EccCode {
            block_words,
            columns,
            rows,
            words: words.len(),
        })
    }

    /// Number of words the sidecar protects.
    pub fn protected_words(&self) -> usize {
        self.words
    }

    /// Total sidecar size in bits (column parities + row parity bits).
    pub fn sidecar_bits(&self) -> u64 {
        self.columns.len() as u64 * 32 + self.words as u64
    }

    /// XOR fold of every column parity — equivalently, the XOR of every
    /// protected word. This is the whole-buffer signature the fused
    /// verify-on-read kernels accumulate alongside the CRC
    /// ([`safex_tensor::WeightDigest::parity`]), letting a cadence tick
    /// cross-check the sidecar without a second parameter sweep.
    pub fn parity_signature(&self) -> u32 {
        self.columns.iter().fold(0, |acc, &c| acc ^ c)
    }

    fn row_parity(&self, word: usize) -> u32 {
        ((self.rows[word / 64] >> (word % 64)) & 1) as u32
    }

    /// Checks `words` against the encoded state and corrects a single
    /// flipped bit in place.
    ///
    /// The correction rule is deliberately conservative: exactly one
    /// block may differ, its column syndrome must have exactly one bit
    /// set, and exactly one word in that block may have a flipped row
    /// parity. Every other signature — which covers *every* possible
    /// double flip — returns [`RepairOutcome::Uncorrectable`] with the
    /// buffer unmodified.
    ///
    /// # Panics
    ///
    /// Panics if `words` has a different length than the encoded buffer
    /// (sidecars are layer-shaped; mixing them up is a programming
    /// error, not a fault).
    pub fn repair(&self, words: &mut [u32]) -> RepairOutcome {
        assert_eq!(
            words.len(),
            self.words,
            "sidecar encodes {} words, got {}",
            self.words,
            words.len()
        );
        // Locate damaged blocks and flagged rows in one pass.
        let mut damaged_block: Option<(usize, u32)> = None;
        let mut damaged_blocks = 0usize;
        for (b, block) in words.chunks(self.block_words).enumerate() {
            let syndrome = block.iter().fold(self.columns[b], |acc, &w| acc ^ w);
            if syndrome != 0 {
                damaged_blocks += 1;
                damaged_block = Some((b, syndrome));
            }
        }
        let mut flagged_word: Option<usize> = None;
        let mut flagged_words = 0usize;
        for (i, &w) in words.iter().enumerate() {
            if (w.count_ones() & 1) != self.row_parity(i) {
                flagged_words += 1;
                flagged_word = Some(i);
            }
        }
        if damaged_blocks == 0 && flagged_words == 0 {
            return RepairOutcome::Clean;
        }
        // Single-flip signature: one damaged block with a one-bit column
        // syndrome, one flagged row, and the row lives in that block.
        if let (1, Some((block, syndrome)), 1, Some(word)) =
            (damaged_blocks, damaged_block, flagged_words, flagged_word)
        {
            if syndrome.count_ones() == 1 && word / self.block_words == block {
                let bit = syndrome.trailing_zeros();
                words[word] ^= 1u32 << bit;
                return RepairOutcome::Corrected { word, bit };
            }
        }
        RepairOutcome::Uncorrectable
    }

    /// Fault-injection aid: XORs `mask` into block `block`'s stored
    /// column parity, simulating an SEU landing in the sidecar itself
    /// rather than the protected data. The adversarial property suite
    /// uses this to prove the decoder never *miscorrects* when its own
    /// redundancy is damaged.
    ///
    /// # Panics
    ///
    /// Panics when `block` is out of range — sidecar tampering targets a
    /// stored parity that must exist.
    pub fn corrupt_column(&mut self, block: usize, mask: u32) {
        self.columns[block] ^= mask;
    }

    /// Fault-injection aid: flips word `word`'s stored row-parity bit
    /// (the companion of [`EccCode::corrupt_column`] for the row half of
    /// the sidecar).
    ///
    /// # Panics
    ///
    /// Panics when `word` is at or beyond [`EccCode::protected_words`].
    pub fn corrupt_row(&mut self, word: usize) {
        assert!(word < self.words, "row {word} beyond {} words", self.words);
        self.rows[word / 64] ^= 1u64 << (word % 64);
    }

    /// Number of column-parity blocks in the sidecar.
    pub fn blocks(&self) -> usize {
        self.columns.len()
    }

    /// Non-mutating parity check: `true` when every column and row parity
    /// matches the encoded state. The hot-swap verify path uses this to
    /// confirm a freshly rebuilt sidecar actually describes the incoming
    /// weights before the swap commits — a pure read, never a repair.
    ///
    /// # Panics
    ///
    /// Panics if `words` has a different length than the encoded buffer,
    /// matching [`EccCode::repair`].
    pub fn check(&self, words: &[u32]) -> bool {
        assert_eq!(
            words.len(),
            self.words,
            "sidecar encodes {} words, got {}",
            self.words,
            words.len()
        );
        for (b, block) in words.chunks(self.block_words).enumerate() {
            if block.iter().fold(self.columns[b], |acc, &w| acc ^ w) != 0 {
                return false;
            }
        }
        words
            .iter()
            .enumerate()
            .all(|(i, &w)| (w.count_ones() & 1) == self.row_parity(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect()
    }

    #[test]
    fn config_validation() {
        assert!(EccConfig::default().validate().is_ok());
        assert!(EccConfig { block_words: 0 }.validate().is_err());
        assert!(EccCode::encode(&[1, 2], EccConfig { block_words: 0 }).is_err());
    }

    #[test]
    fn clean_buffer_reports_clean() {
        let words = buffer(70);
        let code = EccCode::encode(&words, EccConfig::default()).unwrap();
        let mut probe = words.clone();
        assert_eq!(code.repair(&mut probe), RepairOutcome::Clean);
        assert_eq!(probe, words);
        assert_eq!(code.protected_words(), 70);
    }

    #[test]
    fn parity_signature_is_whole_buffer_xor() {
        let words = buffer(70);
        let code = EccCode::encode(&words, EccConfig { block_words: 16 }).unwrap();
        let folded = words.iter().fold(0u32, |acc, &w| acc ^ w);
        assert_eq!(code.parity_signature(), folded);
        // Block size must not matter: the fold telescopes to the same
        // whole-buffer XOR.
        let other = EccCode::encode(&words, EccConfig { block_words: 7 }).unwrap();
        assert_eq!(other.parity_signature(), folded);
        // Any single-bit flip flips the signature.
        let mut corrupt = words.clone();
        corrupt[13] ^= 1 << 5;
        assert_ne!(
            corrupt.iter().fold(0u32, |acc, &w| acc ^ w),
            code.parity_signature()
        );
        let empty = EccCode::encode(&[], EccConfig::default()).unwrap();
        assert_eq!(empty.parity_signature(), 0);
    }

    #[test]
    fn single_flip_corrected_at_every_position() {
        // Exhaustive over a buffer spanning multiple blocks and a ragged
        // tail block, every word × every bit.
        let words = buffer(11);
        let code = EccCode::encode(&words, EccConfig { block_words: 4 }).unwrap();
        for word in 0..words.len() {
            for bit in 0..32u32 {
                let mut corrupt = words.clone();
                corrupt[word] ^= 1 << bit;
                assert_eq!(
                    code.repair(&mut corrupt),
                    RepairOutcome::Corrected { word, bit: { bit } },
                    "word {word} bit {bit}"
                );
                assert_eq!(corrupt, words, "repair must restore golden words");
            }
        }
    }

    #[test]
    fn double_flips_never_miscorrect() {
        // Same word, same block, different blocks: all uncorrectable and
        // the buffer is left exactly as damaged.
        let words = buffer(9);
        let code = EccCode::encode(&words, EccConfig { block_words: 4 }).unwrap();
        let cases = [
            ((0usize, 3u32), (0usize, 17u32)), // same word
            ((0, 5), (2, 5)),                  // same block, same bit position
            ((1, 9), (3, 22)),                 // same block, different bits
            ((0, 7), (5, 7)),                  // different blocks, same bit
            ((2, 1), (8, 30)),                 // different blocks entirely
        ];
        for ((w1, b1), (w2, b2)) in cases {
            let mut corrupt = words.clone();
            corrupt[w1] ^= 1 << b1;
            corrupt[w2] ^= 1 << b2;
            let damaged = corrupt.clone();
            assert_eq!(
                code.repair(&mut corrupt),
                RepairOutcome::Uncorrectable,
                "flips ({w1},{b1})+({w2},{b2})"
            );
            assert_eq!(corrupt, damaged, "uncorrectable must not touch words");
        }
    }

    #[test]
    fn block_size_one_still_works() {
        let words = buffer(5);
        let code = EccCode::encode(&words, EccConfig { block_words: 1 }).unwrap();
        let mut corrupt = words.clone();
        corrupt[3] ^= 1 << 31;
        assert_eq!(
            code.repair(&mut corrupt),
            RepairOutcome::Corrected { word: 3, bit: 31 }
        );
        assert_eq!(corrupt, words);
    }

    #[test]
    fn sidecar_bits_accounting() {
        // 70 words in blocks of 32: 3 columns × 32 bits + 70 row bits.
        let code = EccCode::encode(&buffer(70), EccConfig::default()).unwrap();
        assert_eq!(code.sidecar_bits(), 3 * 32 + 70);
        // Empty buffer: nothing stored.
        let empty = EccCode::encode(&[], EccConfig::default()).unwrap();
        assert_eq!(empty.sidecar_bits(), 0);
        assert_eq!(empty.repair(&mut []), RepairOutcome::Clean);
    }

    #[test]
    fn check_is_pure_and_agrees_with_repair() {
        let words = buffer(11);
        let code = EccCode::encode(&words, EccConfig { block_words: 4 }).unwrap();
        assert!(code.check(&words));
        for word in 0..words.len() {
            let mut corrupt = words.clone();
            corrupt[word] ^= 1 << (word % 32);
            let damaged = corrupt.clone();
            assert!(!code.check(&corrupt), "word {word}");
            assert_eq!(corrupt, damaged, "check must never modify the buffer");
        }
        // Double flip: still detected (unlike repair, check only answers
        // clean / not-clean).
        let mut corrupt = words.clone();
        corrupt[0] ^= 1 << 3;
        corrupt[5] ^= 1 << 3;
        assert!(!code.check(&corrupt));
    }

    #[test]
    #[should_panic(expected = "sidecar encodes")]
    fn length_mismatch_panics() {
        let code = EccCode::encode(&buffer(4), EccConfig::default()).unwrap();
        let mut wrong = buffer(5);
        code.repair(&mut wrong);
    }
}
