//! Evaluation metrics: accuracy, confusion matrices, cross-entropy.

use crate::engine::Engine;
use crate::error::NnError;

/// A square confusion matrix (`rows = true class`, `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Training`] if `classes` is zero.
    pub fn new(classes: usize) -> Result<Self, NnError> {
        if classes == 0 {
            return Err(NnError::Training("confusion matrix needs classes".into()));
        }
        Ok(ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        })
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Training`] for out-of-range classes.
    pub fn record(&mut self, truth: usize, predicted: usize) -> Result<(), NnError> {
        if truth >= self.classes || predicted >= self.classes {
            return Err(NnError::Training(format!(
                "class out of range: truth {truth}, predicted {predicted}, classes {}",
                self.classes
            )));
        }
        self.counts[truth * self.classes + predicted] += 1;
        Ok(())
    }

    /// Count for `(truth, predicted)`, or 0 if out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        if truth >= self.classes || predicted >= self.classes {
            return 0;
        }
        self.counts[truth * self.classes + predicted]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (`diag / row sum`); `None` for a class with no
    /// observations.
    pub fn recall(&self, class: usize) -> Option<f64> {
        if class >= self.classes {
            return None;
        }
        let row: u64 = (0..self.classes).map(|j| self.count(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Per-class precision (`diag / column sum`); `None` for a class never
    /// predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        if class >= self.classes {
            return None;
        }
        let col: u64 = (0..self.classes).map(|i| self.count(i, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }
}

/// Runs the engine over a labelled set and returns `(accuracy, matrix)`.
///
/// # Errors
///
/// Returns [`NnError::Training`] on data length mismatch or an empty set,
/// and propagates inference errors.
pub fn evaluate(
    engine: &mut Engine,
    inputs: &[Vec<f32>],
    labels: &[usize],
) -> Result<(f64, ConfusionMatrix), NnError> {
    if inputs.is_empty() {
        return Err(NnError::Training("empty evaluation set".into()));
    }
    if inputs.len() != labels.len() {
        return Err(NnError::Training(format!(
            "{} inputs but {} labels",
            inputs.len(),
            labels.len()
        )));
    }
    let classes = engine.model().output_shape().len();
    let mut cm = ConfusionMatrix::new(classes)?;
    for (x, &y) in inputs.iter().zip(labels) {
        let pred = engine.classify(x)?.class;
        cm.record(y, pred)?;
    }
    Ok((cm.accuracy(), cm))
}

/// Mean cross-entropy of predicted probability vectors against labels.
///
/// # Errors
///
/// Returns [`NnError::Training`] on empty input, length mismatch, or an
/// out-of-range label.
pub fn mean_cross_entropy(probs: &[Vec<f32>], labels: &[usize]) -> Result<f64, NnError> {
    if probs.is_empty() {
        return Err(NnError::Training("empty probability set".into()));
    }
    if probs.len() != labels.len() {
        return Err(NnError::Training(format!(
            "{} prob vectors but {} labels",
            probs.len(),
            labels.len()
        )));
    }
    let mut total = 0.0f64;
    for (p, &y) in probs.iter().zip(labels) {
        let pv = p.get(y).copied().ok_or_else(|| {
            NnError::Training(format!("label {y} out of range for {} classes", p.len()))
        })?;
        total += -(pv.max(1e-12) as f64).ln();
    }
    Ok(total / probs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{ConstantFill, Init};
    use crate::layer::Layer;
    use crate::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    #[test]
    fn confusion_matrix_counts() {
        let mut cm = ConfusionMatrix::new(2).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(0, 1).unwrap();
        cm.record(1, 1).unwrap();
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.accuracy(), 0.75);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.precision(1), Some(0.5));
    }

    #[test]
    fn confusion_matrix_edges() {
        assert!(ConfusionMatrix::new(0).is_err());
        let mut cm = ConfusionMatrix::new(2).unwrap();
        assert!(cm.record(2, 0).is_err());
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.recall(5), None);
        assert_eq!(cm.precision(0), None);
        assert_eq!(cm.count(9, 9), 0);
    }

    #[test]
    fn evaluate_engine() {
        // Bias-only model always predicts class 1.
        let mut rng = DetRng::new(0);
        let mut m = ModelBuilder::new(Shape::vector(2))
            .dense_with_init(2, Init::Constant(ConstantFill::new(0.0)), &mut rng)
            .unwrap()
            .build()
            .unwrap();
        if let Layer::Dense(d) = &mut m.layers_mut()[0] {
            d.bias_mut().copy_from_slice(&[0.0, 1.0]);
        }
        let mut e = Engine::new(m);
        let inputs = vec![vec![0.0, 0.0]; 4];
        let labels = vec![1, 1, 0, 0];
        let (acc, cm) = evaluate(&mut e, &inputs, &labels).unwrap();
        assert_eq!(acc, 0.5);
        assert_eq!(cm.count(0, 1), 2);
        assert!(evaluate(&mut e, &[], &[]).is_err());
        assert!(evaluate(&mut e, &inputs, &labels[..2]).is_err());
    }

    #[test]
    fn cross_entropy_basics() {
        let probs = vec![vec![0.9f32, 0.1], vec![0.2, 0.8]];
        let ce = mean_cross_entropy(&probs, &[0, 1]).unwrap();
        let expected = -((0.9f64).ln() + (0.8f64).ln()) / 2.0;
        assert!((ce - expected).abs() < 1e-6);
        assert!(mean_cross_entropy(&probs, &[0]).is_err());
        assert!(mean_cross_entropy(&probs, &[0, 5]).is_err());
        assert!(mean_cross_entropy(&[], &[]).is_err());
    }

    #[test]
    fn cross_entropy_clamps_zero_prob() {
        let probs = vec![vec![0.0f32, 1.0]];
        let ce = mean_cross_entropy(&probs, &[0]).unwrap();
        assert!(ce.is_finite());
        assert!(ce > 20.0); // -ln(1e-12)
    }
}
