//! Deterministic parallel batch inference.
//!
//! [`EnginePool`] (and its fixed-point twin [`QEnginePool`]) owns N
//! per-worker engine replicas, each with its own pre-allocated activation
//! buffers, and fans a batch out across `std::thread::scope` workers.
//!
//! **Determinism argument.** Results are bit-exact for every worker count
//! because nothing about the computation depends on the partitioning:
//!
//! * the batch is split *statically* into contiguous chunks — no work
//!   stealing, no scheduling-dependent assignment;
//! * each input is processed by exactly one engine replica whose kernels
//!   ([`safex_tensor::ops`]) fix the accumulation order and width, so an
//!   input's output is a pure function of (model, input) — never of which
//!   replica ran it or what ran before it;
//! * per-worker outputs are stitched back in chunk order, so the batch
//!   output order equals the input order.
//!
//! `infer_batch` with 8 workers therefore returns byte-identical results
//! to `infer_batch` with 1 worker, which equals a sequential
//! [`Engine::infer`] loop. `tests/determinism.rs` asserts this over a
//! {1, 2, 4, 8} × {f32, Q16.16} matrix, preserving the experiment E5
//! guarantee under parallelism.

use safex_tensor::fixed::Q16_16;
use safex_tensor::DenseKernel;

use crate::engine::{Classification, Engine};
use crate::error::NnError;
use crate::model::Model;
use crate::quant::{QEngine, QModel};

/// Splits `n` items into `workers` contiguous chunk lengths that differ by
/// at most one (earlier chunks take the remainder).
fn chunk_lens(n: usize, workers: usize) -> Vec<usize> {
    let base = n / workers;
    let rem = n % workers;
    (0..workers)
        .map(|i| base + usize::from(i < rem))
        .filter(|&len| len > 0)
        .collect()
}

/// Runs `per_input` over a statically-partitioned batch on scoped threads.
///
/// Generic over the engine type so the float and fixed-point pools share
/// one partitioning/stitching implementation (and thus one determinism
/// argument).
pub(crate) fn run_partitioned<'a, W, I, O, F>(
    workers: &mut [W],
    inputs: &'a [I],
    per_input: F,
) -> Result<Vec<O>, NnError>
where
    W: Send,
    I: Sync,
    O: Send,
    F: Fn(&mut W, &'a I) -> Result<O, NnError> + Send + Sync + Copy,
{
    let used = workers.len().min(inputs.len());
    if used <= 1 {
        // Small batches and single-worker pools run inline: same results,
        // no thread-spawn cost.
        let worker = &mut workers[0];
        return inputs.iter().map(|x| per_input(worker, x)).collect();
    }
    let lens = chunk_lens(inputs.len(), used);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lens.len());
        let mut rest = inputs;
        for (worker, &len) in workers.iter_mut().zip(&lens) {
            let (chunk, tail) = rest.split_at(len);
            rest = tail;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .map(|x| per_input(worker, x))
                    .collect::<Result<Vec<O>, NnError>>()
            }));
        }
        let mut out = Vec::with_capacity(inputs.len());
        for handle in handles {
            match handle.join() {
                Ok(Ok(chunk_out)) => out.extend(chunk_out),
                Ok(Err(e)) => return Err(e),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        Ok(out)
    })
}

/// [`run_partitioned`]'s chunk-granular sibling: `per_chunk` receives a
/// worker's whole contiguous chunk at once, so engines with a batch-major
/// arena path ([`Engine::infer_batch`], [`QEngine::infer_batch`]) can run
/// it per chunk instead of per item. The partitioning and stitching are
/// identical to [`run_partitioned`], so the determinism argument carries
/// over unchanged — provided `per_chunk` itself is item-order preserving
/// and item-independent, which the arena batch paths are (bit-identical
/// to their per-item loops).
pub(crate) fn run_partitioned_chunks<'a, W, I, O, F>(
    workers: &mut [W],
    inputs: &'a [I],
    per_chunk: F,
) -> Result<Vec<O>, NnError>
where
    W: Send,
    I: Sync,
    O: Send,
    F: Fn(&mut W, &'a [I]) -> Result<Vec<O>, NnError> + Send + Sync + Copy,
{
    let used = workers.len().min(inputs.len());
    if used <= 1 {
        // Small batches and single-worker pools run inline: same results,
        // no thread-spawn cost.
        return per_chunk(&mut workers[0], inputs);
    }
    let lens = chunk_lens(inputs.len(), used);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lens.len());
        let mut rest = inputs;
        for (worker, &len) in workers.iter_mut().zip(&lens) {
            let (chunk, tail) = rest.split_at(len);
            rest = tail;
            handles.push(scope.spawn(move || per_chunk(worker, chunk)));
        }
        let mut out = Vec::with_capacity(inputs.len());
        for handle in handles {
            match handle.join() {
                Ok(Ok(chunk_out)) => out.extend(chunk_out),
                Ok(Err(e)) => return Err(e),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        Ok(out)
    })
}

/// A pool of float [`Engine`] replicas for parallel batch inference.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_nn::NnError> {
/// use safex_nn::{model::ModelBuilder, EnginePool};
/// use safex_tensor::{DetRng, Shape};
///
/// let mut rng = DetRng::new(3);
/// let model = ModelBuilder::new(Shape::vector(2))
///     .dense(4, &mut rng)?
///     .relu()
///     .dense(2, &mut rng)?
///     .softmax()
///     .build()?;
/// let mut pool = EnginePool::new(model, 4)?;
/// let batch: Vec<Vec<f32>> = (0..16)
///     .map(|i| vec![i as f32 * 0.1, 1.0 - i as f32 * 0.1])
///     .collect();
/// let outputs = pool.infer_batch(&batch)?;
/// assert_eq!(outputs.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EnginePool {
    workers: Vec<Engine>,
}

impl EnginePool {
    /// Creates a pool of `workers` engine replicas of `model`.
    ///
    /// Every replica pre-allocates its own activation buffers at
    /// construction, so batch dispatch itself stays allocation-free on
    /// the per-worker hot path.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Pool`] when `workers` is zero.
    pub fn new(model: Model, workers: usize) -> Result<Self, NnError> {
        EnginePool::with_kernel(model, workers, DenseKernel::Exact)
    }

    /// Creates a pool whose replicas run an explicit [`DenseKernel`].
    ///
    /// The determinism guarantee is per kernel: for a fixed kernel, batch
    /// output is bit-exact for every worker count (the chunked kernel is
    /// deterministic too — just not bit-identical to `Exact`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Pool`] when `workers` is zero.
    pub fn with_kernel(model: Model, workers: usize, kernel: DenseKernel) -> Result<Self, NnError> {
        if workers == 0 {
            return Err(NnError::Pool("pool needs at least one worker".into()));
        }
        Ok(EnginePool {
            workers: (0..workers)
                .map(|_| Engine::with_kernel(model.clone(), kernel))
                .collect(),
        })
    }

    /// Number of worker replicas.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared model (all replicas are identical).
    pub fn model(&self) -> &Model {
        self.workers[0].model()
    }

    /// Total inferences completed across all workers.
    pub fn inference_count(&self) -> u64 {
        self.workers.iter().map(Engine::inference_count).sum()
    }

    /// Runs the model over a batch, in parallel, preserving input order.
    ///
    /// Outputs are bit-exact for every worker count (see the module
    /// docs for the argument).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn infer_batch<I: AsRef<[f32]> + Sync>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Vec<f32>>, NnError> {
        run_partitioned_chunks(&mut self.workers, inputs, |engine, chunk| {
            engine.infer_batch(chunk)
        })
    }

    /// Classifies a batch, in parallel, preserving input order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn classify_batch<I: AsRef<[f32]> + Sync>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Classification>, NnError> {
        run_partitioned_chunks(&mut self.workers, inputs, |engine, chunk| {
            engine.classify_batch(chunk)
        })
    }
}

/// A pool of fixed-point [`QEngine`] replicas for parallel batch
/// inference — the cross-platform-bit-exact deployment configuration.
#[derive(Debug, Clone)]
pub struct QEnginePool {
    workers: Vec<QEngine>,
}

impl QEnginePool {
    /// Creates a pool of `workers` quantised engine replicas.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Pool`] when `workers` is zero.
    pub fn new(model: QModel, workers: usize) -> Result<Self, NnError> {
        if workers == 0 {
            return Err(NnError::Pool("pool needs at least one worker".into()));
        }
        Ok(QEnginePool {
            workers: (0..workers).map(|_| QEngine::new(model.clone())).collect(),
        })
    }

    /// Number of worker replicas.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared quantised model.
    pub fn model(&self) -> &QModel {
        self.workers[0].model()
    }

    /// Runs the quantised model over a batch, in parallel, preserving
    /// input order; outputs are bit-exact for every worker count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn infer_batch<I: AsRef<[Q16_16]> + Sync>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Vec<Q16_16>>, NnError> {
        run_partitioned_chunks(&mut self.workers, inputs, |engine, chunk| {
            engine.infer_batch(chunk)
        })
    }

    /// Classifies a batch, in parallel, preserving input order.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn classify_batch<I: AsRef<[Q16_16]> + Sync>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Classification>, NnError> {
        run_partitioned_chunks(&mut self.workers, inputs, |engine, chunk| {
            engine.classify_batch(chunk)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    fn mlp(seed: u64) -> Model {
        let mut rng = DetRng::new(seed);
        ModelBuilder::new(Shape::vector(3))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(4, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    fn batch(n: usize) -> Vec<Vec<f32>> {
        let mut rng = DetRng::new(7);
        (0..n)
            .map(|_| (0..3).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
            .collect()
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(matches!(EnginePool::new(mlp(1), 0), Err(NnError::Pool(_))));
    }

    #[test]
    fn chunk_lens_cover_and_order() {
        assert_eq!(chunk_lens(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(chunk_lens(3, 8), vec![1, 1, 1]);
        assert_eq!(chunk_lens(8, 1), vec![8]);
        assert_eq!(chunk_lens(0, 4), Vec::<usize>::new());
    }

    #[test]
    fn batch_matches_sequential_engine() {
        let model = mlp(2);
        let inputs = batch(13);
        let mut engine = Engine::new(model.clone());
        let expected: Vec<Vec<f32>> = inputs
            .iter()
            .map(|x| engine.infer(x).unwrap().to_vec())
            .collect();
        let mut pool = EnginePool::new(model, 4).unwrap();
        assert_eq!(pool.infer_batch(&inputs).unwrap(), expected);
    }

    #[test]
    fn batch_bit_exact_across_worker_counts() {
        let model = mlp(3);
        let inputs = batch(17);
        let reference = EnginePool::new(model.clone(), 1)
            .unwrap()
            .infer_batch(&inputs)
            .unwrap();
        for workers in [2, 3, 4, 8] {
            let got = EnginePool::new(model.clone(), workers)
                .unwrap()
                .infer_batch(&inputs)
                .unwrap();
            assert_eq!(got, reference, "worker count {workers} diverged");
        }
    }

    #[test]
    fn classify_batch_matches_classify() {
        let model = mlp(4);
        let inputs = batch(9);
        let mut engine = Engine::new(model.clone());
        let mut pool = EnginePool::new(model, 3).unwrap();
        let got = pool.classify_batch(&inputs).unwrap();
        for (x, c) in inputs.iter().zip(&got) {
            assert_eq!(engine.classify(x).unwrap(), *c);
        }
    }

    #[test]
    fn bad_input_fails_whole_batch() {
        let mut pool = EnginePool::new(mlp(5), 2).unwrap();
        let mut inputs = batch(6);
        inputs[4] = vec![0.0; 2]; // wrong arity
        assert!(matches!(
            pool.infer_batch(&inputs),
            Err(NnError::InputShape { .. })
        ));
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut pool = EnginePool::new(mlp(6), 4).unwrap();
        assert_eq!(pool.infer_batch(&Vec::<Vec<f32>>::new()).unwrap().len(), 0);
    }

    #[test]
    fn inference_count_accumulates() {
        let mut pool = EnginePool::new(mlp(7), 4).unwrap();
        pool.infer_batch(&batch(10)).unwrap();
        assert_eq!(pool.inference_count(), 10);
    }

    #[test]
    fn quant_pool_bit_exact_across_worker_counts() {
        let qmodel = QModel::quantize(&mlp(8)).unwrap();
        let inputs: Vec<Vec<Q16_16>> = batch(11)
            .iter()
            .map(|x| x.iter().map(|&v| Q16_16::from_f32(v)).collect())
            .collect();
        let reference = QEnginePool::new(qmodel.clone(), 1)
            .unwrap()
            .infer_batch(&inputs)
            .unwrap();
        for workers in [2, 4, 8] {
            let got = QEnginePool::new(qmodel.clone(), workers)
                .unwrap()
                .infer_batch(&inputs)
                .unwrap();
            assert_eq!(got, reference, "worker count {workers} diverged");
        }
    }
}
