//! Sequential model container and builder.

use std::fmt;

use safex_tensor::{DetRng, Shape};

use crate::error::NnError;
use crate::init::Init;
use crate::layer::{Conv2dLayer, DenseLayer, Layer};

/// A frozen, shape-validated sequential model.
///
/// A `Model` is created by [`ModelBuilder`], which validates every layer
/// against the output shape of its predecessor at *construction* time — by
/// the time a `Model` exists, inference cannot fail on shape grounds.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_nn::NnError> {
/// use safex_nn::model::ModelBuilder;
/// use safex_tensor::{DetRng, Shape};
///
/// let mut rng = DetRng::new(0);
/// let model = ModelBuilder::new(Shape::chw(1, 8, 8))
///     .conv2d(4, 3, 1, 1, &mut rng)?
///     .relu()
///     .maxpool2d(2, 2)?
///     .flatten()
///     .dense(10, &mut rng)?
///     .softmax()
///     .build()?;
/// assert_eq!(model.output_shape().dims(), &[10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    input_shape: Shape,
    layers: Vec<Layer>,
    /// `shapes[i]` is the output shape of layer `i`.
    shapes: Vec<Shape>,
}

impl Model {
    /// The input shape the model expects.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The output shape of the final layer.
    pub fn output_shape(&self) -> Shape {
        *self.shapes.last().expect("model is never empty")
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the trainer and by fault
    /// injection experiments). Shapes are fixed at build time; mutating
    /// layer *dimensions* through this is a logic error, mutating weights
    /// is fine.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Output shape of layer `i`, or `None` past the end.
    pub fn layer_output_shape(&self, i: usize) -> Option<Shape> {
        self.shapes.get(i).copied()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers (never true for a built model).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Largest activation buffer (in elements) needed to execute the model,
    /// including the input itself. The inference engine allocates exactly
    /// two buffers of this size.
    pub fn max_activation_len(&self) -> usize {
        self.shapes
            .iter()
            .map(Shape::len)
            .chain(std::iter::once(self.input_shape.len()))
            .max()
            .expect("model is never empty")
    }

    /// A stable 64-bit content digest over the architecture and all
    /// parameters (FNV-1a). Two models with identical structure and
    /// bit-identical weights share a digest; any single-bit weight change
    /// alters it with overwhelming probability.
    ///
    /// Used by `safex-trace` to bind inference evidence to the exact model
    /// that produced it.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_bytes(b"safex-model-v1");
        for d in self.input_shape.dims() {
            h.write_u64(*d as u64);
        }
        for layer in &self.layers {
            h.write_bytes(layer.kind_name().as_bytes());
            match layer {
                Layer::Dense(d) => {
                    h.write_u64(d.inputs() as u64);
                    h.write_u64(d.outputs() as u64);
                    for w in d.weights() {
                        h.write_u64(w.to_bits() as u64);
                    }
                    for b in d.bias() {
                        h.write_u64(b.to_bits() as u64);
                    }
                }
                Layer::Conv2d(c) => {
                    for v in [
                        c.in_channels(),
                        c.out_channels(),
                        c.kernel(),
                        c.stride(),
                        c.padding(),
                    ] {
                        h.write_u64(v as u64);
                    }
                    for w in c.weights() {
                        h.write_u64(w.to_bits() as u64);
                    }
                    for b in c.bias() {
                        h.write_u64(b.to_bits() as u64);
                    }
                }
                Layer::MaxPool2d { pool, stride } | Layer::AvgPool2d { pool, stride } => {
                    h.write_u64(*pool as u64);
                    h.write_u64(*stride as u64);
                }
                Layer::LeakyRelu { alpha } => h.write_u64(alpha.to_bits() as u64),
                Layer::BatchNorm(bn) => {
                    for slice in [bn.gamma(), bn.beta(), bn.mean(), bn.variance()] {
                        for v in slice {
                            h.write_u64(v.to_bits() as u64);
                        }
                    }
                    h.write_u64(bn.epsilon().to_bits() as u64);
                }
                Layer::Relu | Layer::Softmax | Layer::Flatten => {}
            }
        }
        h.finish()
    }

    /// Folds every `dense -> batchnorm` and `conv2d -> batchnorm` pair
    /// into the parametric layer and replaces the BN with nothing,
    /// returning the number of folds performed.
    ///
    /// Folding `y = s*(Wx + b) + t` gives `W' = s.W` (per output row /
    /// channel) and `b' = s.b + t`, so the folded model is mathematically
    /// identical while executing one fewer pass — the standard FUSA
    /// deployment transform (fewer components to qualify, less jitter).
    pub fn fold_batchnorm(&mut self) -> usize {
        let mut folds = 0usize;
        let mut i = 0usize;
        while i + 1 < self.layers.len() {
            let (scale_shift, foldable) = match (&self.layers[i], &self.layers[i + 1]) {
                (Layer::Dense(d), Layer::BatchNorm(bn)) if bn.channels() == d.outputs() => {
                    (bn.scale_shift().to_vec(), true)
                }
                (Layer::Conv2d(c), Layer::BatchNorm(bn)) if bn.channels() == c.out_channels() => {
                    (bn.scale_shift().to_vec(), true)
                }
                _ => (Vec::new(), false),
            };
            if !foldable {
                i += 1;
                continue;
            }
            match &mut self.layers[i] {
                Layer::Dense(d) => {
                    let inputs = d.inputs();
                    for (o, &(scale, shift)) in scale_shift.iter().enumerate() {
                        for w in &mut d.weights_mut()[o * inputs..(o + 1) * inputs] {
                            *w *= scale;
                        }
                        let bias = &mut d.bias_mut()[o];
                        *bias = *bias * scale + shift;
                    }
                }
                Layer::Conv2d(c) => {
                    let per_filter = c.in_channels() * c.kernel() * c.kernel();
                    for (o, &(scale, shift)) in scale_shift.iter().enumerate() {
                        for w in &mut c.weights_mut()[o * per_filter..(o + 1) * per_filter] {
                            *w *= scale;
                        }
                        let bias = &mut c.bias_mut()[o];
                        *bias = *bias * scale + shift;
                    }
                }
                _ => unreachable!("checked above"),
            }
            // Remove the BN layer and its shape entry.
            self.layers.remove(i + 1);
            self.shapes.remove(i + 1);
            folds += 1;
        }
        folds
    }

    /// One-line architecture summary, e.g.
    /// `"1x8x8 -> conv2d -> relu -> flatten -> dense -> softmax -> 10"`.
    pub fn summary(&self) -> String {
        let mut s = self.input_shape.to_string();
        for layer in &self.layers {
            s.push_str(" -> ");
            s.push_str(layer.kind_name());
        }
        s.push_str(" -> ");
        s.push_str(&self.output_shape().to_string());
        s
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Model[{} layers, {} params, {}]",
            self.len(),
            self.param_count(),
            self.summary()
        )
    }
}

/// Incremental builder for [`Model`]; validates shapes as layers are added.
///
/// The builder is *consuming*: each method takes and returns `self`, and
/// failures are deferred — the first error is remembered and reported by
/// [`ModelBuilder::build`], so chains stay ergonomic.
#[derive(Debug)]
pub struct ModelBuilder {
    input_shape: Shape,
    layers: Vec<Layer>,
    shapes: Vec<Shape>,
    current: Shape,
    error: Option<NnError>,
}

impl ModelBuilder {
    /// Starts a model with the given input shape.
    pub fn new(input_shape: Shape) -> Self {
        ModelBuilder {
            input_shape,
            layers: Vec::new(),
            shapes: Vec::new(),
            current: input_shape,
            error: None,
        }
    }

    /// Output shape of the stack built so far (the input shape while no
    /// layers have been added). Deserialisation uses this to bind a
    /// stream's declared layer fan-in to the reconstructed shape
    /// *before* the layer — and its parameter buffers — are allocated.
    pub fn current_shape(&self) -> Shape {
        self.current
    }

    fn push(mut self, layer: Layer) -> Self {
        if self.error.is_some() {
            return self;
        }
        match layer.output_shape(&self.current, self.layers.len()) {
            Ok(out) => {
                self.current = out;
                self.shapes.push(out);
                self.layers.push(layer);
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Appends a dense layer producing `outputs` features (He-normal
    /// weights, zero bias).
    ///
    /// # Errors
    ///
    /// Construction errors are deferred to [`ModelBuilder::build`]. This
    /// method itself only fails to *type-check* nothing; the `Result`
    /// wrapper is kept for forward compatibility and always returns `Ok`.
    pub fn dense(self, outputs: usize, rng: &mut DetRng) -> Result<Self, NnError> {
        self.dense_with_init(outputs, Init::HeNormal, rng)
    }

    /// Appends a dense layer with an explicit initialisation scheme.
    ///
    /// # Errors
    ///
    /// Always returns `Ok`; see [`ModelBuilder::dense`].
    pub fn dense_with_init(
        self,
        outputs: usize,
        init: Init,
        rng: &mut DetRng,
    ) -> Result<Self, NnError> {
        let inputs = self.current.len();
        if self.error.is_some() {
            return Ok(self);
        }
        match DenseLayer::new(inputs, outputs, init, rng) {
            Ok(d) => Ok(self.push(Layer::Dense(d))),
            Err(e) => {
                let mut s = self;
                s.error = Some(e);
                Ok(s)
            }
        }
    }

    /// Appends a square-kernel conv2d layer (He-normal weights).
    ///
    /// # Errors
    ///
    /// Always returns `Ok`; errors are deferred to [`ModelBuilder::build`].
    pub fn conv2d(
        self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut DetRng,
    ) -> Result<Self, NnError> {
        if self.error.is_some() {
            return Ok(self);
        }
        if self.current.rank() != 3 {
            let mut s = self;
            s.error = Some(NnError::LayerIncompatible {
                layer: s.layers.len(),
                reason: format!("conv2d expects CHW input, got {}", s.current),
            });
            return Ok(s);
        }
        let in_channels = self.current.dims()[0];
        match Conv2dLayer::new(
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            Init::HeNormal,
            rng,
        ) {
            Ok(c) => Ok(self.push(Layer::Conv2d(c))),
            Err(e) => {
                let mut s = self;
                s.error = Some(e);
                Ok(s)
            }
        }
    }

    /// Appends a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Always returns `Ok`; errors are deferred to [`ModelBuilder::build`].
    pub fn maxpool2d(self, pool: usize, stride: usize) -> Result<Self, NnError> {
        Ok(self.push(Layer::MaxPool2d { pool, stride }))
    }

    /// Appends an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Always returns `Ok`; errors are deferred to [`ModelBuilder::build`].
    pub fn avgpool2d(self, pool: usize, stride: usize) -> Result<Self, NnError> {
        Ok(self.push(Layer::AvgPool2d { pool, stride }))
    }

    /// Appends a ReLU activation.
    pub fn relu(self) -> Self {
        self.push(Layer::Relu)
    }

    /// Appends a leaky-ReLU activation.
    pub fn leaky_relu(self, alpha: f32) -> Self {
        self.push(Layer::LeakyRelu { alpha })
    }

    /// Appends a softmax output layer.
    pub fn softmax(self) -> Self {
        self.push(Layer::Softmax)
    }

    /// Appends a flatten layer.
    pub fn flatten(self) -> Self {
        self.push(Layer::Flatten)
    }

    /// Appends a frozen batch-normalisation layer.
    ///
    /// # Errors
    ///
    /// Always returns `Ok`; errors are deferred to [`ModelBuilder::build`].
    pub fn batchnorm(self, bn: crate::layer::BatchNormLayer) -> Result<Self, NnError> {
        Ok(self.push(Layer::BatchNorm(bn)))
    }

    /// Finalises the model.
    ///
    /// # Errors
    ///
    /// Returns the first deferred layer error, or [`NnError::EmptyModel`]
    /// if no layers were added.
    pub fn build(self) -> Result<Model, NnError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        Ok(Model {
            input_shape: self.input_shape,
            layers: self.layers,
            shapes: self.shapes,
        })
    }
}

/// Minimal FNV-1a 64-bit hasher (dependency-free, stable across platforms).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp(seed: u64) -> Model {
        let mut rng = DetRng::new(seed);
        ModelBuilder::new(Shape::vector(4))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds_valid_mlp() {
        let m = mlp(1);
        assert_eq!(m.len(), 4);
        assert_eq!(m.input_shape(), Shape::vector(4));
        assert_eq!(m.output_shape(), Shape::vector(3));
        assert_eq!(m.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn builder_defers_errors_to_build() {
        let mut rng = DetRng::new(1);
        // Softmax on CHW input: invalid.
        let result = ModelBuilder::new(Shape::chw(1, 4, 4)).softmax().build();
        assert!(matches!(
            result,
            Err(NnError::LayerIncompatible { layer: 0, .. })
        ));
        // Error sticks: later valid layers do not clear it.
        let result = ModelBuilder::new(Shape::chw(1, 4, 4))
            .softmax()
            .flatten()
            .dense(2, &mut rng)
            .unwrap()
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(
            ModelBuilder::new(Shape::vector(4)).build().unwrap_err(),
            NnError::EmptyModel
        );
    }

    #[test]
    fn convnet_shapes_propagate() {
        let mut rng = DetRng::new(2);
        let m = ModelBuilder::new(Shape::chw(3, 16, 16))
            .conv2d(8, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .maxpool2d(2, 2)
            .unwrap()
            .conv2d(16, 3, 1, 0, &mut rng)
            .unwrap()
            .relu()
            .flatten()
            .dense(10, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        assert_eq!(m.layer_output_shape(0).unwrap(), Shape::chw(8, 16, 16));
        assert_eq!(m.layer_output_shape(2).unwrap(), Shape::chw(8, 8, 8));
        assert_eq!(m.layer_output_shape(3).unwrap(), Shape::chw(16, 6, 6));
        assert_eq!(m.output_shape(), Shape::vector(10));
        assert_eq!(m.max_activation_len(), 8 * 16 * 16);
    }

    #[test]
    fn conv_after_flatten_is_error() {
        let mut rng = DetRng::new(3);
        let result = ModelBuilder::new(Shape::chw(1, 8, 8))
            .flatten()
            .conv2d(4, 3, 1, 0, &mut rng)
            .unwrap()
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn digest_stable_and_weight_sensitive() {
        let m1 = mlp(5);
        let m2 = mlp(5);
        assert_eq!(m1.digest(), m2.digest());
        let m3 = mlp(6); // different init seed
        assert_ne!(m1.digest(), m3.digest());
        // Single weight flip changes the digest.
        let mut m4 = mlp(5);
        if let Layer::Dense(d) = &mut m4.layers_mut()[0] {
            d.weights_mut()[0] += 1.0;
        }
        assert_ne!(m1.digest(), m4.digest());
    }

    #[test]
    fn digest_architecture_sensitive() {
        let mut rng = DetRng::new(7);
        let a = ModelBuilder::new(Shape::vector(4))
            .dense_with_init(4, Init::Zeros, &mut rng)
            .unwrap()
            .relu()
            .build()
            .unwrap();
        let mut rng = DetRng::new(7);
        let b = ModelBuilder::new(Shape::vector(4))
            .dense_with_init(4, Init::Zeros, &mut rng)
            .unwrap()
            .leaky_relu(0.0)
            .build()
            .unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn summary_and_display() {
        let m = mlp(1);
        let s = m.summary();
        assert!(s.starts_with("4 -> dense -> relu -> dense -> softmax -> 3"));
        assert!(m.to_string().contains("4 layers"));
    }

    #[test]
    fn max_activation_includes_input() {
        let mut rng = DetRng::new(8);
        let m = ModelBuilder::new(Shape::vector(100))
            .dense(2, &mut rng)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(m.max_activation_len(), 100);
    }
}
