//! Reference SGD trainer.
//!
//! SAFEXPLAIN deploys *frozen* models; training happens off-board. This
//! module exists so the experiment suite can produce non-trivial models
//! without an external framework. It implements plain mini-batch SGD with
//! momentum and full backpropagation through every differentiable layer
//! the library offers (dense, conv2d, ReLU/leaky-ReLU, max/avg pooling,
//! flatten, and a final softmax fused with cross-entropy loss).
//!
//! Determinism: given the same model, data, ordering, and hyperparameters,
//! training is bit-reproducible — gradients are accumulated in `f64` in a
//! fixed order and the only randomness (shuffling) comes from an explicit
//! [`DetRng`].

use safex_tensor::{DetRng, Shape};

use crate::engine::run_layer;
use crate::error::NnError;
use crate::layer::Layer;
use crate::model::Model;
use safex_tensor::DenseKernel;

/// Hyperparameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate (must be positive and finite).
    pub learning_rate: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// Mini-batch size (must be non-zero).
    pub batch_size: usize,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 16,
        }
    }
}

impl SgdConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Training`] for a non-positive learning rate,
    /// momentum outside `[0, 1)`, or a zero batch size.
    pub fn validate(&self) -> Result<(), NnError> {
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(NnError::Training(format!(
                "learning rate {} must be positive and finite",
                self.learning_rate
            )));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(NnError::Training(format!(
                "momentum {} must be in [0, 1)",
                self.momentum
            )));
        }
        if self.batch_size == 0 {
            return Err(NnError::Training("batch size must be non-zero".into()));
        }
        Ok(())
    }
}

/// Per-layer gradient / momentum-velocity storage.
#[derive(Debug, Clone)]
struct ParamGrads {
    weights: Vec<f64>,
    bias: Vec<f64>,
}

/// Mini-batch SGD trainer with momentum.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_nn::NnError> {
/// use safex_nn::model::ModelBuilder;
/// use safex_nn::train::{SgdConfig, Trainer};
/// use safex_tensor::{DetRng, Shape};
///
/// let mut rng = DetRng::new(0);
/// let mut model = ModelBuilder::new(Shape::vector(2))
///     .dense(8, &mut rng)?
///     .relu()
///     .dense(2, &mut rng)?
///     .softmax()
///     .build()?;
/// // XOR-ish toy data.
/// let inputs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
/// let labels = vec![0, 1, 1, 0];
/// let mut trainer = Trainer::new(SgdConfig { learning_rate: 0.5, momentum: 0.9, batch_size: 4 })?;
/// for _ in 0..200 {
///     trainer.train_epoch(&mut model, &inputs, &labels, &mut rng)?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: SgdConfig,
    velocity: Vec<Option<ParamGrads>>,
}

impl Trainer {
    /// Creates a trainer after validating the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SgdConfig::validate`] failures.
    pub fn new(config: SgdConfig) -> Result<Self, NnError> {
        config.validate()?;
        Ok(Trainer {
            config,
            velocity: Vec::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Runs one epoch over the dataset (shuffled by `rng`), returning the
    /// mean cross-entropy loss.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Training`] on malformed data (length mismatch,
    /// empty set, out-of-range labels, model whose final layer is not
    /// softmax) and propagates inference errors.
    pub fn train_epoch(
        &mut self,
        model: &mut Model,
        inputs: &[Vec<f32>],
        labels: &[usize],
        rng: &mut DetRng,
    ) -> Result<f64, NnError> {
        if inputs.is_empty() {
            return Err(NnError::Training("empty training set".into()));
        }
        if inputs.len() != labels.len() {
            return Err(NnError::Training(format!(
                "{} inputs but {} labels",
                inputs.len(),
                labels.len()
            )));
        }
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        rng.shuffle(&mut order);
        let mut total_loss = 0.0f64;
        let mut total_samples = 0usize;
        for chunk in order.chunks(self.config.batch_size) {
            let batch: Vec<(&[f32], usize)> = chunk
                .iter()
                .map(|&i| (inputs[i].as_slice(), labels[i]))
                .collect();
            total_loss += self.train_batch(model, &batch)? * chunk.len() as f64;
            total_samples += chunk.len();
        }
        Ok(total_loss / total_samples as f64)
    }

    /// Runs one SGD step on a batch, returning the batch mean loss.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Training`] on structural problems (see
    /// [`Trainer::train_epoch`]).
    pub fn train_batch(
        &mut self,
        model: &mut Model,
        batch: &[(&[f32], usize)],
    ) -> Result<f64, NnError> {
        if batch.is_empty() {
            return Err(NnError::Training("empty batch".into()));
        }
        let n_classes = match model.layers().last() {
            Some(Layer::Softmax) => model.output_shape().len(),
            _ => {
                return Err(NnError::Training(
                    "trainer requires a softmax final layer (fused with cross-entropy)".into(),
                ))
            }
        };
        let mut grads = self.zero_grads(model);
        let mut total_loss = 0.0f64;
        for &(input, label) in batch {
            if label >= n_classes {
                return Err(NnError::Training(format!(
                    "label {label} out of range for {n_classes} classes"
                )));
            }
            total_loss += accumulate_sample(model, input, label, &mut grads)?;
        }
        let scale = 1.0 / batch.len() as f64;
        self.apply(model, &grads, scale);
        let mean = total_loss * scale;
        if !mean.is_finite() {
            return Err(NnError::Training(format!("loss diverged to {mean}")));
        }
        Ok(mean)
    }

    fn zero_grads(&mut self, model: &Model) -> Vec<Option<ParamGrads>> {
        if self.velocity.len() != model.len() {
            self.velocity = model
                .layers()
                .iter()
                .map(|l| match l {
                    Layer::Dense(d) => Some(ParamGrads {
                        weights: vec![0.0; d.weights().len()],
                        bias: vec![0.0; d.bias().len()],
                    }),
                    Layer::Conv2d(c) => Some(ParamGrads {
                        weights: vec![0.0; c.weights().len()],
                        bias: vec![0.0; c.bias().len()],
                    }),
                    _ => None,
                })
                .collect();
        }
        model
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => Some(ParamGrads {
                    weights: vec![0.0; d.weights().len()],
                    bias: vec![0.0; d.bias().len()],
                }),
                Layer::Conv2d(c) => Some(ParamGrads {
                    weights: vec![0.0; c.weights().len()],
                    bias: vec![0.0; c.bias().len()],
                }),
                _ => None,
            })
            .collect()
    }

    fn apply(&mut self, model: &mut Model, grads: &[Option<ParamGrads>], scale: f64) {
        let lr = self.config.learning_rate as f64;
        let mu = self.config.momentum as f64;
        for ((layer, grad), vel) in model
            .layers_mut()
            .iter_mut()
            .zip(grads)
            .zip(&mut self.velocity)
        {
            let (Some(grad), Some(vel)) = (grad, vel) else {
                continue;
            };
            let (weights, bias): (&mut [f32], &mut [f32]) = match layer {
                Layer::Dense(d) => (&mut d.weights, &mut d.bias),
                Layer::Conv2d(c) => (&mut c.weights, &mut c.bias),
                _ => continue,
            };
            for ((w, g), v) in weights.iter_mut().zip(&grad.weights).zip(&mut vel.weights) {
                *v = mu * *v + g * scale;
                *w -= (lr * *v) as f32;
            }
            for ((b, g), v) in bias.iter_mut().zip(&grad.bias).zip(&mut vel.bias) {
                *v = mu * *v + g * scale;
                *b -= (lr * *v) as f32;
            }
        }
    }
}

/// Forward + backward for one sample; accumulates parameter gradients and
/// returns the sample cross-entropy loss.
fn accumulate_sample(
    model: &Model,
    input: &[f32],
    label: usize,
    grads: &mut [Option<ParamGrads>],
) -> Result<f64, NnError> {
    let input_shape = model.input_shape();
    if input.len() != input_shape.len() {
        return Err(NnError::InputShape {
            expected: input_shape,
            actual: input.len(),
        });
    }
    // Forward pass, caching activations: acts[0] = input, acts[i+1] = layer i output.
    let n = model.len();
    let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n + 1);
    acts.push(input.to_vec());
    let mut shapes: Vec<Shape> = Vec::with_capacity(n + 1);
    shapes.push(input_shape);
    for (i, layer) in model.layers().iter().enumerate() {
        let out_shape = model.layer_output_shape(i).expect("index in range");
        let mut out = vec![0.0f32; out_shape.len()];
        run_layer(layer, &acts[i], &mut out, &shapes[i], DenseKernel::Exact)?;
        acts.push(out);
        shapes.push(out_shape);
    }

    // Loss: cross-entropy against the softmax output.
    let probs = &acts[n];
    let p = probs[label].max(1e-12);
    let loss = -(p as f64).ln();

    // Gradient at the *input of the softmax* (fused softmax + CE):
    // dL/dz_i = p_i - 1[i == label].
    let mut grad: Vec<f32> = probs.to_vec();
    grad[label] -= 1.0;

    // Backward through layers n-2 .. 0 (softmax already consumed).
    for i in (0..n - 1).rev() {
        let layer = &model.layers()[i];
        let x = &acts[i];
        let in_shape = &shapes[i];
        grad = backward_layer(layer, x, in_shape, &grad, &mut grads[i])?;
    }
    let _ = grad;
    Ok(loss)
}

/// Backpropagates `grad_out` through `layer`, returning `grad_in` and
/// accumulating parameter gradients into `pgrads`.
fn backward_layer(
    layer: &Layer,
    x: &[f32],
    in_shape: &Shape,
    grad_out: &[f32],
    pgrads: &mut Option<ParamGrads>,
) -> Result<Vec<f32>, NnError> {
    match layer {
        Layer::Dense(d) => {
            let pg = pgrads.as_mut().expect("dense has grads");
            let mut grad_in = vec![0.0f32; d.inputs];
            for (o, &go) in grad_out.iter().enumerate().take(d.outputs) {
                let go = go as f64;
                pg.bias[o] += go;
                for (i, &xi) in x.iter().enumerate().take(d.inputs) {
                    pg.weights[o * d.inputs + i] += go * xi as f64;
                }
            }
            for (i, gi) in grad_in.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for (o, &go) in grad_out.iter().enumerate().take(d.outputs) {
                    acc += d.weights[o * d.inputs + i] as f64 * go as f64;
                }
                *gi = acc as f32;
            }
            Ok(grad_in)
        }
        Layer::Conv2d(c) => {
            let pg = pgrads.as_mut().expect("conv has grads");
            let dims = in_shape.dims();
            let (in_c, in_h, in_w) = (dims[0], dims[1], dims[2]);
            let (out_h, out_w) = safex_tensor::ops::conv2d_output_dims(
                in_h, in_w, c.kernel, c.kernel, c.stride, c.padding,
            )?;
            let mut grad_in = vec![0.0f32; in_c * in_h * in_w];
            let k = c.kernel;
            for oc in 0..c.out_channels {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let go = grad_out[oc * out_h * out_w + oy * out_w + ox] as f64;
                        if go == 0.0 {
                            continue;
                        }
                        pg.bias[oc] += go;
                        for ic in 0..in_c {
                            for ky in 0..k {
                                let iy = (oy * c.stride + ky) as isize - c.padding as isize;
                                if iy < 0 || iy as usize >= in_h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = (ox * c.stride + kx) as isize - c.padding as isize;
                                    if ix < 0 || ix as usize >= in_w {
                                        continue;
                                    }
                                    let xi = ic * in_h * in_w + iy as usize * in_w + ix as usize;
                                    let wi = oc * in_c * k * k + ic * k * k + ky * k + kx;
                                    pg.weights[wi] += go * x[xi] as f64;
                                    grad_in[xi] += (go * c.weights[wi] as f64) as f32;
                                }
                            }
                        }
                    }
                }
            }
            Ok(grad_in)
        }
        Layer::Relu => Ok(x
            .iter()
            .zip(grad_out)
            .map(|(&xi, &g)| if xi > 0.0 { g } else { 0.0 })
            .collect()),
        Layer::LeakyRelu { alpha } => Ok(x
            .iter()
            .zip(grad_out)
            .map(|(&xi, &g)| if xi > 0.0 { g } else { alpha * g })
            .collect()),
        Layer::MaxPool2d { pool, stride } => {
            let dims = in_shape.dims();
            let (channels, in_h, in_w) = (dims[0], dims[1], dims[2]);
            let (out_h, out_w) =
                safex_tensor::ops::conv2d_output_dims(in_h, in_w, *pool, *pool, *stride, 0)?;
            let mut grad_in = vec![0.0f32; x.len()];
            for c in 0..channels {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        // Recompute the argmax (first-wins tie break, same
                        // as the forward kernel which uses strict >).
                        let mut best_idx = 0usize;
                        let mut best = f32::NEG_INFINITY;
                        for py in 0..*pool {
                            for px in 0..*pool {
                                let idx =
                                    c * in_h * in_w + (oy * stride + py) * in_w + ox * stride + px;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        grad_in[best_idx] += grad_out[c * out_h * out_w + oy * out_w + ox];
                    }
                }
            }
            Ok(grad_in)
        }
        Layer::AvgPool2d { pool, stride } => {
            let dims = in_shape.dims();
            let (channels, in_h, in_w) = (dims[0], dims[1], dims[2]);
            let (out_h, out_w) =
                safex_tensor::ops::conv2d_output_dims(in_h, in_w, *pool, *pool, *stride, 0)?;
            let mut grad_in = vec![0.0f32; x.len()];
            let inv = 1.0 / (*pool * *pool) as f32;
            for c in 0..channels {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let g = grad_out[c * out_h * out_w + oy * out_w + ox] * inv;
                        for py in 0..*pool {
                            for px in 0..*pool {
                                grad_in[c * in_h * in_w
                                    + (oy * stride + py) * in_w
                                    + ox * stride
                                    + px] += g;
                            }
                        }
                    }
                }
            }
            Ok(grad_in)
        }
        Layer::Flatten => Ok(grad_out.to_vec()),
        Layer::BatchNorm(bn) => {
            // Frozen statistics: BN is an affine map, gradient scales by
            // the per-channel scale; gamma/beta are not trained here.
            let scale_shift = bn.scale_shift();
            if in_shape.rank() == 3 {
                let dims = in_shape.dims();
                let plane = dims[1] * dims[2];
                let mut grad_in = vec![0.0f32; x.len()];
                for (c, &(scale, _)) in scale_shift.iter().enumerate() {
                    for i in 0..plane {
                        grad_in[c * plane + i] = grad_out[c * plane + i] * scale;
                    }
                }
                Ok(grad_in)
            } else {
                Ok(grad_out
                    .iter()
                    .zip(scale_shift)
                    .map(|(&g, &(scale, _))| g * scale)
                    .collect())
            }
        }
        Layer::Softmax => Err(NnError::Training(
            "softmax must be the final layer when training".into(),
        )),
        #[allow(unreachable_patterns)]
        other => Err(NnError::Training(format!(
            "layer {} has no backward implementation",
            other.kind_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use crate::Engine;
    use safex_tensor::DetRng;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<usize>) {
        (
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![0, 1, 1, 0],
        )
    }

    #[test]
    fn config_validation() {
        assert!(SgdConfig::default().validate().is_ok());
        assert!(SgdConfig {
            learning_rate: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SgdConfig {
            momentum: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SgdConfig {
            batch_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn loss_decreases_on_xor() {
        let mut rng = DetRng::new(17);
        let mut model = ModelBuilder::new(Shape::vector(2))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let (inputs, labels) = xor_data();
        let mut trainer = Trainer::new(SgdConfig {
            learning_rate: 0.5,
            momentum: 0.9,
            batch_size: 4,
        })
        .unwrap();
        let first = trainer
            .train_epoch(&mut model, &inputs, &labels, &mut rng)
            .unwrap();
        let mut last = first;
        for _ in 0..300 {
            last = trainer
                .train_epoch(&mut model, &inputs, &labels, &mut rng)
                .unwrap();
        }
        assert!(
            last < first * 0.2,
            "loss should drop substantially: {first} -> {last}"
        );
        // And the model actually solves XOR.
        let mut engine = Engine::new(model);
        for (x, &y) in inputs.iter().zip(&labels) {
            let pred = engine.classify(x).unwrap().class;
            assert_eq!(pred, y, "XOR({x:?})");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut rng = DetRng::new(23);
            let mut model = ModelBuilder::new(Shape::vector(2))
                .dense(4, &mut rng)
                .unwrap()
                .relu()
                .dense(2, &mut rng)
                .unwrap()
                .softmax()
                .build()
                .unwrap();
            let (inputs, labels) = xor_data();
            let mut trainer = Trainer::new(SgdConfig::default()).unwrap();
            for _ in 0..20 {
                trainer
                    .train_epoch(&mut model, &inputs, &labels, &mut rng)
                    .unwrap();
            }
            model.digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn requires_softmax_head() {
        let mut rng = DetRng::new(1);
        let mut model = ModelBuilder::new(Shape::vector(2))
            .dense(2, &mut rng)
            .unwrap()
            .build()
            .unwrap();
        let mut trainer = Trainer::new(SgdConfig::default()).unwrap();
        let err = trainer
            .train_batch(&mut model, &[(&[0.0, 0.0][..], 0)])
            .unwrap_err();
        assert!(matches!(err, NnError::Training(_)));
    }

    #[test]
    fn rejects_bad_labels_and_empty() {
        let mut rng = DetRng::new(1);
        let mut model = ModelBuilder::new(Shape::vector(2))
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let mut trainer = Trainer::new(SgdConfig::default()).unwrap();
        assert!(trainer.train_batch(&mut model, &[]).is_err());
        assert!(trainer
            .train_batch(&mut model, &[(&[0.0, 0.0][..], 5)])
            .is_err());
        assert!(trainer.train_epoch(&mut model, &[], &[], &mut rng).is_err());
        assert!(trainer
            .train_epoch(&mut model, &[vec![0.0, 0.0]], &[0, 1], &mut rng)
            .is_err());
    }

    #[test]
    fn convnet_trains_on_patch_detection() {
        // Task: is the bright patch in the left or right half of a 1x6x6 image?
        let mut rng = DetRng::new(31);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let mut img = vec![0.0f32; 36];
            let right = i % 2 == 1;
            let x0 = if right { 4 } else { 0 };
            let y0 = (i / 2) % 4;
            for dy in 0..2 {
                for dx in 0..2 {
                    img[(y0 + dy) * 6 + x0 + dx] = 1.0;
                }
            }
            inputs.push(img);
            labels.push(right as usize);
        }
        let mut model = ModelBuilder::new(Shape::chw(1, 6, 6))
            .conv2d(4, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .maxpool2d(2, 2)
            .unwrap()
            .flatten()
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let mut trainer = Trainer::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.9,
            batch_size: 10,
        })
        .unwrap();
        for _ in 0..60 {
            trainer
                .train_epoch(&mut model, &inputs, &labels, &mut rng)
                .unwrap();
        }
        let mut engine = Engine::new(model);
        let correct = inputs
            .iter()
            .zip(&labels)
            .filter(|(x, &y)| engine.classify(x).unwrap().class == y)
            .count();
        assert!(
            correct >= 55,
            "convnet should learn patch side: {correct}/60"
        );
    }

    #[test]
    fn gradient_check_dense() {
        // Finite-difference check of dL/dw for a tiny dense+softmax model.
        let mut rng = DetRng::new(41);
        let mut model = ModelBuilder::new(Shape::vector(3))
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let input = [0.3f32, -0.7, 0.9];
        let label = 1usize;

        // Analytic gradient via one batch with lr such that delta = -lr*g.
        let mut grads: Vec<Option<ParamGrads>> = vec![
            Some(ParamGrads {
                weights: vec![0.0; 6],
                bias: vec![0.0; 2],
            }),
            None,
        ];
        accumulate_sample(&model, &input, label, &mut grads).unwrap();
        let analytic = grads[0].as_ref().unwrap().weights.clone();

        // Numeric gradient.
        let loss_fn = |model: &Model| -> f64 {
            let mut g: Vec<Option<ParamGrads>> = vec![
                Some(ParamGrads {
                    weights: vec![0.0; 6],
                    bias: vec![0.0; 2],
                }),
                None,
            ];
            accumulate_sample(model, &input, label, &mut g).unwrap()
        };
        let eps = 1e-3f32;
        for (wi, &grad) in analytic.iter().enumerate().take(6) {
            let mut plus = model.clone();
            if let Layer::Dense(d) = &mut plus.layers_mut()[0] {
                d.weights_mut()[wi] += eps;
            }
            let mut minus = model.clone();
            if let Layer::Dense(d) = &mut minus.layers_mut()[0] {
                d.weights_mut()[wi] -= eps;
            }
            let numeric = (loss_fn(&plus) - loss_fn(&minus)) / (2.0 * eps as f64);
            assert!(
                (numeric - grad).abs() < 1e-3,
                "w[{wi}]: numeric {numeric} vs analytic {grad}"
            );
        }
        let _ = &mut model;
    }
}
