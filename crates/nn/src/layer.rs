//! Layer definitions: parameters plus shape semantics.
//!
//! A [`Layer`] owns its parameters (if any) and knows how to map an input
//! [`Shape`] to an output shape. Execution lives in [`crate::engine`] so
//! that buffer management stays in one place.

use safex_tensor::ops::conv2d_output_dims;
use safex_tensor::{DetRng, Shape};

use crate::error::NnError;
use crate::init::Init;

/// A fully-connected layer: `y = W x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    pub(crate) weights: Vec<f32>, // outputs x inputs, row-major
    pub(crate) bias: Vec<f32>,    // outputs
    pub(crate) inputs: usize,
    pub(crate) outputs: usize,
}

impl DenseLayer {
    /// Creates a dense layer with the given initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerIncompatible`] if either dimension is zero.
    pub fn new(
        inputs: usize,
        outputs: usize,
        init: Init,
        rng: &mut DetRng,
    ) -> Result<Self, NnError> {
        if inputs == 0 || outputs == 0 {
            return Err(NnError::LayerIncompatible {
                layer: 0,
                reason: "dense dimensions must be non-zero".into(),
            });
        }
        let mut weights = vec![0.0f32; inputs * outputs];
        init.fill(&mut weights, inputs, outputs, rng);
        Ok(DenseLayer {
            weights,
            bias: vec![0.0; outputs],
            inputs,
            outputs,
        })
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output features.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Weight matrix, row-major `outputs x inputs`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable weight matrix (used by the trainer and by fault injectors).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }
}

/// A 2-D convolution layer over CHW inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2dLayer {
    pub(crate) weights: Vec<f32>, // out_c x in_c x k x k
    pub(crate) bias: Vec<f32>,    // out_c
    pub(crate) in_channels: usize,
    pub(crate) out_channels: usize,
    pub(crate) kernel: usize,
    pub(crate) stride: usize,
    pub(crate) padding: usize,
}

impl Conv2dLayer {
    /// Creates a square-kernel convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerIncompatible`] for zero channels, zero
    /// kernel, or zero stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init: Init,
        rng: &mut DetRng,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::LayerIncompatible {
                layer: 0,
                reason: "conv2d channels, kernel and stride must be non-zero".into(),
            });
        }
        let mut weights = vec![0.0f32; out_channels * in_channels * kernel * kernel];
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        init.fill(&mut weights, fan_in, fan_out, rng);
        Ok(Conv2dLayer {
            weights,
            bias: vec![0.0; out_channels],
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        })
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Square kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each border.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Weight tensor, `out_c x in_c x k x k` row-major.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable weights (trainer / fault injection).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Mutable bias.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }
}

/// A frozen (inference-mode) batch normalisation layer.
///
/// Normalises per channel (rank-3 CHW input) or per feature (rank-1
/// input) with statistics frozen at training time:
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`.
///
/// In a FUSA deployment BN is usually *folded* into the preceding
/// dense/conv layer ([`crate::model::Model::fold_batchnorm`]); the
/// standalone layer exists so unfolded models execute identically.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNormLayer {
    pub(crate) gamma: Vec<f32>,
    pub(crate) beta: Vec<f32>,
    pub(crate) mean: Vec<f32>,
    pub(crate) var: Vec<f32>,
    pub(crate) eps: f32,
    /// Precomputed per-channel `(scale, shift)` so the inference hot path
    /// stays allocation-free.
    pub(crate) scale_shift: Vec<(f32, f32)>,
}

impl BatchNormLayer {
    /// Creates a frozen BN layer from trained statistics.
    ///
    /// All four vectors must share a length equal to the channel (CHW) or
    /// feature (vector) count of the input this layer will normalise.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerIncompatible`] for empty or inconsistent
    /// parameter vectors, a non-positive epsilon, or non-positive
    /// variances.
    pub fn new(
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        var: Vec<f32>,
        eps: f32,
    ) -> Result<Self, NnError> {
        let n = gamma.len();
        if n == 0 || beta.len() != n || mean.len() != n || var.len() != n {
            return Err(NnError::LayerIncompatible {
                layer: 0,
                reason: "batchnorm parameter vectors must be non-empty and equal length".into(),
            });
        }
        if !(eps.is_finite() && eps > 0.0) {
            return Err(NnError::LayerIncompatible {
                layer: 0,
                reason: "batchnorm epsilon must be positive".into(),
            });
        }
        if var.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(NnError::LayerIncompatible {
                layer: 0,
                reason: "batchnorm variances must be finite and non-negative".into(),
            });
        }
        let scale_shift = gamma
            .iter()
            .zip(&beta)
            .zip(mean.iter().zip(&var))
            .map(|((&g, &b), (&m, &v))| {
                let scale = g / (v + eps).sqrt();
                (scale, b - scale * m)
            })
            .collect();
        Ok(BatchNormLayer {
            gamma,
            beta,
            mean,
            var,
            eps,
            scale_shift,
        })
    }

    /// An identity BN (gamma 1, beta 0, mean 0, var 1) over `n` channels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerIncompatible`] for `n == 0`.
    pub fn identity(n: usize) -> Result<Self, NnError> {
        BatchNormLayer::new(vec![1.0; n], vec![0.0; n], vec![0.0; n], vec![1.0; n], 1e-5)
    }

    /// Number of channels/features normalised.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Per-channel scale parameters (gamma).
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// Per-channel shift parameters (beta).
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// Frozen per-channel means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Frozen per-channel variances.
    pub fn variance(&self) -> &[f32] {
        &self.var
    }

    /// The numerical-stability epsilon.
    pub fn epsilon(&self) -> f32 {
        self.eps
    }

    /// The per-channel `(scale, shift)` this layer applies:
    /// `y = scale * x + shift` (precomputed at construction).
    pub fn scale_shift(&self) -> &[(f32, f32)] {
        &self.scale_shift
    }
}

/// One layer of a sequential model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Layer {
    /// Fully-connected layer over a rank-1 input.
    Dense(DenseLayer),
    /// 2-D convolution over a rank-3 CHW input.
    Conv2d(Conv2dLayer),
    /// Max pooling over a rank-3 CHW input.
    MaxPool2d {
        /// Square pooling window side.
        pool: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling over a rank-3 CHW input.
    AvgPool2d {
        /// Square pooling window side.
        pool: usize,
        /// Stride.
        stride: usize,
    },
    /// Rectified linear unit (any shape).
    Relu,
    /// Leaky ReLU (any shape).
    LeakyRelu {
        /// Negative-input slope.
        alpha: f32,
    },
    /// Softmax over a rank-1 input (must be the final layer for training
    /// with cross-entropy).
    Softmax,
    /// Flattens any shape to rank-1.
    Flatten,
    /// Frozen batch normalisation (per channel for CHW, per feature for
    /// rank-1 inputs).
    BatchNorm(BatchNormLayer),
}

impl Layer {
    /// Short stable name used in traces and model digests.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Dense(_) => "dense",
            Layer::Conv2d(_) => "conv2d",
            Layer::MaxPool2d { .. } => "maxpool2d",
            Layer::AvgPool2d { .. } => "avgpool2d",
            Layer::Relu => "relu",
            Layer::LeakyRelu { .. } => "leaky_relu",
            Layer::Softmax => "softmax",
            Layer::Flatten => "flatten",
            Layer::BatchNorm(_) => "batchnorm",
        }
    }

    /// Number of parameters (trainable or frozen statistics).
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights.len() + d.bias.len(),
            Layer::Conv2d(c) => c.weights.len() + c.bias.len(),
            Layer::BatchNorm(bn) => bn.gamma.len() * 4,
            _ => 0,
        }
    }

    /// Computes the output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerIncompatible`] (with `layer` set to
    /// `layer_index`) when the input shape cannot be consumed.
    pub fn output_shape(&self, input: &Shape, layer_index: usize) -> Result<Shape, NnError> {
        let incompat = |reason: String| NnError::LayerIncompatible {
            layer: layer_index,
            reason,
        };
        match self {
            Layer::Dense(d) => {
                if input.rank() != 1 || input.len() != d.inputs {
                    return Err(incompat(format!(
                        "dense expects rank-1 input of {} elements, got {input}",
                        d.inputs
                    )));
                }
                Ok(Shape::vector(d.outputs))
            }
            Layer::Conv2d(c) => {
                if input.rank() != 3 {
                    return Err(incompat(format!("conv2d expects CHW input, got {input}")));
                }
                let dims = input.dims();
                if dims[0] != c.in_channels {
                    return Err(incompat(format!(
                        "conv2d expects {} input channels, got {}",
                        c.in_channels, dims[0]
                    )));
                }
                let (oh, ow) =
                    conv2d_output_dims(dims[1], dims[2], c.kernel, c.kernel, c.stride, c.padding)
                        .map_err(|e| incompat(e.to_string()))?;
                Ok(Shape::chw(c.out_channels, oh, ow))
            }
            Layer::MaxPool2d { pool, stride } | Layer::AvgPool2d { pool, stride } => {
                if input.rank() != 3 {
                    return Err(incompat(format!("pooling expects CHW input, got {input}")));
                }
                let dims = input.dims();
                let (oh, ow) = conv2d_output_dims(dims[1], dims[2], *pool, *pool, *stride, 0)
                    .map_err(|e| incompat(e.to_string()))?;
                Ok(Shape::chw(dims[0], oh, ow))
            }
            Layer::Relu | Layer::LeakyRelu { .. } => Ok(*input),
            Layer::BatchNorm(bn) => {
                let expected = if input.rank() == 3 {
                    input.dims()[0]
                } else if input.rank() == 1 {
                    input.len()
                } else {
                    return Err(incompat(format!(
                        "batchnorm expects rank-1 or CHW input, got {input}"
                    )));
                };
                if bn.channels() != expected {
                    return Err(incompat(format!(
                        "batchnorm has {} channels but input {input} needs {expected}",
                        bn.channels()
                    )));
                }
                Ok(*input)
            }
            Layer::Softmax => {
                if input.rank() != 1 {
                    return Err(incompat(format!(
                        "softmax expects rank-1 input, got {input}"
                    )));
                }
                Ok(*input)
            }
            Layer::Flatten => Ok(Shape::vector(input.len())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(11)
    }

    #[test]
    fn dense_shape() {
        let d = DenseLayer::new(4, 3, Init::Zeros, &mut rng()).unwrap();
        let l = Layer::Dense(d);
        assert_eq!(
            l.output_shape(&Shape::vector(4), 0).unwrap(),
            Shape::vector(3)
        );
        assert!(l.output_shape(&Shape::vector(5), 0).is_err());
        assert!(l.output_shape(&Shape::matrix(2, 2), 0).is_err());
    }

    #[test]
    fn dense_rejects_zero_dims() {
        assert!(DenseLayer::new(0, 3, Init::Zeros, &mut rng()).is_err());
        assert!(DenseLayer::new(3, 0, Init::Zeros, &mut rng()).is_err());
    }

    #[test]
    fn conv_shape() {
        let c = Conv2dLayer::new(3, 8, 3, 1, 1, Init::Zeros, &mut rng()).unwrap();
        let l = Layer::Conv2d(c);
        // Same-padding 3x3: spatial dims preserved.
        assert_eq!(
            l.output_shape(&Shape::chw(3, 16, 16), 0).unwrap(),
            Shape::chw(8, 16, 16)
        );
        // Wrong channel count.
        assert!(l.output_shape(&Shape::chw(4, 16, 16), 0).is_err());
        // Wrong rank.
        assert!(l.output_shape(&Shape::vector(10), 0).is_err());
    }

    #[test]
    fn conv_stride_shrinks() {
        let c = Conv2dLayer::new(1, 2, 2, 2, 0, Init::Zeros, &mut rng()).unwrap();
        let l = Layer::Conv2d(c);
        assert_eq!(
            l.output_shape(&Shape::chw(1, 8, 8), 0).unwrap(),
            Shape::chw(2, 4, 4)
        );
    }

    #[test]
    fn pool_shapes() {
        let l = Layer::MaxPool2d { pool: 2, stride: 2 };
        assert_eq!(
            l.output_shape(&Shape::chw(4, 8, 8), 0).unwrap(),
            Shape::chw(4, 4, 4)
        );
        let l = Layer::AvgPool2d { pool: 3, stride: 1 };
        assert_eq!(
            l.output_shape(&Shape::chw(2, 5, 5), 0).unwrap(),
            Shape::chw(2, 3, 3)
        );
        assert!(l.output_shape(&Shape::vector(4), 0).is_err());
    }

    #[test]
    fn flatten_and_activations_preserve_len() {
        assert_eq!(
            Layer::Flatten
                .output_shape(&Shape::chw(2, 3, 4), 0)
                .unwrap(),
            Shape::vector(24)
        );
        assert_eq!(
            Layer::Relu.output_shape(&Shape::chw(2, 3, 4), 0).unwrap(),
            Shape::chw(2, 3, 4)
        );
        assert_eq!(
            Layer::Softmax.output_shape(&Shape::vector(5), 0).unwrap(),
            Shape::vector(5)
        );
        assert!(Layer::Softmax
            .output_shape(&Shape::matrix(2, 2), 0)
            .is_err());
    }

    #[test]
    fn param_counts() {
        let d = DenseLayer::new(4, 3, Init::Zeros, &mut rng()).unwrap();
        assert_eq!(Layer::Dense(d).param_count(), 4 * 3 + 3);
        let c = Conv2dLayer::new(2, 4, 3, 1, 0, Init::Zeros, &mut rng()).unwrap();
        assert_eq!(Layer::Conv2d(c).param_count(), 4 * 2 * 9 + 4);
        assert_eq!(Layer::Relu.param_count(), 0);
    }

    #[test]
    fn kind_names_stable() {
        assert_eq!(Layer::Relu.kind_name(), "relu");
        assert_eq!(Layer::Flatten.kind_name(), "flatten");
        assert_eq!(Layer::LeakyRelu { alpha: 0.1 }.kind_name(), "leaky_relu");
    }

    #[test]
    fn layer_error_index_propagates() {
        let l = Layer::Softmax;
        match l.output_shape(&Shape::matrix(2, 2), 7) {
            Err(NnError::LayerIncompatible { layer, .. }) => assert_eq!(layer, 7),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batchnorm_construction_validation() {
        assert!(BatchNormLayer::new(vec![], vec![], vec![], vec![], 1e-5).is_err());
        assert!(
            BatchNormLayer::new(vec![1.0], vec![0.0, 0.0], vec![0.0], vec![1.0], 1e-5).is_err()
        );
        assert!(BatchNormLayer::new(vec![1.0], vec![0.0], vec![0.0], vec![1.0], 0.0).is_err());
        assert!(BatchNormLayer::new(vec![1.0], vec![0.0], vec![0.0], vec![-1.0], 1e-5).is_err());
        let bn = BatchNormLayer::identity(3).unwrap();
        assert_eq!(bn.channels(), 3);
    }

    #[test]
    fn batchnorm_scale_shift_math() {
        // gamma 2, beta 1, mean 3, var 4, eps 0 -> scale = 1, shift = -2.
        let bn = BatchNormLayer::new(vec![2.0], vec![1.0], vec![3.0], vec![4.0], 1e-9).unwrap();
        let (scale, shift) = bn.scale_shift()[0];
        assert!((scale - 1.0).abs() < 1e-4);
        assert!((shift + 2.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_shape_semantics() {
        let bn = BatchNormLayer::identity(3).unwrap();
        let l = Layer::BatchNorm(bn);
        assert_eq!(
            l.output_shape(&Shape::chw(3, 4, 4), 0).unwrap(),
            Shape::chw(3, 4, 4)
        );
        assert_eq!(
            l.output_shape(&Shape::vector(3), 0).unwrap(),
            Shape::vector(3)
        );
        // Channel mismatch and bad rank.
        assert!(l.output_shape(&Shape::chw(2, 4, 4), 0).is_err());
        assert!(l.output_shape(&Shape::vector(5), 0).is_err());
        assert!(l.output_shape(&Shape::matrix(3, 3), 0).is_err());
        assert_eq!(l.kind_name(), "batchnorm");
        assert_eq!(l.param_count(), 12);
    }
}
