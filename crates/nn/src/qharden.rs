//! Runtime hardening for the quantised (Q16.16) inference path.
//!
//! Mirrors [`crate::harden`] for [`QEngine`]: golden CRC-32 checksums over
//! the Q16.16 parameter words re-verified on a cadence (with the same
//! [`CrcStrategy`] rotation discipline), plus calibrated activation range
//! guards in raw fixed-point space. Detections surface as the same typed
//! [`HealthEvent`]s through the same [`HealthSink`], so a
//! `HealthMonitor` upstream cannot tell — and does not care — which
//! implementation raised the alarm.
//!
//! The point is *diverse redundancy*: a 2-out-of-3 pattern can now pair a
//! hardened `f32` channel with a hardened Q16.16 channel, and a fault
//! campaign can strike **both** implementations
//! ([`crate::fault::FaultInjector::flip_qweight_bits`] via
//! [`HardenedQEngine::model_mut`]) while each side's own diagnostics stay
//! armed. Fixed point has no NaN to catch, so the non-finite checks of the
//! float path become *saturation* checks here: a value railed at
//! [`Q16_16::MAX`]/[`Q16_16::MIN`] is the fixed-point analogue of an
//! overflowed float and is reported as
//! [`HealthEvent::SaturatedActivation`].
//!
//! Unlike [`crate::harden::HardenedEngine`] there is no attached
//! [`FaultPlan`](crate::fault::FaultPlan): input- and activation-stage
//! injection stays on the `f32` front-end engine, while the quantised
//! engine's SEU strike surface is its weight store. Per-decision work is
//! keyed by a global decision index exactly like the float path, so
//! [`HardenedQPool`] is bit-identical to a sequential
//! [`HardenedQEngine::classify_indexed`] loop for any worker count.

use safex_tensor::fixed::Q16_16;
use safex_tensor::{CrcAccumulator, WeightDigest};

use crate::ecc::{EccCode, EccConfig, RepairOutcome};
use crate::engine::Classification;
use crate::error::NnError;
use crate::harden::{
    crc32_words, CheckedClassification, CrcStrategy, HardenConfig, HealthEvent, HealthSink,
};
use crate::pool::run_partitioned;
use crate::quant::{run_qlayer, run_qlayer_digest, QLayer, QModel};

/// The parametric buffers checksums cover, if the layer has any.
fn q_parametric_buffers(layer: &QLayer) -> Option<(&[Q16_16], &[Q16_16])> {
    match layer {
        QLayer::Dense { weights, bias, .. } | QLayer::Conv2d { weights, bias, .. } => {
            Some((weights, bias))
        }
        _ => None,
    }
}

/// Mutable view of the buffers [`q_parametric_buffers`] covers (repair
/// write-back path).
fn q_parametric_buffers_mut(layer: &mut QLayer) -> Option<(&mut [Q16_16], &mut [Q16_16])> {
    match layer {
        QLayer::Dense { weights, bias, .. } | QLayer::Conv2d { weights, bias, .. } => {
            Some((weights, bias))
        }
        _ => None,
    }
}

/// Encodes one ECC sidecar per golden (checksummed) quantised layer, over
/// the same raw Q16.16 word stream the CRC covers.
fn encode_q_sidecars(
    model: &QModel,
    golden: &[(usize, u32)],
    config: EccConfig,
) -> Result<Vec<EccCode>, NnError> {
    golden
        .iter()
        .map(|&(layer, _)| {
            let (weights, bias) = q_parametric_buffers(&model.layers()[layer])
                .expect("golden entries index parametric layers");
            let words: Vec<u32> = weights
                .iter()
                .chain(bias)
                .map(|q| q.to_bits() as u32)
                .collect();
            EccCode::encode(&words, config)
        })
        .collect()
}

/// CRC-32 of one quantised layer's parameters (`None` for non-parametric
/// layers). Runs over the raw Q16.16 bit words, so it is exactly as cheap
/// as the float path's [`crate::harden::layer_checksum`].
pub fn qlayer_checksum(layer: &QLayer) -> Option<u32> {
    q_parametric_buffers(layer).map(|(weights, bias)| {
        let mut acc = CrcAccumulator::new();
        acc.update_q16(weights);
        acc.update_q16(bias);
        acc.finish().crc
    })
}

/// CRC-32 of every parametric quantised layer: `(layer index, crc)` pairs.
///
/// Covers dense and convolution weights and biases — the buffers
/// [`crate::fault::FaultInjector::flip_qweight_bits`] can hit. Frozen
/// batch-norm scale/shift is excluded, matching the float path.
pub fn qlayer_checksums(model: &QModel) -> Vec<(usize, u32)> {
    model
        .layers()
        .iter()
        .enumerate()
        .filter_map(|(i, layer)| qlayer_checksum(layer).map(|crc| (i, crc)))
        .collect()
}

/// Per-layer Q16.16 activation envelopes learned from calibration data.
///
/// The fixed-point counterpart of
/// [`crate::harden::ActivationGuard`]: envelopes live in raw Q16.16 bit
/// space, widening is integer arithmetic on the raw span, and the
/// non-finite check becomes a saturation check.
#[derive(Debug, Clone, PartialEq)]
pub struct QActivationGuard {
    /// `(lo, hi)` per layer in raw Q16.16 bits, already slack-widened.
    ranges: Vec<(i32, i32)>,
}

impl QActivationGuard {
    /// Learns envelopes by tracing the *clean* quantised model over
    /// calibration inputs and widening each layer's observed `[min, max]`
    /// by `slack × span` on both sides (computed on the raw bit span,
    /// saturating at the format limits).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] for an empty calibration set, an invalid
    /// slack, or a calibration run that saturates (a model whose *clean*
    /// activations rail the format cannot be guarded meaningfully), and
    /// propagates inference errors on bad inputs.
    pub fn calibrate<I: AsRef<[Q16_16]>>(
        model: &QModel,
        inputs: &[I],
        slack: f32,
    ) -> Result<Self, NnError> {
        if inputs.is_empty() {
            return Err(NnError::Fault("calibration set is empty".into()));
        }
        if !slack.is_finite() || slack < 0.0 {
            return Err(NnError::Fault(format!(
                "guard slack must be finite and non-negative, got {slack}"
            )));
        }
        let mut tracer = Tracer::new(model.clone());
        let mut ranges = vec![(i32::MAX, i32::MIN); model.layers().len()];
        for input in inputs {
            tracer.trace(input.as_ref(), |layer, activation| {
                let range = &mut ranges[layer];
                for &v in activation {
                    if v.is_saturated() {
                        return Err(NnError::Fault(
                            "calibration produced a saturated activation".into(),
                        ));
                    }
                    range.0 = range.0.min(v.to_bits());
                    range.1 = range.1.max(v.to_bits());
                }
                Ok(())
            })?;
        }
        for range in &mut ranges {
            let span = (i64::from(range.1) - i64::from(range.0)).max(1);
            let pad = ((span as f64) * f64::from(slack)).ceil() as i64;
            range.0 =
                (i64::from(range.0) - pad).clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            range.1 =
                (i64::from(range.1) + pad).clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
        }
        Ok(QActivationGuard { ranges })
    }

    /// The widened `(lo, hi)` envelope per layer, in raw Q16.16 bits.
    pub fn ranges(&self) -> &[(i32, i32)] {
        &self.ranges
    }

    /// Checks one layer's activation, reporting at most one event (the
    /// first offending element) to bound per-decision event volume.
    fn check(&self, layer: usize, activation: &[Q16_16], events: &mut Vec<HealthEvent>) {
        let (lo, hi) = self.ranges[layer];
        for (index, &value) in activation.iter().enumerate() {
            if value.is_saturated() {
                events.push(HealthEvent::SaturatedActivation { layer, index });
                return;
            }
            let bits = value.to_bits();
            if bits < lo || bits > hi {
                events.push(HealthEvent::ActivationOutOfRange {
                    layer,
                    index,
                    value: value.to_f32(),
                    lo: Q16_16::from_bits(lo).to_f32(),
                    hi: Q16_16::from_bits(hi).to_f32(),
                });
                return;
            }
        }
    }
}

/// Minimal per-layer tracer over the quantised layer kernels (calibration
/// only; the hot path never allocates through this).
struct Tracer {
    model: QModel,
    buf_a: Vec<Q16_16>,
    buf_b: Vec<Q16_16>,
}

impl Tracer {
    fn new(model: QModel) -> Self {
        let cap = model.max_activation_len();
        Tracer {
            model,
            buf_a: vec![Q16_16::ZERO; cap],
            buf_b: vec![Q16_16::ZERO; cap],
        }
    }

    fn trace(
        &mut self,
        input: &[Q16_16],
        mut visit: impl FnMut(usize, &[Q16_16]) -> Result<(), NnError>,
    ) -> Result<(), NnError> {
        let expected = self.model.input_shape();
        if input.len() != expected.len() {
            return Err(NnError::InputShape {
                expected,
                actual: input.len(),
            });
        }
        self.buf_a[..input.len()].copy_from_slice(input);
        let mut cur_shape = expected;
        let mut cur_in_a = true;
        for (i, layer) in self.model.layers().iter().enumerate() {
            let out_shape = self
                .model
                .layer_output_shape(i)
                .expect("layer index in range");
            let (src, dst) = if cur_in_a {
                (&self.buf_a, &mut self.buf_b)
            } else {
                (&self.buf_b, &mut self.buf_a)
            };
            let dst = &mut dst[..out_shape.len()];
            run_qlayer(layer, &src[..cur_shape.len()], dst, &cur_shape)?;
            visit(i, dst)?;
            cur_shape = out_shape;
            cur_in_a = !cur_in_a;
        }
        Ok(())
    }
}

/// A [`QEngine`]-shaped executor with built-in fault detection — the
/// quantised mirror of [`crate::harden::HardenedEngine`].
///
/// Per decision it verifies weight checksums on the configured cadence
/// (same [`HardenConfig`], same [`CrcStrategy`] rotation keyed by the
/// global decision index) and runs the fixed-point activation guard.
/// Detections land in [`HardenedQEngine::last_events`] and, when attached,
/// a shared [`HealthSink`].
#[derive(Debug, Clone)]
pub struct HardenedQEngine {
    model: QModel,
    buf_a: Vec<Q16_16>,
    buf_b: Vec<Q16_16>,
    golden: Vec<(usize, u32)>,
    sidecars: Vec<EccCode>,
    config: HardenConfig,
    guard: Option<QActivationGuard>,
    sink: Option<HealthSink>,
    events: Vec<HealthEvent>,
    decisions: u64,
    events_seen: u64,
    /// Decisions `< synced_to` have had their scheduled repairs applied to
    /// *this* replica's weights (see the float twin in `harden.rs`).
    synced_to: u64,
    /// [`HardenConfig::staleness_bound`] evaluated once at construction
    /// (and on rebaseline); the hot path reads it on every emission.
    staleness_cached: Option<u64>,
}

impl HardenedQEngine {
    /// Creates a hardened quantised engine, capturing golden checksums
    /// from the (presumed pristine) model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] on an invalid config.
    pub fn new(model: QModel, config: HardenConfig) -> Result<Self, NnError> {
        config.validate()?;
        let cap = model.max_activation_len();
        let golden = qlayer_checksums(&model);
        let sidecars = match config.repair {
            Some(ecc) => encode_q_sidecars(&model, &golden, ecc)?,
            None => Vec::new(),
        };
        let staleness_cached = config.staleness_bound(golden.len());
        Ok(HardenedQEngine {
            model,
            buf_a: vec![Q16_16::ZERO; cap],
            buf_b: vec![Q16_16::ZERO; cap],
            golden,
            sidecars,
            config,
            guard: None,
            sink: None,
            events: Vec::new(),
            decisions: 0,
            events_seen: 0,
            synced_to: 0,
            staleness_cached,
        })
    }

    /// Worst-case decisions between a parameter corruption and detection
    /// under the configured cadence and [`CrcStrategy`] (`None` when
    /// checksums are disabled). Cached at construction; both inputs
    /// (config, golden layer count) only change on rebaseline.
    pub fn staleness_bound(&self) -> Option<u64> {
        self.staleness_cached
    }

    /// Learns activation envelopes from clean fixed-point calibration
    /// inputs using the configured slack.
    ///
    /// # Errors
    ///
    /// See [`QActivationGuard::calibrate`].
    pub fn calibrate<I: AsRef<[Q16_16]>>(&mut self, inputs: &[I]) -> Result<(), NnError> {
        self.guard = Some(QActivationGuard::calibrate(
            &self.model,
            inputs,
            self.config.guard_slack,
        )?);
        Ok(())
    }

    /// [`HardenedQEngine::calibrate`] over `f32` calibration data,
    /// quantising each input the same way [`QEngine::infer_f32`] would.
    ///
    /// # Errors
    ///
    /// See [`QActivationGuard::calibrate`].
    pub fn calibrate_f32<I: AsRef<[f32]>>(&mut self, inputs: &[I]) -> Result<(), NnError> {
        let q: Vec<Vec<Q16_16>> = inputs
            .iter()
            .map(|x| x.as_ref().iter().map(|&v| Q16_16::from_f32(v)).collect())
            .collect();
        self.calibrate(&q)
    }

    /// Installs a pre-calibrated guard.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] if the guard's layer count does not
    /// match the model.
    pub fn set_guard(&mut self, guard: QActivationGuard) -> Result<(), NnError> {
        if guard.ranges.len() != self.model.layers().len() {
            return Err(NnError::Fault(format!(
                "guard covers {} layers but model has {}",
                guard.ranges.len(),
                self.model.layers().len()
            )));
        }
        self.guard = Some(guard);
        Ok(())
    }

    /// Attaches a shared sink that receives every [`HealthEvent`].
    pub fn attach_sink(&mut self, sink: HealthSink) {
        self.sink = Some(sink);
    }

    /// Drops the shared sink (pool replicas report per-result instead).
    pub fn detach_observers(&mut self) {
        self.sink = None;
    }

    /// The wrapped quantised model.
    pub fn model(&self) -> &QModel {
        &self.model
    }

    /// Mutable model access — the fault-injection hook. Golden checksums
    /// deliberately do *not* follow; after a legitimate model update call
    /// [`HardenedQEngine::rebaseline`].
    pub fn model_mut(&mut self) -> &mut QModel {
        &mut self.model
    }

    /// Re-captures golden checksums (and, when repair is enabled, ECC
    /// sidecars) from the current parameters.
    pub fn rebaseline(&mut self) {
        self.golden = qlayer_checksums(&self.model);
        if let Some(ecc) = self.config.repair {
            self.sidecars = encode_q_sidecars(&self.model, &self.golden, ecc)
                .expect("ecc config was validated at construction");
        }
        self.staleness_cached = self.config.staleness_bound(self.golden.len());
    }

    /// ECC sidecar memory as a fraction of the protected parameter bits.
    /// `None` when repair is disabled or there is nothing to protect.
    pub fn sidecar_overhead(&self) -> Option<f64> {
        if self.sidecars.is_empty() {
            return None;
        }
        let sidecar: u64 = self.sidecars.iter().map(EccCode::sidecar_bits).sum();
        let data: u64 = self
            .sidecars
            .iter()
            .map(|c| c.protected_words() as u64 * 32)
            .sum();
        if data == 0 {
            return None;
        }
        Some(sidecar as f64 / data as f64)
    }

    /// Declares that every scheduled repair before `index` is already
    /// reflected in this replica's weights (pool dispatch path; see the
    /// float twin in `harden.rs`).
    pub(crate) fn sync_to(&mut self, index: u64) {
        self.synced_to = self.synced_to.max(index);
    }

    /// Replays the silent repairs a sequential engine would have applied
    /// on the scheduled checks in `[synced_to, index)`.
    fn catch_up(&mut self, index: u64) {
        let cadence = self.config.crc_cadence;
        let t0 = self.synced_to.div_ceil(cadence);
        let t1 = index.div_ceil(cadence);
        if t0 >= t1 {
            return;
        }
        match self.config.crc_strategy {
            // Fused covers the whole model per tick exactly like Full, so
            // the catch-up replay is identical.
            CrcStrategy::Full | CrcStrategy::Fused => {
                for gi in 0..self.golden.len() {
                    self.silent_repair(gi);
                }
            }
            CrcStrategy::Rotating => {
                let len = self.golden.len() as u64;
                if t1 - t0 >= len {
                    for gi in 0..self.golden.len() {
                        self.silent_repair(gi);
                    }
                } else {
                    for t in t0..t1 {
                        self.silent_repair((t % len) as usize);
                    }
                }
            }
        }
    }

    /// Repairs golden slot `gi` if its CRC mismatches, without reporting.
    fn silent_repair(&mut self, gi: usize) {
        let (layer, expected) = self.golden[gi];
        let actual = qlayer_checksum(&self.model.layers()[layer])
            .expect("golden entries index parametric layers");
        if expected != actual {
            self.attempt_repair(gi);
        }
    }

    /// Runs one scheduled CRC check over golden slot `gi`, attempting an
    /// in-place ECC repair before escalating when repair is enabled.
    fn check_slot(&mut self, gi: usize, staleness: u64) {
        let (layer, expected) = self.golden[gi];
        let actual = qlayer_checksum(&self.model.layers()[layer])
            .expect("golden entries index parametric layers");
        if expected == actual {
            return;
        }
        if self.config.repair.is_some() {
            if let Some((word, bit)) = self.attempt_repair(gi) {
                self.events.push(HealthEvent::CorrectedFault {
                    layer,
                    word,
                    bit,
                    staleness,
                });
                return;
            }
        }
        self.events.push(HealthEvent::ChecksumMismatch {
            layer,
            expected,
            actual,
            staleness,
        });
    }

    /// Tries to ECC-correct golden slot `gi`'s parameters; writes back
    /// exactly one word only after the corrected stream re-verifies
    /// against the golden CRC.
    fn attempt_repair(&mut self, gi: usize) -> Option<(usize, u32)> {
        let (layer, expected) = self.golden[gi];
        let sidecar = &self.sidecars[gi];
        let (weights, bias) = q_parametric_buffers(&self.model.layers()[layer])
            .expect("golden entries index parametric layers");
        let n_weights = weights.len();
        let mut words: Vec<u32> = weights
            .iter()
            .chain(bias)
            .map(|q| q.to_bits() as u32)
            .collect();
        match sidecar.repair(&mut words) {
            RepairOutcome::Corrected { word, bit } => {
                if crc32_words(words.iter().copied()) != expected {
                    return None;
                }
                let repaired = Q16_16::from_bits(words[word] as i32);
                let (weights, bias) = q_parametric_buffers_mut(&mut self.model.layers_mut()[layer])
                    .expect("golden entries index parametric layers");
                if word < n_weights {
                    weights[word] = repaired;
                } else {
                    bias[word - n_weights] = repaired;
                }
                Some((word, bit))
            }
            RepairOutcome::Clean | RepairOutcome::Uncorrectable => None,
        }
    }

    /// Golden `(layer, crc)` pairs currently enforced.
    pub fn golden_checksums(&self) -> &[(usize, u32)] {
        &self.golden
    }

    /// Decisions completed via [`HardenedQEngine::infer`] /
    /// [`HardenedQEngine::classify`].
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Total health events raised since construction.
    pub fn event_count(&self) -> u64 {
        self.events_seen
    }

    /// Events raised by the most recent decision.
    pub fn last_events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Runs one decision at the engine's own monotone index.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer(&mut self, input: &[Q16_16]) -> Result<&[Q16_16], NnError> {
        let index = self.decisions;
        let (len, in_a) = self.run(index, input)?;
        self.decisions += 1;
        let buf = if in_a { &self.buf_a } else { &self.buf_b };
        Ok(&buf[..len])
    }

    /// Runs one decision at an explicit global index (pool path). Does not
    /// advance the engine's own counter.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer_indexed(&mut self, index: u64, input: &[Q16_16]) -> Result<&[Q16_16], NnError> {
        let (len, in_a) = self.run(index, input)?;
        let buf = if in_a { &self.buf_a } else { &self.buf_b };
        Ok(&buf[..len])
    }

    /// Classification convenience over [`HardenedQEngine::infer`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify(&mut self, input: &[Q16_16]) -> Result<Classification, NnError> {
        let index = self.decisions;
        let c = self.classify_indexed(index, input)?;
        self.decisions += 1;
        Ok(c)
    }

    /// Classification at an explicit global index (pool path).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify_indexed(
        &mut self,
        index: u64,
        input: &[Q16_16],
    ) -> Result<Classification, NnError> {
        let out = self.infer_indexed(index, input)?;
        let mut best = (0usize, Q16_16::MIN);
        for (i, &v) in out.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        Ok(Classification {
            class: best.0,
            confidence: best.1.to_f32(),
        })
    }

    /// Quantises an `f32` input and classifies at the engine's own index —
    /// the front door diverse-redundancy channels use.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify_f32(&mut self, input: &[f32]) -> Result<Classification, NnError> {
        let q: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        self.classify(&q)
    }

    /// The core decision: verify checksums → execute → guard.
    ///
    /// [`CrcStrategy::Fused`] cadence ticks verify inside the layer loop
    /// via the digest kernels and re-run once after an in-pass ECC
    /// repair, exactly like the float twin in `harden.rs` — see
    /// `HardenedEngine::run` for the full rationale.
    fn run(&mut self, index: u64, input: &[Q16_16]) -> Result<(usize, bool), NnError> {
        if input.len() != self.model.input_shape().len() {
            return Err(NnError::InputShape {
                expected: self.model.input_shape(),
                actual: input.len(),
            });
        }
        let crc_scheduled = self.config.crc_cadence > 0 && !self.golden.is_empty();
        let on_tick = crc_scheduled && index.is_multiple_of(self.config.crc_cadence);
        let mut verify_in_pass = on_tick && self.config.crc_strategy == CrcStrategy::Fused;
        let mut first_attempt = true;
        let mut crc_events: Vec<HealthEvent> = Vec::new();

        let (out_len, out_in_a) = loop {
            self.events.clear();
            self.buf_a[..input.len()].copy_from_slice(input);

            if crc_scheduled && first_attempt {
                // See the float twin in `harden.rs`: pooled replicas
                // first replay the silent repairs of skipped scheduled
                // checks so their weights match the sequential reference
                // before the layer loop reads them.
                if self.config.repair.is_some() {
                    self.catch_up(index);
                }
                if on_tick {
                    let staleness = self.staleness_bound().unwrap_or(0);
                    match self.config.crc_strategy {
                        CrcStrategy::Full => {
                            for gi in 0..self.golden.len() {
                                self.check_slot(gi, staleness);
                            }
                        }
                        CrcStrategy::Rotating => {
                            // Cursor derived from the global decision
                            // index, never from engine-local state: pooled
                            // replicas replaying the same decision verify
                            // the same layer.
                            let tick = index / self.config.crc_cadence;
                            let slot = (tick % self.golden.len() as u64) as usize;
                            self.check_slot(slot, staleness);
                        }
                        // Verified inside the layer loop below.
                        CrcStrategy::Fused => {}
                    }
                }
                self.synced_to = self.synced_to.max(index + 1);
            }
            let splice_at = self.events.len();

            let mut cur_shape = self.model.input_shape();
            let mut cur_in_a = true;
            let mut sweep: Vec<WeightDigest> = Vec::new();
            for (i, layer) in self.model.layers().iter().enumerate() {
                let out_shape = self
                    .model
                    .layer_output_shape(i)
                    .expect("layer index in range");
                let (src, dst) = if cur_in_a {
                    (&self.buf_a, &mut self.buf_b)
                } else {
                    (&self.buf_b, &mut self.buf_a)
                };
                let dst = &mut dst[..out_shape.len()];
                if verify_in_pass {
                    if let Some(digest) =
                        run_qlayer_digest(layer, &src[..cur_shape.len()], dst, &cur_shape)?
                    {
                        sweep.push(digest);
                    }
                } else {
                    run_qlayer(layer, &src[..cur_shape.len()], dst, &cur_shape)?;
                }
                if let Some(guard) = &self.guard {
                    guard.check(i, dst, &mut self.events);
                }
                cur_shape = out_shape;
                cur_in_a = !cur_in_a;
            }

            if verify_in_pass {
                let staleness = self.staleness_bound().unwrap_or(0);
                let mut repaired = false;
                for (gi, digest) in sweep.iter().enumerate() {
                    let (layer, expected) = self.golden[gi];
                    let parity_ok = self
                        .sidecars
                        .get(gi)
                        .is_none_or(|s| s.parity_signature() == digest.parity);
                    if digest.crc == expected && parity_ok {
                        continue;
                    }
                    if self.config.repair.is_some() {
                        if let Some((word, bit)) = self.attempt_repair(gi) {
                            crc_events.push(HealthEvent::CorrectedFault {
                                layer,
                                word,
                                bit,
                                staleness,
                            });
                            repaired = true;
                            continue;
                        }
                    }
                    crc_events.push(HealthEvent::ChecksumMismatch {
                        layer,
                        expected,
                        actual: digest.crc,
                        staleness,
                    });
                }
                if repaired {
                    verify_in_pass = false;
                    first_attempt = false;
                    continue;
                }
            }
            self.events
                .splice(splice_at..splice_at, crc_events.drain(..));

            // Without a guard, still refuse to stay silent on a saturated
            // final activation (the fixed-point "non-finite").
            if self.guard.is_none() {
                let out = if cur_in_a { &self.buf_a } else { &self.buf_b };
                if let Some((index, _)) = out[..cur_shape.len()]
                    .iter()
                    .enumerate()
                    .find(|(_, v)| v.is_saturated())
                {
                    self.events.push(HealthEvent::SaturatedActivation {
                        layer: self.model.layers().len() - 1,
                        index,
                    });
                }
            }

            break (cur_shape.len(), cur_in_a);
        };

        self.events_seen += self.events.len() as u64;
        if let Some(sink) = &self.sink {
            sink.extend(&self.events);
        }
        Ok((out_len, out_in_a))
    }
}

/// A pool of [`HardenedQEngine`] replicas for parallel batches.
///
/// Replicas drop the shared sink (push order would depend on scheduling);
/// every result carries its own events instead, so batch output is
/// bit-identical for any worker count and equal to a sequential
/// [`HardenedQEngine::classify_indexed`] loop over the same global
/// indices. Results reuse [`CheckedClassification`]; the quantised engine
/// performs no plan-driven injections, so that field is always empty.
#[derive(Debug, Clone)]
pub struct HardenedQPool {
    workers: Vec<HardenedQEngine>,
    dispatched: u64,
}

impl HardenedQPool {
    /// Creates a pool of `workers` replicas of `engine`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Pool`] when `workers` is zero.
    pub fn new(engine: &HardenedQEngine, workers: usize) -> Result<Self, NnError> {
        if workers == 0 {
            return Err(NnError::Pool("pool needs at least one worker".into()));
        }
        let workers = (0..workers)
            .map(|_| {
                let mut replica = engine.clone();
                replica.detach_observers();
                replica
            })
            .collect();
        Ok(HardenedQPool {
            workers,
            dispatched: 0,
        })
    }

    /// Number of worker replicas.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Decisions dispatched so far (the next batch starts at this global
    /// index).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Classifies a batch in parallel, preserving input order; global
    /// decision indices continue across batches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn classify_batch<I: AsRef<[Q16_16]> + Sync>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<CheckedClassification>, NnError> {
        let base = self.dispatched;
        // Strikes land between batches and hit every replica identically;
        // re-sync so repair catch-up never replays pre-strike checks (see
        // `HardenedPool::classify_batch`).
        for worker in &mut self.workers {
            worker.sync_to(base);
        }
        let indexed: Vec<(u64, &[Q16_16])> = inputs
            .iter()
            .enumerate()
            .map(|(k, x)| (base + k as u64, x.as_ref()))
            .collect();
        let out = run_partitioned(&mut self.workers, &indexed, |engine, &(index, input)| {
            let classification = engine.classify_indexed(index, input)?;
            Ok(CheckedClassification {
                classification,
                events: engine.last_events().to_vec(),
                injections: Vec::new(),
            })
        })?;
        self.dispatched = base + inputs.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use crate::model::ModelBuilder;
    use crate::quant::QEngine;
    use safex_tensor::{DetRng, Shape};

    fn qmodel(seed: u64) -> QModel {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(Shape::vector(4))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        QModel::quantize(&model).unwrap()
    }

    fn qinputs(n: usize) -> Vec<Vec<Q16_16>> {
        let mut rng = DetRng::new(99);
        (0..n)
            .map(|_| {
                (0..4)
                    .map(|_| Q16_16::from_f32(rng.next_f32() * 2.0 - 1.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn qlayer_checksums_cover_parametric_layers() {
        let q = qmodel(1);
        let sums = qlayer_checksums(&q);
        assert_eq!(sums.len(), 2, "two dense layers");
        assert_eq!(sums[0].0, 0);
        assert_eq!(sums[1].0, 2);
    }

    #[test]
    fn clean_decisions_raise_no_events_and_match_qengine() {
        let q = qmodel(2);
        let mut hardened = HardenedQEngine::new(q.clone(), HardenConfig::default()).unwrap();
        let inputs = qinputs(16);
        hardened.calibrate(&inputs).unwrap();
        let mut reference = QEngine::new(q);
        for input in &inputs {
            let h = hardened.classify(input).unwrap();
            let r = reference.classify(input).unwrap();
            assert_eq!(h, r, "hardened output must equal the plain engine");
            assert!(hardened.last_events().is_empty());
        }
        assert_eq!(hardened.event_count(), 0);
        assert_eq!(hardened.decision_count(), 16);
    }

    #[test]
    fn qweight_flip_is_caught_by_checksum() {
        let q = qmodel(3);
        let mut hardened = HardenedQEngine::new(q, HardenConfig::default()).unwrap();
        let input = &qinputs(1)[0];
        hardened.infer(input).unwrap();
        assert!(hardened.last_events().is_empty());
        let mut injector = FaultInjector::new(7);
        injector
            .flip_qweight_bits(hardened.model_mut(), 1, 1)
            .unwrap();
        hardened.infer(input).unwrap();
        assert!(
            hardened
                .last_events()
                .iter()
                .any(|e| matches!(e, HealthEvent::ChecksumMismatch { .. })),
            "CRC on cadence 1 must flag the strike: {:?}",
            hardened.last_events()
        );
        // Rebaselining accepts the current (corrupted) weights as golden.
        hardened.rebaseline();
        hardened.infer(input).unwrap();
        assert!(hardened.last_events().is_empty());
    }

    #[test]
    fn guard_catches_high_bit_corruption() {
        // Flipping a high bit of a Q16.16 weight turns it into a huge
        // magnitude; even with CRC disabled the activation guard (or the
        // saturation check) must notice downstream.
        let q = qmodel(4);
        let config = HardenConfig {
            crc_cadence: 0,
            ..HardenConfig::default()
        };
        let mut hardened = HardenedQEngine::new(q, config).unwrap();
        let inputs = qinputs(16);
        hardened.calibrate(&inputs).unwrap();
        if let QLayer::Dense { weights, .. } = &mut hardened.model_mut().layers_mut()[0] {
            weights[0] = Q16_16::from_bits(weights[0].to_bits() ^ (1 << 30));
        }
        let mut flagged = 0;
        for input in &inputs {
            hardened.classify(input).unwrap();
            if hardened.last_events().iter().any(|e| {
                matches!(
                    e,
                    HealthEvent::ActivationOutOfRange { .. }
                        | HealthEvent::SaturatedActivation { .. }
                )
            }) {
                flagged += 1;
            }
        }
        assert!(flagged > 0, "range guard must catch a 2^14-sized weight");
    }

    #[test]
    fn rotating_crc_detects_within_staleness_bound() {
        let config = HardenConfig {
            crc_cadence: 2,
            crc_strategy: CrcStrategy::Rotating,
            ..HardenConfig::default()
        };
        let mut hardened = HardenedQEngine::new(qmodel(5), config).unwrap();
        let bound = hardened.staleness_bound().unwrap();
        assert_eq!(bound, 4, "2 parametric layers × cadence 2");
        let last_layer = hardened.golden_checksums().last().unwrap().0;
        let input = &qinputs(1)[0];
        for _ in 0..3 {
            hardened.infer(input).unwrap();
            assert!(hardened.last_events().is_empty());
        }
        let flip_at = hardened.decision_count();
        if let QLayer::Dense { weights, .. } = &mut hardened.model_mut().layers_mut()[last_layer] {
            weights[0] = Q16_16::from_bits(weights[0].to_bits() ^ 1);
        }
        let mut detected_at = None;
        for _ in 0..2 * bound {
            hardened.infer(input).unwrap();
            if hardened
                .last_events()
                .iter()
                .any(|e| matches!(e, HealthEvent::ChecksumMismatch { layer, .. } if *layer == last_layer))
            {
                detected_at = Some(hardened.decision_count() - 1);
                break;
            }
        }
        let detected_at = detected_at.expect("one rotation must reach the corrupted layer");
        assert!(
            detected_at - flip_at < bound,
            "flip at {flip_at} detected at {detected_at}, bound {bound}"
        );
    }

    #[test]
    fn pool_is_bit_identical_to_sequential_for_any_worker_count() {
        let q = qmodel(6);
        let mut engine = HardenedQEngine::new(q, HardenConfig::default()).unwrap();
        let inputs = qinputs(32);
        engine.calibrate(&inputs).unwrap();

        let mut sequential = Vec::new();
        let mut seq_engine = engine.clone();
        for (k, input) in inputs.iter().enumerate() {
            let classification = seq_engine.classify_indexed(k as u64, input).unwrap();
            sequential.push(CheckedClassification {
                classification,
                events: seq_engine.last_events().to_vec(),
                injections: Vec::new(),
            });
        }
        for workers in [1usize, 2, 4, 8] {
            let mut pool = HardenedQPool::new(&engine, workers).unwrap();
            let batched = pool.classify_batch(&inputs).unwrap();
            assert_eq!(batched, sequential, "{workers} workers diverged");
            assert_eq!(pool.dispatched(), inputs.len() as u64);
        }
    }

    #[test]
    fn calibrate_f32_matches_quantised_calibration() {
        let q = qmodel(7);
        let f32_inputs: Vec<Vec<f32>> = {
            let mut rng = DetRng::new(99);
            (0..16)
                .map(|_| (0..4).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
                .collect()
        };
        let mut a = HardenedQEngine::new(q.clone(), HardenConfig::default()).unwrap();
        a.calibrate_f32(&f32_inputs).unwrap();
        let mut b = HardenedQEngine::new(q, HardenConfig::default()).unwrap();
        b.calibrate(&qinputs(16)).unwrap();
        assert_eq!(a.guard, b.guard, "same data, same envelopes");
    }

    #[test]
    fn ecc_repairs_single_qweight_flip_and_keeps_serving() {
        let q = qmodel(9);
        let config = HardenConfig {
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let mut hardened = HardenedQEngine::new(q.clone(), config).unwrap();
        let mut reference = QEngine::new(q);
        let input = &qinputs(1)[0];
        hardened.infer(input).unwrap();
        assert!(hardened.last_events().is_empty());

        let last_layer = hardened.golden_checksums().last().unwrap().0;
        if let QLayer::Dense { weights, .. } = &mut hardened.model_mut().layers_mut()[last_layer] {
            weights[0] = Q16_16::from_bits(weights[0].to_bits() ^ (1 << 30));
        }
        let expected = reference.classify(input).unwrap();
        let got = hardened.classify(input).unwrap();
        assert_eq!(got, expected, "corrected decision must match pristine");
        assert!(
            matches!(
                hardened.last_events(),
                [HealthEvent::CorrectedFault { layer, word: 0, bit: 30, .. }]
                    if *layer == last_layer
            ),
            "events: {:?}",
            hardened.last_events()
        );
        hardened.infer(input).unwrap();
        assert!(hardened.last_events().is_empty(), "the fault is gone");
        let overhead = hardened.sidecar_overhead().unwrap();
        assert!(
            (0.05..0.10).contains(&overhead),
            "unexpected overhead {overhead}"
        );
    }

    #[test]
    fn ecc_leaves_double_qflips_on_the_escalation_path() {
        let config = HardenConfig {
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let mut hardened = HardenedQEngine::new(qmodel(10), config).unwrap();
        let input = &qinputs(1)[0];
        hardened.infer(input).unwrap();
        let layer = hardened.golden_checksums()[0].0;
        if let QLayer::Dense { weights, .. } = &mut hardened.model_mut().layers_mut()[layer] {
            weights[0] = Q16_16::from_bits(weights[0].to_bits() ^ 1);
            weights[1] = Q16_16::from_bits(weights[1].to_bits() ^ (1 << 7));
        }
        hardened.infer(input).unwrap();
        assert!(
            hardened.last_events().iter().any(
                |e| matches!(e, HealthEvent::ChecksumMismatch { layer: l, .. } if *l == layer)
            ),
            "double flip must escalate: {:?}",
            hardened.last_events()
        );
        assert!(
            !hardened
                .last_events()
                .iter()
                .any(|e| matches!(e, HealthEvent::CorrectedFault { .. })),
            "double flip must never be miscorrected"
        );
    }

    /// Full and Fused must be indistinguishable from the outside on the
    /// quantised path too: same outputs and same events per decision.
    fn assert_qfused_equals_full(
        seed: u64,
        cadence: u64,
        repair: Option<EccConfig>,
        strike: &dyn Fn(&mut HardenedQEngine, u64),
    ) {
        let q = qmodel(seed);
        let mk = |strategy: CrcStrategy| {
            let config = HardenConfig {
                crc_cadence: cadence,
                crc_strategy: strategy,
                repair,
                ..HardenConfig::default()
            };
            let mut e = HardenedQEngine::new(q.clone(), config).unwrap();
            e.calibrate(&qinputs(16)).unwrap();
            e
        };
        let inputs = qinputs(16);
        let mut streams = [CrcStrategy::Full, CrcStrategy::Fused].map(|strategy| {
            let mut engine = mk(strategy);
            let mut out = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                strike(&mut engine, i as u64);
                let o = engine.infer(input).unwrap().to_vec();
                out.push((o, engine.last_events().to_vec()));
            }
            out
        });
        let fused = streams[1].clone();
        assert_eq!(
            std::mem::take(&mut streams[0]),
            fused,
            "Fused diverged from Full (seed {seed}, cadence {cadence}, repair {repair:?})"
        );
    }

    fn qflip_weight(engine: &mut HardenedQEngine, layer: usize, word: usize, bit: u32) {
        if let QLayer::Dense { weights, .. } = &mut engine.model_mut().layers_mut()[layer] {
            weights[word] = Q16_16::from_bits(weights[word].to_bits() ^ (1 << bit));
        } else {
            panic!("layer {layer} is not dense");
        }
    }

    #[test]
    fn qfused_matches_full_across_scenarios() {
        // Clean streams.
        assert_qfused_equals_full(12, 1, None, &|_, _| {});
        assert_qfused_equals_full(12, 3, Some(EccConfig::default()), &|_, _| {});
        // Detect-only mid-stream flip.
        let single = |e: &mut HardenedQEngine, i: u64| {
            if i == 5 {
                qflip_weight(e, 2, 0, 30);
            }
        };
        assert_qfused_equals_full(13, 1, None, &single);
        assert_qfused_equals_full(13, 4, None, &single);
        // Repaired flip (in-pass digest → ECC correction → re-run).
        assert_qfused_equals_full(14, 1, Some(EccConfig::default()), &single);
        assert_qfused_equals_full(14, 2, Some(EccConfig { block_words: 8 }), &single);
        // Uncorrectable double flip escalates identically.
        let double = |e: &mut HardenedQEngine, i: u64| {
            if i == 3 {
                qflip_weight(e, 0, 0, 1);
                qflip_weight(e, 0, 1, 7);
            }
        };
        assert_qfused_equals_full(15, 1, Some(EccConfig::default()), &double);
    }

    #[test]
    fn qfused_repair_restores_pristine_and_reports_staleness() {
        let config = HardenConfig {
            crc_strategy: CrcStrategy::Fused,
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let q = qmodel(16);
        let mut reference = QEngine::new(q.clone());
        let mut hardened = HardenedQEngine::new(q, config).unwrap();
        assert_eq!(hardened.staleness_bound(), Some(1), "Fused bound = cadence");
        let input = &qinputs(1)[0];
        hardened.infer(input).unwrap();
        assert!(hardened.last_events().is_empty());
        let last_layer = hardened.golden_checksums().last().unwrap().0;
        qflip_weight(&mut hardened, last_layer, 0, 30);
        let expected = reference.classify(input).unwrap();
        let got = hardened.classify(input).unwrap();
        assert_eq!(got, expected, "corrected decision must match pristine");
        assert!(
            matches!(
                hardened.last_events(),
                [HealthEvent::CorrectedFault { layer, word: 0, bit: 30, staleness: 1 }]
                    if *layer == last_layer
            ),
            "events: {:?}",
            hardened.last_events()
        );
        hardened.infer(input).unwrap();
        assert!(hardened.last_events().is_empty(), "the fault is gone");
    }

    #[test]
    fn repair_pool_matches_sequential_for_any_worker_count() {
        // Replicas cloned from a struck engine all carry the corruption;
        // the scheduled repair mutates their weight state mid-stream, and
        // catch-up must keep pooled output byte-identical to sequential.
        for strategy in [CrcStrategy::Full, CrcStrategy::Rotating, CrcStrategy::Fused] {
            let config = HardenConfig {
                crc_cadence: 2,
                crc_strategy: strategy,
                repair: Some(EccConfig { block_words: 8 }),
                ..HardenConfig::default()
            };
            let mut engine = HardenedQEngine::new(qmodel(11), config).unwrap();
            let inputs = qinputs(16);
            engine.calibrate(&inputs).unwrap();
            let last_layer = engine.golden_checksums().last().unwrap().0;
            if let QLayer::Dense { weights, .. } = &mut engine.model_mut().layers_mut()[last_layer]
            {
                weights[0] = Q16_16::from_bits(weights[0].to_bits() ^ (1 << 12));
            }

            let mut sequential = Vec::new();
            let mut seq = engine.clone();
            for (k, input) in inputs.iter().enumerate() {
                let classification = seq.classify_indexed(k as u64, input).unwrap();
                sequential.push(CheckedClassification {
                    classification,
                    events: seq.last_events().to_vec(),
                    injections: Vec::new(),
                });
            }
            assert!(
                sequential
                    .iter()
                    .flat_map(|r| &r.events)
                    .any(|e| matches!(e, HealthEvent::CorrectedFault { .. })),
                "{strategy:?}: the strike must be corrected somewhere"
            );
            for workers in [1usize, 2, 4, 8] {
                let mut pool = HardenedQPool::new(&engine, workers).unwrap();
                let batched = pool.classify_batch(&inputs).unwrap();
                assert_eq!(batched, sequential, "{strategy:?}, {workers} workers");
            }
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let q = qmodel(8);
        let bad = HardenConfig {
            guard_slack: -1.0,
            ..HardenConfig::default()
        };
        assert!(HardenedQEngine::new(q.clone(), bad).is_err());
        let engine = HardenedQEngine::new(q.clone(), HardenConfig::default()).unwrap();
        assert!(HardenedQPool::new(&engine, 0).is_err());
        let mut engine = engine;
        assert!(engine.calibrate(&Vec::<Vec<Q16_16>>::new()).is_err());
        let other = QActivationGuard {
            ranges: vec![(0, 1)],
        };
        assert!(engine.set_guard(other).is_err());
    }
}
