#![forbid(unsafe_code)]
//! # safex-nn
//!
//! A FUSA-oriented deep learning library: the implementation of pillar 3 of
//! the SAFEXPLAIN paper, *"DL library implementations that adhere to safety
//! requirements"*.
//!
//! The library deliberately inverts the priorities of mainstream DL
//! frameworks. Instead of training throughput it optimises for properties a
//! safety assessor cares about:
//!
//! * **Deterministic inference.** The [`engine::Engine`] executes a frozen
//!   [`model::Model`] with a fixed operation order and `f64`-accumulated
//!   kernels from [`safex_tensor::ops`]; repeated runs produce bit-identical
//!   outputs. The quantised [`quant::QEngine`] goes further: Q16.16
//!   fixed-point arithmetic is bit-exact across *platforms*, not just runs.
//! * **Static allocation.** Engines pre-allocate every activation buffer at
//!   construction; `infer` performs no heap allocation (asserted by tests).
//! * **Explicit validation.** Model construction validates every layer's
//!   shape against its predecessor and returns [`NnError`] on mismatch;
//!   nothing panics on user data.
//! * **Auditability.** Models expose parameter counts, layer inventories
//!   and a stable content digest for the traceability chain (`safex-trace`).
//!
//! A small reference trainer ([`train`]) exists so the experiment suite can
//! produce non-trivial models without importing an external framework; it
//! is *not* part of the deployable surface.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), safex_nn::NnError> {
//! use safex_nn::model::ModelBuilder;
//! use safex_nn::engine::Engine;
//! use safex_tensor::{DetRng, Shape};
//!
//! let mut rng = DetRng::new(1);
//! let model = ModelBuilder::new(Shape::vector(4))
//!     .dense(8, &mut rng)?
//!     .relu()
//!     .dense(3, &mut rng)?
//!     .softmax()
//!     .build()?;
//! let mut engine = Engine::new(model);
//! let probs = engine.infer(&[0.1, 0.2, 0.3, 0.4])?.to_vec();
//! assert_eq!(probs.len(), 3);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
//! # Ok(())
//! # }
//! ```

pub mod ecc;
pub mod engine;
pub mod error;
pub mod fault;
pub mod harden;
pub mod init;
pub mod io;
pub mod layer;
pub mod metrics;
pub mod model;
pub mod pool;
pub mod qharden;
pub mod quant;
pub mod train;

pub use ecc::{EccCode, EccConfig, RepairOutcome};
pub use engine::{Classification, Engine};
pub use error::NnError;
pub use fault::{
    apply_weight_flips, ActivationFault, FaultInjector, FaultPlan, Injection, InjectionLog,
    InputFault, WeightFlip,
};
pub use harden::{
    crc32, crc32_words, layer_checksum, layer_checksums, ActivationGuard, CheckedClassification,
    CrcStrategy, HardenConfig, HardenedEngine, HardenedPool, HealthEvent, HealthSink,
};
pub use model::{Model, ModelBuilder};
pub use pool::{EnginePool, QEnginePool};
pub use qharden::{
    qlayer_checksum, qlayer_checksums, HardenedQEngine, HardenedQPool, QActivationGuard,
};
pub use quant::{QEngine, QModel};
pub use safex_tensor::DenseKernel;
