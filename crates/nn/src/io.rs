//! Model serialisation: the deployment artifact format.
//!
//! A frozen model is saved as a self-describing little-endian binary
//! stream and reloaded bit-exactly. The footer stores the model's
//! [`Model::digest`]; [`load_model`] recomputes the digest after
//! reconstruction and refuses corrupted artifacts — which is the
//! traceability hook: the digest in the artifact is the same value
//! `safex-trace` evidence records carry.
//!
//! Format (version 1):
//!
//! ```text
//! magic  "SXNN"            4 bytes
//! version u32              = 1
//! input shape: rank u32, then rank x u64 dims
//! layer count u32
//! per layer: kind tag u8, then kind-specific fields (see source)
//! footer: digest u64
//! ```
//!
//! All integers little-endian; all weights `f32` bit patterns. No
//! external serialisation dependency — the format is small enough to
//! audit by eye, which is the FUSA point.

use std::io::{Read, Write};

use safex_tensor::Shape;

use crate::error::NnError;
use crate::layer::{BatchNormLayer, DenseLayer, Layer};
use crate::model::{Model, ModelBuilder};

const MAGIC: &[u8; 4] = b"SXNN";
const VERSION: u32 = 1;

const TAG_DENSE: u8 = 1;
const TAG_CONV2D: u8 = 2;
const TAG_MAXPOOL: u8 = 3;
const TAG_AVGPOOL: u8 = 4;
const TAG_RELU: u8 = 5;
const TAG_LEAKY_RELU: u8 = 6;
const TAG_SOFTMAX: u8 = 7;
const TAG_FLATTEN: u8 = 8;
const TAG_BATCHNORM: u8 = 9;

/// Serialises a model.
///
/// A `&mut` reference can be passed for `writer` (the `Write` impl on
/// `&mut W` applies).
///
/// # Errors
///
/// Returns [`NnError::Serialization`] on I/O failure or on a layer kind
/// with no serialised representation.
pub fn save_model<W: Write>(model: &Model, mut writer: W) -> Result<(), NnError> {
    let mut w = Emitter(&mut writer);
    w.bytes(MAGIC)?;
    w.u32(VERSION)?;
    let dims = model.input_shape();
    w.u32(dims.rank() as u32)?;
    for &d in dims.dims() {
        w.u64(d as u64)?;
    }
    w.u32(model.len() as u32)?;
    for layer in model.layers() {
        match layer {
            Layer::Dense(d) => {
                w.u8(TAG_DENSE)?;
                w.u64(d.inputs() as u64)?;
                w.u64(d.outputs() as u64)?;
                w.f32s(d.weights())?;
                w.f32s(d.bias())?;
            }
            Layer::Conv2d(c) => {
                w.u8(TAG_CONV2D)?;
                for v in [
                    c.in_channels(),
                    c.out_channels(),
                    c.kernel(),
                    c.stride(),
                    c.padding(),
                ] {
                    w.u64(v as u64)?;
                }
                w.f32s(c.weights())?;
                w.f32s(c.bias())?;
            }
            Layer::MaxPool2d { pool, stride } => {
                w.u8(TAG_MAXPOOL)?;
                w.u64(*pool as u64)?;
                w.u64(*stride as u64)?;
            }
            Layer::AvgPool2d { pool, stride } => {
                w.u8(TAG_AVGPOOL)?;
                w.u64(*pool as u64)?;
                w.u64(*stride as u64)?;
            }
            Layer::Relu => w.u8(TAG_RELU)?,
            Layer::LeakyRelu { alpha } => {
                w.u8(TAG_LEAKY_RELU)?;
                w.f32(*alpha)?;
            }
            Layer::Softmax => w.u8(TAG_SOFTMAX)?,
            Layer::Flatten => w.u8(TAG_FLATTEN)?,
            Layer::BatchNorm(bn) => {
                w.u8(TAG_BATCHNORM)?;
                w.u64(bn.channels() as u64)?;
                w.f32s(bn.gamma())?;
                w.f32s(bn.beta())?;
                w.f32s(bn.mean())?;
                w.f32s(bn.variance())?;
                w.f32(bn.epsilon())?;
            }
            // `Layer` is #[non_exhaustive]-style extensible within the
            // crate; refuse to silently drop unknown future layers.
            #[allow(unreachable_patterns)]
            other => {
                return Err(NnError::Serialization(format!(
                    "layer {} has no serialised representation",
                    other.kind_name()
                )))
            }
        }
    }
    w.u64(model.digest())?;
    Ok(())
}

/// Deserialises a model, verifying magic, version, structure, and the
/// content digest.
///
/// A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`NnError::Serialization`] on I/O failure, a malformed
/// stream, or a digest mismatch (corruption / tampering).
pub fn load_model<R: Read>(mut reader: R) -> Result<Model, NnError> {
    let mut r = Parser(&mut reader);
    let mut magic = [0u8; 4];
    r.bytes(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::Serialization("bad magic (not a SXNN file)".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(NnError::Serialization(format!(
            "unsupported version {version}"
        )));
    }
    let rank = r.u32()? as usize;
    if rank == 0 || rank > safex_tensor::shape::MAX_RANK {
        return Err(NnError::Serialization(format!("bad input rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.usize()?);
    }
    let input_shape =
        Shape::new(&dims).map_err(|e| NnError::Serialization(format!("bad input shape: {e}")))?;
    // Bound the element count with checked arithmetic: `Shape::len` is a
    // plain product, and dims of 1e8 each are individually plausible but
    // overflow it — and would size every downstream buffer.
    let elems = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .filter(|&n| n <= MAX_INPUT_ELEMS);
    if elems.is_none() {
        return Err(NnError::Serialization(format!(
            "implausible input shape {input_shape}"
        )));
    }

    let layer_count = r.u32()? as usize;
    if layer_count == 0 || layer_count > 10_000 {
        return Err(NnError::Serialization(format!(
            "implausible layer count {layer_count}"
        )));
    }
    // Rebuild through the builder so every shape is re-validated; weights
    // are spliced in afterwards.
    let mut builder = ModelBuilder::new(input_shape);
    let mut pending: Vec<PendingParams> = Vec::new();
    for _ in 0..layer_count {
        match r.u8()? {
            TAG_DENSE => {
                let inputs = r.usize()?;
                let outputs = r.usize()?;
                let weights = r.f32s(checked_mul(inputs, outputs)?)?;
                let bias = r.f32s(outputs)?;
                // The builder will allocate `current.len() x outputs`
                // weights. Bind the stream's declared fan-in to the
                // reconstructed shape *before* that: the weights just
                // read are backed by real stream bytes, so with `inputs`
                // verified, the layer allocation is too. A lying fan-in
                // otherwise buys an allocation sized by two plausible
                // fields multiplied — an abort, not a catchable error.
                if inputs != builder.current_shape().len() {
                    return Err(NnError::Serialization(format!(
                        "dense fan-in {inputs} disagrees with reconstructed shape {}",
                        builder.current_shape()
                    )));
                }
                let mut rng = safex_tensor::DetRng::new(0);
                builder = builder.dense_with_init(outputs, crate::init::Init::Zeros, &mut rng)?;
                pending.push(PendingParams::Dense { weights, bias });
            }
            TAG_CONV2D => {
                let in_c = r.usize()?;
                let out_c = r.usize()?;
                let kernel = plausible_extent(r.usize()?, "conv kernel")?;
                let stride = plausible_extent(r.usize()?, "conv stride")?;
                let padding = plausible_extent(r.usize()?, "conv padding")?;
                let wlen = checked_mul(checked_mul(out_c, in_c)?, checked_mul(kernel, kernel)?)?;
                let weights = r.f32s(wlen)?;
                let bias = r.f32s(out_c)?;
                // Same argument as the dense fan-in: the builder sizes
                // the kernel buffer from *its* input channels, so the
                // stream's claim must match before the allocation. A
                // non-CHW current shape is left for `conv2d` itself to
                // refuse — it does so before allocating anything.
                let current = builder.current_shape();
                if current.rank() == 3 && in_c != current.dims()[0] {
                    return Err(NnError::Serialization(format!(
                        "conv input channels {in_c} disagree with reconstructed shape {current}"
                    )));
                }
                let mut rng = safex_tensor::DetRng::new(0);
                builder = builder.conv2d(out_c, kernel, stride, padding, &mut rng)?;
                pending.push(PendingParams::Conv {
                    weights,
                    bias,
                    in_c,
                });
            }
            TAG_MAXPOOL => {
                let pool = plausible_extent(r.usize()?, "pool window")?;
                let stride = plausible_extent(r.usize()?, "pool stride")?;
                builder = builder.maxpool2d(pool, stride)?;
                pending.push(PendingParams::None);
            }
            TAG_AVGPOOL => {
                let pool = plausible_extent(r.usize()?, "pool window")?;
                let stride = plausible_extent(r.usize()?, "pool stride")?;
                builder = builder.avgpool2d(pool, stride)?;
                pending.push(PendingParams::None);
            }
            TAG_RELU => {
                builder = builder.relu();
                pending.push(PendingParams::None);
            }
            TAG_LEAKY_RELU => {
                let alpha = r.f32()?;
                builder = builder.leaky_relu(alpha);
                pending.push(PendingParams::None);
            }
            TAG_SOFTMAX => {
                builder = builder.softmax();
                pending.push(PendingParams::None);
            }
            TAG_FLATTEN => {
                builder = builder.flatten();
                pending.push(PendingParams::None);
            }
            TAG_BATCHNORM => {
                let n = r.usize()?;
                if n == 0 || n > 1_000_000 {
                    return Err(NnError::Serialization(format!(
                        "implausible batchnorm width {n}"
                    )));
                }
                let gamma = r.f32s(n)?;
                let beta = r.f32s(n)?;
                let mean = r.f32s(n)?;
                let var = r.f32s(n)?;
                let eps = r.f32()?;
                let bn = BatchNormLayer::new(gamma, beta, mean, var, eps)?;
                builder = builder.batchnorm(bn)?;
                pending.push(PendingParams::None);
            }
            tag => {
                return Err(NnError::Serialization(format!("unknown layer tag {tag}")));
            }
        }
    }
    let mut model = builder.build()?;
    // Splice the weights.
    for (layer, params) in model.layers_mut().iter_mut().zip(pending) {
        match (layer, params) {
            (Layer::Dense(d), PendingParams::Dense { weights, bias }) => {
                splice(d, weights, bias)?;
            }
            (
                Layer::Conv2d(c),
                PendingParams::Conv {
                    weights,
                    bias,
                    in_c,
                },
            ) => {
                if c.in_channels() != in_c {
                    return Err(NnError::Serialization(
                        "conv input channels disagree with reconstructed shape".into(),
                    ));
                }
                if c.weights().len() != weights.len() || c.bias().len() != bias.len() {
                    return Err(NnError::Serialization(
                        "conv parameter lengths disagree with reconstructed shape".into(),
                    ));
                }
                c.weights_mut().copy_from_slice(&weights);
                c.bias_mut().copy_from_slice(&bias);
            }
            (_, PendingParams::None) => {}
            _ => {
                return Err(NnError::Serialization(
                    "layer/parameter kind mismatch".into(),
                ))
            }
        }
    }
    // Verify the digest footer.
    let stored = r.u64()?;
    let actual = model.digest();
    if stored != actual {
        return Err(NnError::Serialization(format!(
            "digest mismatch: stored {stored:016x}, recomputed {actual:016x} (corrupt artifact)"
        )));
    }
    Ok(model)
}

fn splice(d: &mut DenseLayer, weights: Vec<f32>, bias: Vec<f32>) -> Result<(), NnError> {
    if d.weights().len() != weights.len() || d.bias().len() != bias.len() {
        return Err(NnError::Serialization(
            "dense parameter lengths disagree with reconstructed shape".into(),
        ));
    }
    d.weights_mut().copy_from_slice(&weights);
    d.bias_mut().copy_from_slice(&bias);
    Ok(())
}

enum PendingParams {
    None,
    Dense {
        weights: Vec<f32>,
        bias: Vec<f32>,
    },
    Conv {
        weights: Vec<f32>,
        bias: Vec<f32>,
        in_c: usize,
    },
}

fn checked_mul(a: usize, b: usize) -> Result<usize, NnError> {
    a.checked_mul(b)
        .filter(|&n| n <= 100_000_000)
        .ok_or_else(|| NnError::Serialization("parameter count overflow".into()))
}

/// Largest input tensor a deployment artifact may declare (elements).
/// Generous for embedded perception inputs, small enough that shape
/// products stay far from overflow.
const MAX_INPUT_ELEMS: usize = 16_777_216;

/// Largest spatial extent (kernel, stride, padding, pool window) a
/// stream may declare. Keeps the shape arithmetic the builder performs
/// on these fields inside checked territory.
fn plausible_extent(v: usize, what: &str) -> Result<usize, NnError> {
    if v > 65_536 {
        return Err(NnError::Serialization(format!("implausible {what} {v}")));
    }
    Ok(v)
}

struct Emitter<'a, W: Write>(&'a mut W);

impl<W: Write> Emitter<'_, W> {
    fn bytes(&mut self, b: &[u8]) -> Result<(), NnError> {
        self.0
            .write_all(b)
            .map_err(|e| NnError::Serialization(format!("write failed: {e}")))
    }
    fn u8(&mut self, v: u8) -> Result<(), NnError> {
        self.bytes(&[v])
    }
    fn u32(&mut self, v: u32) -> Result<(), NnError> {
        self.bytes(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> Result<(), NnError> {
        self.bytes(&v.to_le_bytes())
    }
    fn f32(&mut self, v: f32) -> Result<(), NnError> {
        self.bytes(&v.to_bits().to_le_bytes())
    }
    fn f32s(&mut self, vs: &[f32]) -> Result<(), NnError> {
        self.u64(vs.len() as u64)?;
        for &v in vs {
            self.f32(v)?;
        }
        Ok(())
    }
}

struct Parser<'a, R: Read>(&'a mut R);

impl<R: Read> Parser<'_, R> {
    fn bytes(&mut self, buf: &mut [u8]) -> Result<(), NnError> {
        self.0
            .read_exact(buf)
            .map_err(|e| NnError::Serialization(format!("read failed: {e}")))
    }
    fn u8(&mut self) -> Result<u8, NnError> {
        let mut b = [0u8; 1];
        self.bytes(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32, NnError> {
        let mut b = [0u8; 4];
        self.bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, NnError> {
        let mut b = [0u8; 8];
        self.bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn usize(&mut self) -> Result<usize, NnError> {
        let v = self.u64()?;
        usize::try_from(v)
            .ok()
            .filter(|&n| n <= 100_000_000)
            .ok_or_else(|| NnError::Serialization(format!("implausible size field {v}")))
    }
    fn f32(&mut self) -> Result<f32, NnError> {
        let mut b = [0u8; 4];
        self.bytes(&mut b)?;
        Ok(f32::from_bits(u32::from_le_bytes(b)))
    }
    fn f32s(&mut self, expected: usize) -> Result<Vec<f32>, NnError> {
        let len = self.usize()?;
        if len != expected {
            return Err(NnError::Serialization(format!(
                "parameter vector length {len}, expected {expected}"
            )));
        }
        // Cap the upfront reservation: `len` comes from an untrusted
        // header, and a lying count field must not buy a ~400 MB
        // allocation before the stream inevitably hits EOF. Growth past
        // the cap is amortised doubling, paid only by real data.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    fn model() -> Model {
        let mut rng = DetRng::new(5);
        ModelBuilder::new(Shape::chw(1, 8, 8))
            .conv2d(3, 3, 1, 1, &mut rng)
            .unwrap()
            .batchnorm(BatchNormLayer::identity(3).unwrap())
            .unwrap()
            .relu()
            .maxpool2d(2, 2)
            .unwrap()
            .avgpool2d(2, 2)
            .unwrap()
            .flatten()
            .dense(5, &mut rng)
            .unwrap()
            .leaky_relu(0.1)
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_bit_exact() {
        let original = model();
        let mut buf = Vec::new();
        save_model(&original, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        assert_eq!(loaded, original);
        assert_eq!(loaded.digest(), original.digest());
    }

    #[test]
    fn loaded_model_infers_identically() {
        let original = model();
        let mut buf = Vec::new();
        save_model(&original, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        let mut e1 = crate::Engine::new(original);
        let mut e2 = crate::Engine::new(loaded);
        let input: Vec<f32> = (0..64).map(|i| (i as f32) / 64.0).collect();
        assert_eq!(e1.infer(&input).unwrap(), e2.infer(&input).unwrap());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        save_model(&model(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            load_model(buf.as_slice()),
            Err(NnError::Serialization(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        save_model(&model(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(load_model(buf.as_slice()).is_err());
    }

    #[test]
    fn weight_corruption_detected_by_digest() {
        let mut buf = Vec::new();
        save_model(&model(), &mut buf).unwrap();
        // Flip a byte in the middle of the weight payload.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let err = load_model(buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("digest")
                || msg.contains("length")
                || msg.contains("tag")
                || msg.contains("implausible")
                || msg.contains("batchnorm")
                || msg.contains("shape")
                || msg.contains("incompatible"),
            "unexpected: {msg}"
        );
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        save_model(&model(), &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(load_model(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_stream_rejected() {
        assert!(load_model(&[][..]).is_err());
    }

    #[test]
    fn footer_tamper_detected() {
        let mut buf = Vec::new();
        save_model(&model(), &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = load_model(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("digest"));
    }
}
