//! Deterministic weight initialisation schemes.
//!
//! All initialisers draw from an explicit [`DetRng`], so a model built
//! twice from the same seed has bit-identical parameters — the starting
//! point of the end-to-end reproducibility chain that `safex-trace`
//! certifies.

use safex_tensor::DetRng;

/// Weight initialisation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// Suited to linear/sigmoid/softmax layers.
    #[default]
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`. Suited to ReLU layers.
    HeNormal,
    /// All zeros (used for biases and for tests that need known weights).
    Zeros,
    /// Uniform in a caller-specified symmetric range is not offered;
    /// constant fill is, mainly for tests and masking layers.
    Constant(ConstantFill),
}

/// A constant fill value for [`Init::Constant`].
///
/// Wrapped in a newtype so `Init` can remain `Eq`/`Hash` (raw `f32` is
/// neither); the value is stored as bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstantFill(u32);

impl ConstantFill {
    /// Creates a constant fill from an `f32` value.
    pub fn new(value: f32) -> Self {
        ConstantFill(value.to_bits())
    }

    /// The fill value.
    pub fn value(self) -> f32 {
        f32::from_bits(self.0)
    }
}

impl Init {
    /// Fills `weights` according to the scheme, given the layer fan-in and
    /// fan-out.
    ///
    /// Zero fan values are treated as 1 to keep the computation total; a
    /// real model can never produce them because `Shape` forbids zero
    /// dimensions.
    pub fn fill(self, weights: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut DetRng) {
        let fan_in = fan_in.max(1);
        let fan_out = fan_out.max(1);
        match self {
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
                for w in weights {
                    *w = rng.range_f64(-a, a) as f32;
                }
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f64).sqrt();
                for w in weights {
                    *w = rng.gaussian(0.0, std) as f32;
                }
            }
            Init::Zeros => {
                for w in weights {
                    *w = 0.0;
                }
            }
            Init::Constant(c) => {
                for w in weights {
                    *w = c.value();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = DetRng::new(1);
        let mut w = vec![0.0f32; 1000];
        Init::XavierUniform.fill(&mut w, 100, 50, &mut rng);
        let a = (6.0f64 / 150.0).sqrt() as f32;
        assert!(w.iter().all(|&v| v > -a && v < a));
        // Not degenerate: spread over the range.
        assert!(w.iter().any(|&v| v > a * 0.5));
        assert!(w.iter().any(|&v| v < -a * 0.5));
    }

    #[test]
    fn he_normal_std() {
        let mut rng = DetRng::new(2);
        let mut w = vec![0.0f32; 20000];
        Init::HeNormal.fill(&mut w, 8, 4, &mut rng);
        let mean = w.iter().map(|&v| v as f64).sum::<f64>() / w.len() as f64;
        let var = w.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}"); // 2/8 = 0.25
    }

    #[test]
    fn zeros_and_constant() {
        let mut rng = DetRng::new(3);
        let mut w = vec![9.0f32; 4];
        Init::Zeros.fill(&mut w, 1, 1, &mut rng);
        assert_eq!(w, vec![0.0; 4]);
        Init::Constant(ConstantFill::new(1.5)).fill(&mut w, 1, 1, &mut rng);
        assert_eq!(w, vec![1.5; 4]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        Init::HeNormal.fill(&mut a, 8, 8, &mut DetRng::new(7));
        Init::HeNormal.fill(&mut b, 8, 8, &mut DetRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_fans_are_total() {
        let mut rng = DetRng::new(4);
        let mut w = vec![0.0f32; 4];
        Init::XavierUniform.fill(&mut w, 0, 0, &mut rng);
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn default_is_xavier() {
        assert_eq!(Init::default(), Init::XavierUniform);
    }
}
