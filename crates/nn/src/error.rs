//! Error type for model construction, inference, and training.

use std::error::Error;
use std::fmt;

use safex_tensor::{Shape, TensorError};

/// Errors produced by the `safex-nn` library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor-level failure (shape mismatch, bad kernel dimensions, ...).
    Tensor(TensorError),
    /// A layer cannot accept the output shape of its predecessor.
    LayerIncompatible {
        /// Zero-based index of the offending layer.
        layer: usize,
        /// Human-readable description of the incompatibility.
        reason: String,
    },
    /// The input supplied to inference does not match the model's input
    /// shape.
    InputShape {
        /// Shape the model expects.
        expected: Shape,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// A model with no layers was built or executed.
    EmptyModel,
    /// Training-specific failure (bad hyperparameter, label out of range,
    /// non-finite loss).
    Training(String),
    /// Quantisation failed (e.g. weights exceed the representable range so
    /// badly that the calibrated scale underflows).
    Quantisation(String),
    /// Model (de)serialisation failed: I/O error, malformed stream, or a
    /// content-digest mismatch.
    Serialization(String),
    /// Engine-pool construction or batch-dispatch failed (zero workers,
    /// mismatched batch geometry, ...).
    Pool(String),
    /// Fault-injection or hardening configuration failed (bad probability,
    /// bit count out of range, no injectable parameters, ...).
    Fault(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::LayerIncompatible { layer, reason } => {
                write!(f, "layer {layer} incompatible: {reason}")
            }
            NnError::InputShape { expected, actual } => write!(
                f,
                "input has {actual} elements but model expects shape {expected}"
            ),
            NnError::EmptyModel => write!(f, "model has no layers"),
            NnError::Training(msg) => write!(f, "training error: {msg}"),
            NnError::Quantisation(msg) => write!(f, "quantisation error: {msg}"),
            NnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NnError::Pool(msg) => write!(f, "engine pool error: {msg}"),
            NnError::Fault(msg) => write!(f, "fault/hardening error: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::EmptyModel;
        assert_eq!(e.to_string(), "model has no layers");
        let e = NnError::InputShape {
            expected: Shape::vector(4),
            actual: 3,
        };
        assert!(e.to_string().contains("3 elements"));
    }

    #[test]
    fn source_chains_tensor_error() {
        let e = NnError::from(TensorError::EmptyInput);
        assert!(e.source().is_some());
        assert!(NnError::EmptyModel.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
