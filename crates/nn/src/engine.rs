//! Statically-allocated deterministic inference engine.

use safex_tensor::ops::{self, DenseKernel};
use safex_tensor::{Shape, Tensor, WeightDigest};

use crate::error::NnError;
use crate::layer::Layer;
use crate::model::Model;

/// Executes a frozen [`Model`] with zero per-inference heap allocation.
///
/// The engine owns two ping-pong activation buffers sized at construction
/// to the model's largest activation ([`Model::max_activation_len`]).
/// [`Engine::infer`] copies the input into one buffer and alternates
/// between the two as it walks the layers, so no allocation happens on the
/// hot path — a hard requirement in FUSA coding standards.
///
/// Determinism: kernels come from [`safex_tensor::ops`], which fix both the
/// accumulation order and the accumulator width. Two calls with the same
/// input produce bit-identical outputs (asserted by this module's tests and
/// measured by experiment E5).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_nn::NnError> {
/// use safex_nn::{Engine, model::ModelBuilder};
/// use safex_tensor::{DetRng, Shape};
///
/// let mut rng = DetRng::new(3);
/// let model = ModelBuilder::new(Shape::vector(2))
///     .dense(4, &mut rng)?
///     .relu()
///     .dense(2, &mut rng)?
///     .softmax()
///     .build()?;
/// let mut engine = Engine::new(model);
/// let out = engine.infer(&[1.0, -1.0])?;
/// assert_eq!(out.len(), 2);
/// # Ok(())
/// # }
/// ```
/// A named classification result: the argmax class and its score.
///
/// Replaces the old anonymous `(usize, f32)` tuple so call sites say
/// `c.class` / `c.confidence` instead of `.0` / `.1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// Predicted class index (argmax over the final activation).
    pub class: usize,
    /// Score of the predicted class (softmax probability when the model
    /// ends in a softmax layer, raw activation otherwise).
    pub confidence: f32,
}

#[derive(Debug, Clone)]
pub struct Engine {
    model: Model,
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
    /// Batch-major ping-pong arenas for [`Engine::infer_batch`] /
    /// [`Engine::classify_batch`]: `batch × max_activation_len` each,
    /// allocated on first batch use, grown on demand, and reused across
    /// layers *and* across calls.
    arena_a: Vec<f32>,
    arena_b: Vec<f32>,
    inferences: u64,
    kernel: DenseKernel,
}

impl Engine {
    /// Creates an engine, pre-allocating all activation buffers.
    ///
    /// Uses [`DenseKernel::Exact`] — bit-compatible with every previously
    /// recorded result. See [`Engine::with_kernel`] for the opt-in fast
    /// kernel.
    pub fn new(model: Model) -> Self {
        Engine::with_kernel(model, DenseKernel::Exact)
    }

    /// Creates an engine with an explicit dense-kernel strategy.
    ///
    /// [`DenseKernel::Chunked`] is deterministic (run-to-run and
    /// pool-worker-count bit-exact) but may differ from `Exact` in the
    /// last bit; it trades the E5 baseline identity for a faster inner
    /// product.
    pub fn with_kernel(model: Model, kernel: DenseKernel) -> Self {
        let cap = model.max_activation_len();
        Engine {
            model,
            buf_a: vec![0.0; cap],
            buf_b: vec![0.0; cap],
            arena_a: Vec::new(),
            arena_b: Vec::new(),
            inferences: 0,
            kernel,
        }
    }

    /// The dense-kernel strategy this engine executes with.
    pub fn kernel(&self) -> DenseKernel {
        self.kernel
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable model access (fault-injection experiments re-use a built
    /// engine after flipping weights).
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Consumes the engine and returns the model.
    pub fn into_model(self) -> Model {
        self.model
    }

    /// Number of completed inferences since construction.
    pub fn inference_count(&self) -> u64 {
        self.inferences
    }

    /// Runs the model on `input`, returning the final activation.
    ///
    /// No heap allocation occurs in this method.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if `input.len()` differs from the
    /// model's input element count.
    pub fn infer(&mut self, input: &[f32]) -> Result<&[f32], NnError> {
        let expected = self.model.input_shape();
        if input.len() != expected.len() {
            return Err(NnError::InputShape {
                expected,
                actual: input.len(),
            });
        }
        self.buf_a[..input.len()].copy_from_slice(input);
        let mut cur_shape = expected;
        let mut cur_in_a = true;
        for (i, layer) in self.model.layers().iter().enumerate() {
            let out_shape = self
                .model
                .layer_output_shape(i)
                .expect("layer index in range");
            let (src, dst) = if cur_in_a {
                (&self.buf_a, &mut self.buf_b)
            } else {
                (&self.buf_b, &mut self.buf_a)
            };
            run_layer(
                layer,
                &src[..cur_shape.len()],
                &mut dst[..out_shape.len()],
                &cur_shape,
                self.kernel,
            )?;
            cur_shape = out_shape;
            cur_in_a = !cur_in_a;
        }
        self.inferences += 1;
        let out = if cur_in_a { &self.buf_a } else { &self.buf_b };
        Ok(&out[..cur_shape.len()])
    }

    /// Runs the model and returns every intermediate activation as an
    /// owned [`Tensor`] (input excluded, one entry per layer).
    ///
    /// This *does* allocate; it exists for explainers and supervisors that
    /// need to inspect internal activations, not for the deployed hot path.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer_traced(&mut self, input: &[f32]) -> Result<Vec<Tensor>, NnError> {
        let expected = self.model.input_shape();
        if input.len() != expected.len() {
            return Err(NnError::InputShape {
                expected,
                actual: input.len(),
            });
        }
        // Same ping-pong discipline as `infer`: the only per-layer
        // allocation is the owned `Tensor` each caller actually asked for
        // (the previous version also built a scratch `Vec` per layer and
        // cloned it into the tensor).
        self.buf_a[..input.len()].copy_from_slice(input);
        let mut activations = Vec::with_capacity(self.model.len());
        let mut cur_shape = expected;
        let mut cur_in_a = true;
        for (i, layer) in self.model.layers().iter().enumerate() {
            let out_shape = self
                .model
                .layer_output_shape(i)
                .expect("layer index in range");
            let (src, dst) = if cur_in_a {
                (&self.buf_a, &mut self.buf_b)
            } else {
                (&self.buf_b, &mut self.buf_a)
            };
            let dst = &mut dst[..out_shape.len()];
            run_layer(layer, &src[..cur_shape.len()], dst, &cur_shape, self.kernel)?;
            activations.push(Tensor::from_vec(out_shape, dst.to_vec())?);
            cur_shape = out_shape;
            cur_in_a = !cur_in_a;
        }
        self.inferences += 1;
        Ok(activations)
    }

    /// Convenience: runs inference and returns the argmax
    /// [`Classification`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify(&mut self, input: &[f32]) -> Result<Classification, NnError> {
        let out = self.infer(input)?;
        Ok(argmax(out))
    }

    /// Runs the whole batch through the layer stack inside the
    /// batch-major arena, leaving the final activations in place.
    ///
    /// Returns `(output_len, output_in_arena_a)`; item `i`'s output lives
    /// at `arena[i * max_activation_len ..][..output_len]`. Dense layers
    /// run the batched kernel (each weight row streamed once per batch);
    /// every other layer runs per item over its arena slot. Results are
    /// bit-identical to per-item [`Engine::infer`].
    fn run_batch<I: AsRef<[f32]>>(&mut self, inputs: &[I]) -> Result<(usize, bool), NnError> {
        let expected = self.model.input_shape();
        let n = inputs.len();
        let stride = self.model.max_activation_len();
        let need = n * stride;
        if self.arena_a.len() < need {
            self.arena_a.resize(need, 0.0);
            self.arena_b.resize(need, 0.0);
        }
        for (item, input) in inputs.iter().enumerate() {
            let input = input.as_ref();
            if input.len() != expected.len() {
                return Err(NnError::InputShape {
                    expected: self.model.input_shape(),
                    actual: input.len(),
                });
            }
            self.arena_a[item * stride..item * stride + input.len()].copy_from_slice(input);
        }
        let mut cur_shape = expected;
        let mut cur_in_a = true;
        for (i, layer) in self.model.layers().iter().enumerate() {
            let out_shape = self
                .model
                .layer_output_shape(i)
                .expect("layer index in range");
            let (src, dst) = if cur_in_a {
                (&self.arena_a, &mut self.arena_b)
            } else {
                (&self.arena_b, &mut self.arena_a)
            };
            if let Layer::Dense(d) = layer {
                ops::dense_batch_into_with(
                    self.kernel,
                    &d.weights,
                    &d.bias,
                    src,
                    dst,
                    d.inputs,
                    d.outputs,
                    n,
                    stride,
                    stride,
                )?;
            } else {
                for item in 0..n {
                    run_layer(
                        layer,
                        &src[item * stride..item * stride + cur_shape.len()],
                        &mut dst[item * stride..item * stride + out_shape.len()],
                        &cur_shape,
                        self.kernel,
                    )?;
                }
            }
            cur_shape = out_shape;
            cur_in_a = !cur_in_a;
        }
        self.inferences += n as u64;
        Ok((cur_shape.len(), cur_in_a))
    }

    /// Runs the model over a batch, returning one owned output per item.
    ///
    /// One arena (re)allocation per call at most — activations for the
    /// whole batch live in two ping-pong slabs reused across layers and
    /// across calls — and dense weight rows are streamed once per batch
    /// instead of once per item. Outputs are bit-identical to calling
    /// [`Engine::infer`] on each item.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any item has the wrong length;
    /// the whole batch fails.
    pub fn infer_batch<I: AsRef<[f32]>>(&mut self, inputs: &[I]) -> Result<Vec<Vec<f32>>, NnError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let (out_len, in_a) = self.run_batch(inputs)?;
        let stride = self.model.max_activation_len();
        let slab = if in_a { &self.arena_a } else { &self.arena_b };
        Ok((0..inputs.len())
            .map(|item| slab[item * stride..item * stride + out_len].to_vec())
            .collect())
    }

    /// Runs the model over a batch, returning one [`Classification`] per
    /// item. The argmax is taken straight from the arena — no per-item
    /// copy of the output activation is made.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any item has the wrong length.
    pub fn classify_batch<I: AsRef<[f32]>>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Classification>, NnError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let (out_len, in_a) = self.run_batch(inputs)?;
        let stride = self.model.max_activation_len();
        let slab = if in_a { &self.arena_a } else { &self.arena_b };
        Ok((0..inputs.len())
            .map(|item| argmax(&slab[item * stride..item * stride + out_len]))
            .collect())
    }
}

/// Argmax over a final activation, ties broken toward the lower index.
pub(crate) fn argmax(out: &[f32]) -> Classification {
    let mut best = Classification {
        class: 0,
        confidence: f32::NEG_INFINITY,
    };
    for (i, &v) in out.iter().enumerate() {
        if v > best.confidence {
            best = Classification {
                class: i,
                confidence: v,
            };
        }
    }
    best
}

/// Executes a single layer from `src` into `dst`.
pub(crate) fn run_layer(
    layer: &Layer,
    src: &[f32],
    dst: &mut [f32],
    in_shape: &Shape,
    kernel: DenseKernel,
) -> Result<(), NnError> {
    match layer {
        Layer::Dense(d) => {
            ops::dense_into_with(kernel, &d.weights, &d.bias, src, dst, d.inputs, d.outputs)?;
        }
        Layer::Conv2d(c) => {
            let dims = in_shape.dims();
            ops::conv2d_into(
                src,
                &c.weights,
                &c.bias,
                dst,
                dims[0],
                dims[1],
                dims[2],
                c.out_channels,
                c.kernel,
                c.kernel,
                c.stride,
                c.padding,
            )?;
        }
        Layer::MaxPool2d { pool, stride } => {
            let dims = in_shape.dims();
            ops::maxpool2d_into(src, dst, dims[0], dims[1], dims[2], *pool, *stride)?;
        }
        Layer::AvgPool2d { pool, stride } => {
            let dims = in_shape.dims();
            ops::avgpool2d_into(src, dst, dims[0], dims[1], dims[2], *pool, *stride)?;
        }
        Layer::Relu => ops::relu_into(src, dst)?,
        Layer::LeakyRelu { alpha } => ops::leaky_relu_into(src, dst, *alpha)?,
        Layer::Softmax => ops::softmax_into(src, dst)?,
        Layer::Flatten => dst.copy_from_slice(src),
        Layer::BatchNorm(bn) => {
            let scale_shift = bn.scale_shift();
            if in_shape.rank() == 3 {
                let dims = in_shape.dims();
                let plane = dims[1] * dims[2];
                for (c, &(scale, shift)) in scale_shift.iter().enumerate() {
                    for i in 0..plane {
                        dst[c * plane + i] = scale * src[c * plane + i] + shift;
                    }
                }
            } else {
                for ((d, &s), &(scale, shift)) in dst.iter_mut().zip(src).zip(scale_shift) {
                    *d = scale * s + shift;
                }
            }
        }
    }
    Ok(())
}

/// Executes a single layer like [`run_layer`], but through the fused
/// verify-on-read kernels: parametric layers (dense, conv) return the
/// [`WeightDigest`] their sweep accumulated over weights-then-bias, all
/// other layers run the plain kernel and return `None`. Outputs are
/// bit-identical to [`run_layer`].
pub(crate) fn run_layer_digest(
    layer: &Layer,
    src: &[f32],
    dst: &mut [f32],
    in_shape: &Shape,
    kernel: DenseKernel,
) -> Result<Option<WeightDigest>, NnError> {
    match layer {
        Layer::Dense(d) => Ok(Some(ops::dense_into_digest(
            kernel, &d.weights, &d.bias, src, dst, d.inputs, d.outputs,
        )?)),
        Layer::Conv2d(c) => {
            let dims = in_shape.dims();
            Ok(Some(ops::conv2d_into_digest(
                src,
                &c.weights,
                &c.bias,
                dst,
                dims[0],
                dims[1],
                dims[2],
                c.out_channels,
                c.kernel,
                c.kernel,
                c.stride,
                c.padding,
            )?))
        }
        _ => {
            run_layer(layer, src, dst, in_shape, kernel)?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{ConstantFill, Init};
    use crate::model::ModelBuilder;
    use safex_tensor::DetRng;

    fn small_mlp() -> Model {
        let mut rng = DetRng::new(42);
        ModelBuilder::new(Shape::vector(3))
            .dense(5, &mut rng)
            .unwrap()
            .relu()
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn infer_produces_probabilities() {
        let mut e = Engine::new(small_mlp());
        let out = e.infer(&[0.5, -0.5, 1.0]).unwrap().to_vec();
        assert_eq!(out.len(), 2);
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn infer_rejects_wrong_input_len() {
        let mut e = Engine::new(small_mlp());
        assert!(matches!(
            e.infer(&[1.0, 2.0]),
            Err(NnError::InputShape { .. })
        ));
    }

    #[test]
    fn infer_bit_identical_across_runs() {
        let mut e = Engine::new(small_mlp());
        let input = [0.25, -0.75, 0.125];
        let a = e.infer(&input).unwrap().to_vec();
        for _ in 0..10 {
            let b = e.infer(&input).unwrap().to_vec();
            assert_eq!(a, b, "engine output must be bit-identical");
        }
    }

    #[test]
    fn two_engines_same_model_agree() {
        let m = small_mlp();
        let mut e1 = Engine::new(m.clone());
        let mut e2 = Engine::new(m);
        let input = [1.0, 2.0, 3.0];
        assert_eq!(e1.infer(&input).unwrap(), e2.infer(&input).unwrap());
    }

    #[test]
    fn known_weights_give_known_output() {
        let mut rng = DetRng::new(0);
        // Identity-ish: dense with constant weights 1, inputs sum through.
        let m = ModelBuilder::new(Shape::vector(2))
            .dense_with_init(1, Init::Constant(ConstantFill::new(1.0)), &mut rng)
            .unwrap()
            .build()
            .unwrap();
        let mut e = Engine::new(m);
        assert_eq!(e.infer(&[2.0, 3.0]).unwrap(), &[5.0]);
    }

    #[test]
    fn convnet_end_to_end() {
        let mut rng = DetRng::new(9);
        let m = ModelBuilder::new(Shape::chw(1, 8, 8))
            .conv2d(4, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .maxpool2d(2, 2)
            .unwrap()
            .flatten()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let mut e = Engine::new(m);
        let input: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
        let out = e.infer(&input).unwrap();
        assert_eq!(out.len(), 3);
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn infer_traced_matches_infer() {
        let m = small_mlp();
        let mut e = Engine::new(m);
        let input = [0.1, 0.2, 0.3];
        let traced = e.infer_traced(&input).unwrap();
        let direct = e.infer(&input).unwrap();
        assert_eq!(traced.len(), 4);
        assert_eq!(traced.last().unwrap().as_slice(), direct);
        // First activation has the dense layer's output shape.
        assert_eq!(traced[0].shape().dims(), &[5]);
    }

    #[test]
    fn chunked_kernel_is_deterministic_and_tracks_exact() {
        let m = small_mlp();
        let mut exact = Engine::new(m.clone());
        let mut fast = Engine::with_kernel(m, DenseKernel::Chunked);
        assert_eq!(fast.kernel(), DenseKernel::Chunked);
        let input = [0.25, -0.75, 0.125];
        let e = exact.infer(&input).unwrap().to_vec();
        let f = fast.infer(&input).unwrap().to_vec();
        // Same model, same input: the kernels agree to float tolerance
        // (bit-identity between the two kernels is NOT claimed)...
        for (a, b) in e.iter().zip(&f) {
            assert!((a - b).abs() < 1e-5, "exact {a} vs chunked {b}");
        }
        // ...and the chunked kernel is bit-identical run to run.
        for _ in 0..10 {
            assert_eq!(fast.infer(&input).unwrap(), f.as_slice());
        }
    }

    #[test]
    fn classify_returns_argmax() {
        let mut rng = DetRng::new(0);
        let mut m = ModelBuilder::new(Shape::vector(2))
            .dense_with_init(3, Init::Zeros, &mut rng)
            .unwrap()
            .build()
            .unwrap();
        if let Layer::Dense(d) = &mut m.layers_mut()[0] {
            d.bias_mut().copy_from_slice(&[0.0, 5.0, 1.0]);
        }
        let mut e = Engine::new(m);
        let c = e.classify(&[0.0, 0.0]).unwrap();
        assert_eq!(c.class, 1);
        assert_eq!(c.confidence, 5.0);
    }

    #[test]
    fn inference_counter() {
        let mut e = Engine::new(small_mlp());
        assert_eq!(e.inference_count(), 0);
        e.infer(&[0.0; 3]).unwrap();
        e.infer_traced(&[0.0; 3]).unwrap();
        assert_eq!(e.inference_count(), 2);
        // Failed inference does not count.
        let _ = e.infer(&[0.0; 2]);
        assert_eq!(e.inference_count(), 2);
    }

    #[test]
    fn infer_batch_bit_identical_to_per_item() {
        let m = small_mlp();
        for kernel in [DenseKernel::Exact, DenseKernel::Chunked] {
            let mut solo = Engine::with_kernel(m.clone(), kernel);
            let mut batched = Engine::with_kernel(m.clone(), kernel);
            let inputs: Vec<Vec<f32>> = (0..7)
                .map(|i| vec![i as f32 * 0.3, -0.5 + i as f32 * 0.1, 0.25])
                .collect();
            let outs = batched.infer_batch(&inputs).unwrap();
            assert_eq!(outs.len(), inputs.len());
            for (input, out) in inputs.iter().zip(&outs) {
                assert_eq!(
                    solo.infer(input).unwrap(),
                    out.as_slice(),
                    "{kernel:?}: arena batch must match per-item inference"
                );
            }
            assert_eq!(batched.inference_count(), inputs.len() as u64);
            // Re-running with a different batch size reuses the arena.
            let again = batched.infer_batch(&inputs[..3]).unwrap();
            assert_eq!(again.as_slice(), &outs[..3]);
        }
    }

    #[test]
    fn classify_batch_reads_straight_from_arena() {
        let m = small_mlp();
        let mut solo = Engine::new(m.clone());
        let mut batched = Engine::new(m);
        let inputs: Vec<Vec<f32>> = (0..16)
            .map(|i| vec![(i as f32).sin(), (i as f32).cos(), i as f32 * 0.05])
            .collect();
        let classes = batched.classify_batch(&inputs).unwrap();
        for (input, c) in inputs.iter().zip(&classes) {
            assert_eq!(solo.classify(input).unwrap(), *c);
        }
        assert!(batched.classify_batch::<Vec<f32>>(&[]).unwrap().is_empty());
    }

    #[test]
    fn infer_batch_on_convnet_matches_per_item() {
        let mut rng = DetRng::new(9);
        let m = ModelBuilder::new(Shape::chw(1, 8, 8))
            .conv2d(4, 3, 1, 1, &mut rng)
            .unwrap()
            .relu()
            .maxpool2d(2, 2)
            .unwrap()
            .flatten()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let mut solo = Engine::new(m.clone());
        let mut batched = Engine::new(m);
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|s| (0..64).map(|i| ((i + s * 7) as f32 / 64.0).sin()).collect())
            .collect();
        let outs = batched.infer_batch(&inputs).unwrap();
        for (input, out) in inputs.iter().zip(&outs) {
            assert_eq!(solo.infer(input).unwrap(), out.as_slice());
        }
    }

    #[test]
    fn infer_batch_rejects_any_bad_item() {
        let mut e = Engine::new(small_mlp());
        let inputs = [vec![0.0f32; 3], vec![0.0f32; 2]];
        assert!(matches!(
            e.infer_batch(&inputs),
            Err(NnError::InputShape { .. })
        ));
    }

    #[test]
    fn run_layer_digest_matches_plain_layer_and_golden_crc() {
        use crate::harden::layer_checksum;
        let m = small_mlp();
        let dense = &m.layers()[0];
        let input = [0.5f32, -0.25, 0.75];
        let mut plain = [0.0f32; 5];
        let mut fused = [0.0f32; 5];
        let shape = Shape::vector(3);
        run_layer(dense, &input, &mut plain, &shape, DenseKernel::Exact).unwrap();
        let digest = run_layer_digest(dense, &input, &mut fused, &shape, DenseKernel::Exact)
            .unwrap()
            .expect("dense layer is parametric");
        assert_eq!(fused, plain);
        assert_eq!(Some(digest.crc), layer_checksum(dense));
        // Non-parametric layers return no digest.
        let mut relu_out = [0.0f32; 5];
        assert!(run_layer_digest(
            &Layer::Relu,
            &plain,
            &mut relu_out,
            &Shape::vector(5),
            DenseKernel::Exact
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn flatten_passthrough() {
        let mut rng = DetRng::new(1);
        let m = ModelBuilder::new(Shape::chw(1, 2, 2))
            .flatten()
            .dense_with_init(4, Init::Constant(ConstantFill::new(0.0)), &mut rng)
            .unwrap()
            .build()
            .unwrap();
        let mut e = Engine::new(m);
        let out = e.infer(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(out, &[0.0; 4]);
    }
}
