//! Quantised (Q16.16 fixed-point) model representation and engine.
//!
//! The quantised path is the strongest determinism level the library
//! offers: every operation is integer arithmetic, so results are bit-exact
//! not merely across runs but across *platforms and compilers* — IEEE-754
//! implementation latitude (FMA contraction, extended intermediate
//! precision) cannot perturb them. This is the deployment configuration
//! pillar 3 of the paper argues for, and experiment E5 measures the
//! accuracy cost of it.

use safex_tensor::fixed::Q16_16;
use safex_tensor::ops;
use safex_tensor::{Shape, WeightDigest};

use crate::engine::Classification;
use crate::error::NnError;
use crate::layer::Layer;
use crate::model::Model;

/// A layer with Q16.16 parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QLayer {
    /// Fully-connected layer.
    Dense {
        /// Row-major `outputs x inputs` weights.
        weights: Vec<Q16_16>,
        /// Bias vector.
        bias: Vec<Q16_16>,
        /// Input feature count.
        inputs: usize,
        /// Output feature count.
        outputs: usize,
    },
    /// Square-kernel 2-D convolution.
    Conv2d {
        /// `out_c x in_c x k x k` weights.
        weights: Vec<Q16_16>,
        /// Bias vector.
        bias: Vec<Q16_16>,
        /// Output channels.
        out_channels: usize,
        /// Kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Max pooling.
    MaxPool2d {
        /// Window side.
        pool: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool2d {
        /// Window side.
        pool: usize,
        /// Stride.
        stride: usize,
    },
    /// ReLU.
    Relu,
    /// Leaky ReLU with fixed-point slope.
    LeakyRelu {
        /// Negative-side slope.
        alpha: Q16_16,
    },
    /// Deterministic integer softmax (see [`softmax_q16_into`]).
    Softmax,
    /// Flatten (no-op on the flat buffer).
    Flatten,
    /// Frozen batch normalisation as per-channel fixed-point
    /// scale-and-shift.
    BatchNorm {
        /// Per-channel `(scale, shift)` pairs.
        scale_shift: Vec<(Q16_16, Q16_16)>,
    },
}

/// A fully quantised model: Q16.16 weights, integer-only execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QModel {
    input_shape: Shape,
    layers: Vec<QLayer>,
    shapes: Vec<Shape>,
    source_digest: u64,
}

impl QModel {
    /// Quantises a float model to Q16.16.
    ///
    /// Weights are converted with round-to-nearest. The conversion records
    /// the source model's digest so evidence chains can link the deployed
    /// quantised artefact back to the trained float model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Quantisation`] if any weight saturates the
    /// Q16.16 range (|w| >= 32768) — a model that extreme needs rescaling
    /// before deployment.
    pub fn quantize(model: &Model) -> Result<Self, NnError> {
        let mut layers = Vec::with_capacity(model.len());
        for (i, layer) in model.layers().iter().enumerate() {
            layers.push(quantize_layer(layer, i)?);
        }
        let shapes = (0..model.len())
            .map(|i| model.layer_output_shape(i).expect("index in range"))
            .collect();
        Ok(QModel {
            input_shape: model.input_shape(),
            layers,
            shapes,
            source_digest: model.digest(),
        })
    }

    /// The input shape the model expects.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The output shape of the final layer.
    pub fn output_shape(&self) -> Shape {
        *self.shapes.last().expect("model is never empty")
    }

    /// Digest of the float model this was quantised from.
    pub fn source_digest(&self) -> u64 {
        self.source_digest
    }

    /// The quantised layers.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Mutable access to the quantised layers.
    ///
    /// Exists for fault injection ([`crate::fault::FaultInjector`]) and
    /// repair experiments; ordinary deployment never mutates a quantised
    /// artefact. Structural edits (changing layer counts or feature sizes)
    /// are not supported and will surface as inference errors.
    pub fn layers_mut(&mut self) -> &mut [QLayer] {
        &mut self.layers
    }

    /// The output shape of layer `index` (`None` when out of range).
    pub fn layer_output_shape(&self, index: usize) -> Option<Shape> {
        self.shapes.get(index).copied()
    }

    /// Largest activation buffer needed (elements).
    pub fn max_activation_len(&self) -> usize {
        self.shapes
            .iter()
            .map(Shape::len)
            .chain(std::iter::once(self.input_shape.len()))
            .max()
            .expect("model is never empty")
    }
}

fn quantize_layer(layer: &Layer, index: usize) -> Result<QLayer, NnError> {
    let q = |v: f32| -> Result<Q16_16, NnError> {
        let fixed = Q16_16::from_f32(v);
        if fixed.is_saturated() && v.abs() < 30000.0 {
            // Saturation of a reasonable float means a conversion defect,
            // not a data problem; treat both as quantisation failure.
            return Err(NnError::Quantisation(format!(
                "value {v} saturates Q16.16 at layer {index}"
            )));
        }
        if v.abs() >= 32768.0 {
            return Err(NnError::Quantisation(format!(
                "weight {v} at layer {index} exceeds Q16.16 range"
            )));
        }
        Ok(fixed)
    };
    let qvec = |vs: &[f32]| -> Result<Vec<Q16_16>, NnError> { vs.iter().map(|&v| q(v)).collect() };
    Ok(match layer {
        Layer::Dense(d) => QLayer::Dense {
            weights: qvec(d.weights())?,
            bias: qvec(d.bias())?,
            inputs: d.inputs(),
            outputs: d.outputs(),
        },
        Layer::Conv2d(c) => QLayer::Conv2d {
            weights: qvec(c.weights())?,
            bias: qvec(c.bias())?,
            out_channels: c.out_channels(),
            kernel: c.kernel(),
            stride: c.stride(),
            padding: c.padding(),
        },
        Layer::MaxPool2d { pool, stride } => QLayer::MaxPool2d {
            pool: *pool,
            stride: *stride,
        },
        Layer::AvgPool2d { pool, stride } => QLayer::AvgPool2d {
            pool: *pool,
            stride: *stride,
        },
        Layer::Relu => QLayer::Relu,
        Layer::LeakyRelu { alpha } => QLayer::LeakyRelu { alpha: q(*alpha)? },
        Layer::Softmax => QLayer::Softmax,
        Layer::Flatten => QLayer::Flatten,
        Layer::BatchNorm(bn) => QLayer::BatchNorm {
            scale_shift: bn
                .scale_shift()
                .iter()
                .map(|&(s, t)| Ok((q(s)?, q(t)?)))
                .collect::<Result<Vec<_>, NnError>>()?,
        },
        // `Layer` is non-exhaustive within the crate too once variants
        // grow; keep quantisation total.
        #[allow(unreachable_patterns)]
        other => {
            return Err(NnError::Quantisation(format!(
                "layer {} has no quantised implementation",
                other.kind_name()
            )))
        }
    })
}

/// Integer-only inference engine over a [`QModel`].
///
/// Mirrors [`crate::engine::Engine`] (two pre-allocated ping-pong buffers,
/// no hot-path allocation) but every operation is Q16.16 integer
/// arithmetic.
#[derive(Debug, Clone)]
pub struct QEngine {
    model: QModel,
    buf_a: Vec<Q16_16>,
    buf_b: Vec<Q16_16>,
    /// Batch-major ping-pong arenas (see [`crate::engine::Engine`]):
    /// allocated on first batch use, grown on demand, reused across
    /// layers and across calls.
    arena_a: Vec<Q16_16>,
    arena_b: Vec<Q16_16>,
    inferences: u64,
}

impl QEngine {
    /// Creates an engine, pre-allocating all activation buffers.
    pub fn new(model: QModel) -> Self {
        let cap = model.max_activation_len();
        QEngine {
            model,
            buf_a: vec![Q16_16::ZERO; cap],
            buf_b: vec![Q16_16::ZERO; cap],
            arena_a: Vec::new(),
            arena_b: Vec::new(),
            inferences: 0,
        }
    }

    /// The wrapped quantised model.
    pub fn model(&self) -> &QModel {
        &self.model
    }

    /// Number of completed inferences.
    pub fn inference_count(&self) -> u64 {
        self.inferences
    }

    /// Runs inference on a fixed-point input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer(&mut self, input: &[Q16_16]) -> Result<&[Q16_16], NnError> {
        let expected = self.model.input_shape();
        if input.len() != expected.len() {
            return Err(NnError::InputShape {
                expected,
                actual: input.len(),
            });
        }
        self.buf_a[..input.len()].copy_from_slice(input);
        let mut cur_shape = expected;
        let mut cur_in_a = true;
        for (i, layer) in self.model.layers.iter().enumerate() {
            let out_shape = self.model.shapes[i];
            let (src, dst) = if cur_in_a {
                (&self.buf_a, &mut self.buf_b)
            } else {
                (&self.buf_b, &mut self.buf_a)
            };
            run_qlayer(
                layer,
                &src[..cur_shape.len()],
                &mut dst[..out_shape.len()],
                &cur_shape,
            )?;
            cur_shape = out_shape;
            cur_in_a = !cur_in_a;
        }
        self.inferences += 1;
        let out = if cur_in_a { &self.buf_a } else { &self.buf_b };
        Ok(&out[..cur_shape.len()])
    }

    /// Converts an `f32` input, runs inference, and converts the output
    /// back to `f32`. Allocates for the conversions; the integer inference
    /// in between is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer_f32(&mut self, input: &[f32]) -> Result<Vec<f32>, NnError> {
        let q: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let out = self.infer(&q)?;
        Ok(out.iter().map(|v| v.to_f32()).collect())
    }

    /// Classification convenience: returns the argmax [`Classification`]
    /// (the Q16.16 score converted to `f32`, which is exact for the
    /// magnitudes a classifier head produces).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify(&mut self, input: &[Q16_16]) -> Result<Classification, NnError> {
        let out = self.infer(input)?;
        let mut best = (0usize, Q16_16::MIN);
        for (i, &v) in out.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        Ok(Classification {
            class: best.0,
            confidence: best.1.to_f32(),
        })
    }

    /// Runs the whole batch through the model inside the batch-major
    /// arenas, returning `(output_len, output_in_arena_a)`. Dense layers
    /// execute batch-wide (each weight row streams from memory once per
    /// batch instead of once per item); everything else runs per item
    /// over the strided rows. Bit-identical to a per-item [`QEngine::infer`]
    /// loop: integer arithmetic has no ordering latitude at all.
    fn run_batch<I: AsRef<[Q16_16]>>(&mut self, inputs: &[I]) -> Result<(usize, bool), NnError> {
        let n = inputs.len();
        let stride = self.model.max_activation_len();
        if self.arena_a.len() < n * stride {
            self.arena_a.resize(n * stride, Q16_16::ZERO);
            self.arena_b.resize(n * stride, Q16_16::ZERO);
        }
        let expected_len = self.model.input_shape().len();
        for (item, input) in inputs.iter().enumerate() {
            let input = input.as_ref();
            if input.len() != expected_len {
                return Err(NnError::InputShape {
                    expected: self.model.input_shape(),
                    actual: input.len(),
                });
            }
            self.arena_a[item * stride..item * stride + expected_len].copy_from_slice(input);
        }
        let mut cur_shape = self.model.input_shape();
        let mut cur_in_a = true;
        for (i, layer) in self.model.layers.iter().enumerate() {
            let out_shape = self.model.shapes[i];
            let (src, dst) = if cur_in_a {
                (&self.arena_a, &mut self.arena_b)
            } else {
                (&self.arena_b, &mut self.arena_a)
            };
            if let QLayer::Dense {
                weights,
                bias,
                inputs,
                outputs,
            } = layer
            {
                ops::dense_q16_batch_into(
                    weights, bias, src, dst, *inputs, *outputs, n, stride, stride,
                )?;
            } else {
                for item in 0..n {
                    run_qlayer(
                        layer,
                        &src[item * stride..item * stride + cur_shape.len()],
                        &mut dst[item * stride..item * stride + out_shape.len()],
                        &cur_shape,
                    )?;
                }
            }
            cur_shape = out_shape;
            cur_in_a = !cur_in_a;
        }
        self.inferences += n as u64;
        Ok((cur_shape.len(), cur_in_a))
    }

    /// Runs inference over a batch, one arena allocation for the whole
    /// call (amortised to zero across calls).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn infer_batch<I: AsRef<[Q16_16]>>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Vec<Q16_16>>, NnError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let (out_len, in_a) = self.run_batch(inputs)?;
        let stride = self.model.max_activation_len();
        let slab = if in_a { &self.arena_a } else { &self.arena_b };
        Ok((0..inputs.len())
            .map(|item| slab[item * stride..item * stride + out_len].to_vec())
            .collect())
    }

    /// Classifies a batch, reading each argmax straight from the arena —
    /// no per-item output copy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn classify_batch<I: AsRef<[Q16_16]>>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Classification>, NnError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let (out_len, in_a) = self.run_batch(inputs)?;
        let stride = self.model.max_activation_len();
        let slab = if in_a { &self.arena_a } else { &self.arena_b };
        Ok((0..inputs.len())
            .map(|item| {
                let out = &slab[item * stride..item * stride + out_len];
                let mut best = (0usize, Q16_16::MIN);
                for (i, &v) in out.iter().enumerate() {
                    if v > best.1 {
                        best = (i, v);
                    }
                }
                Classification {
                    class: best.0,
                    confidence: best.1.to_f32(),
                }
            })
            .collect())
    }
}

pub(crate) fn run_qlayer(
    layer: &QLayer,
    src: &[Q16_16],
    dst: &mut [Q16_16],
    in_shape: &Shape,
) -> Result<(), NnError> {
    match layer {
        QLayer::Dense {
            weights,
            bias,
            inputs,
            outputs,
        } => {
            ops::dense_q16_into(weights, bias, src, dst, *inputs, *outputs)?;
        }
        QLayer::Conv2d {
            weights,
            bias,
            out_channels,
            kernel,
            stride,
            padding,
        } => {
            let dims = in_shape.dims();
            ops::conv2d_q16_into(
                src,
                weights,
                bias,
                dst,
                dims[0],
                dims[1],
                dims[2],
                *out_channels,
                *kernel,
                *kernel,
                *stride,
                *padding,
            )?;
        }
        QLayer::MaxPool2d { pool, stride } => {
            let dims = in_shape.dims();
            ops::maxpool2d_q16_into(src, dst, dims[0], dims[1], dims[2], *pool, *stride)?;
        }
        QLayer::AvgPool2d { pool, stride } => {
            avgpool_q16_into(src, dst, in_shape, *pool, *stride)?;
        }
        QLayer::Relu => {
            ops::relu_q16_into(src, dst)?;
        }
        QLayer::LeakyRelu { alpha } => {
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = if v > Q16_16::ZERO { v } else { *alpha * v };
            }
        }
        QLayer::Softmax => softmax_q16_into(src, dst)?,
        QLayer::Flatten => dst.copy_from_slice(src),
        QLayer::BatchNorm { scale_shift } => {
            if in_shape.rank() == 3 {
                let dims = in_shape.dims();
                let plane = dims[1] * dims[2];
                for (c, &(scale, shift)) in scale_shift.iter().enumerate() {
                    for i in 0..plane {
                        dst[c * plane + i] = scale * src[c * plane + i] + shift;
                    }
                }
            } else {
                for ((d, &s), &(scale, shift)) in dst.iter_mut().zip(src).zip(scale_shift) {
                    *d = scale * s + shift;
                }
            }
        }
    }
    Ok(())
}

/// [`run_qlayer`] with fused verify-on-read: parametric layers execute
/// through the digest kernels, which accumulate the CRC-32/parity
/// [`WeightDigest`] over weights and bias in the exact order the kernel
/// streams them (`Some`); non-parametric layers run plainly (`None`).
pub(crate) fn run_qlayer_digest(
    layer: &QLayer,
    src: &[Q16_16],
    dst: &mut [Q16_16],
    in_shape: &Shape,
) -> Result<Option<WeightDigest>, NnError> {
    match layer {
        QLayer::Dense {
            weights,
            bias,
            inputs,
            outputs,
        } => Ok(Some(ops::dense_q16_into_digest(
            weights, bias, src, dst, *inputs, *outputs,
        )?)),
        QLayer::Conv2d {
            weights,
            bias,
            out_channels,
            kernel,
            stride,
            padding,
        } => {
            let dims = in_shape.dims();
            Ok(Some(ops::conv2d_q16_into_digest(
                src,
                weights,
                bias,
                dst,
                dims[0],
                dims[1],
                dims[2],
                *out_channels,
                *kernel,
                *kernel,
                *stride,
                *padding,
            )?))
        }
        other => {
            run_qlayer(other, src, dst, in_shape)?;
            Ok(None)
        }
    }
}

fn avgpool_q16_into(
    src: &[Q16_16],
    dst: &mut [Q16_16],
    in_shape: &Shape,
    pool: usize,
    stride: usize,
) -> Result<(), NnError> {
    let dims = in_shape.dims();
    let (channels, in_h, in_w) = (dims[0], dims[1], dims[2]);
    let (out_h, out_w) = ops::conv2d_output_dims(in_h, in_w, pool, pool, stride, 0)?;
    let denom = (pool * pool) as i64;
    for c in 0..channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc: i64 = 0;
                for py in 0..pool {
                    for px in 0..pool {
                        acc += src[c * in_h * in_w + (oy * stride + py) * in_w + ox * stride + px]
                            .to_bits() as i64;
                    }
                }
                // Integer division truncates toward zero: deterministic.
                dst[c * out_h * out_w + oy * out_w + ox] = Q16_16::from_bits((acc / denom) as i32);
            }
        }
    }
    Ok(())
}

/// Deterministic integer softmax.
///
/// Computes `exp` with a pure fixed-point approximation (`exp(x) =
/// 2^(x·log₂e)` with a cubic polynomial for the fractional power of two),
/// then normalises with saturating fixed-point division. Because every
/// step is integer arithmetic, the result is bit-exact across platforms.
/// Absolute error of the `exp` approximation is below 0.3 % of the true
/// value over the operating range, which is ample for argmax and
/// threshold-style consumers.
///
/// # Errors
///
/// Returns [`NnError::Tensor`] on an empty input.
pub fn softmax_q16_into(src: &[Q16_16], dst: &mut [Q16_16]) -> Result<(), NnError> {
    if src.is_empty() {
        return Err(NnError::Tensor(safex_tensor::TensorError::EmptyInput));
    }
    let max = src.iter().copied().fold(Q16_16::MIN, Q16_16::max);
    let mut sum = Q16_16::ZERO;
    for (o, &v) in dst.iter_mut().zip(src) {
        let e = exp_q16(v - max);
        *o = e;
        sum += e;
    }
    if sum == Q16_16::ZERO {
        // Cannot happen (exp(0) = 1 for the max element) but stay total.
        sum = Q16_16::EPSILON;
    }
    for o in dst.iter_mut() {
        *o = *o / sum;
    }
    Ok(())
}

/// Fixed-point `exp(x)` for `x <= 0`, flushing to zero below `x < -16`.
///
/// For positive `x` the result saturates at `Q16_16::MAX` once `2^y`
/// overflows the format.
pub fn exp_q16(x: Q16_16) -> Q16_16 {
    // log2(e) in Q16.16.
    const LOG2_E: Q16_16 = Q16_16::from_bits(94_548); // 1.4426950... * 65536
    let y = x * LOG2_E; // exponent base 2
    let y_bits = y.to_bits();
    // Split into integer part n (floor) and fraction f in [0, 1).
    let n = y_bits >> 16;
    let f = Q16_16::from_bits(y_bits & 0xFFFF);
    if n <= -31 {
        return Q16_16::ZERO;
    }
    if n >= 15 {
        return Q16_16::MAX;
    }
    // 2^f via cubic minimax-ish polynomial (coefficients in Q16.16):
    // 2^f ~= 1 + f*(0.695502 + f*(0.226160 + f*0.078024))
    const C1: Q16_16 = Q16_16::from_bits(45_584);
    const C2: Q16_16 = Q16_16::from_bits(14_822);
    const C3: Q16_16 = Q16_16::from_bits(5_114);
    let pow2_f = Q16_16::ONE + f * (C1 + f * (C2 + f * C3));
    // Scale by 2^n with integer shifts.
    let bits = pow2_f.to_bits() as i64;
    let shifted = if n >= 0 { bits << n } else { bits >> (-n) };
    if shifted > i32::MAX as i64 {
        Q16_16::MAX
    } else {
        Q16_16::from_bits(shifted as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{ConstantFill, Init};
    use crate::model::ModelBuilder;
    use crate::Engine;
    use safex_tensor::DetRng;

    fn float_model(seed: u64) -> Model {
        let mut rng = DetRng::new(seed);
        ModelBuilder::new(Shape::vector(4))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn exp_q16_accuracy() {
        for &x in &[-8.0f64, -4.0, -2.0, -1.0, -0.5, -0.1, 0.0, 0.5, 1.0, 2.0] {
            let approx = exp_q16(Q16_16::from_f64(x)).to_f64();
            let exact = x.exp();
            let abs = (approx - exact).abs();
            let rel = abs / exact.max(1e-12);
            // Accept polynomial error (relative) or Q16.16 resolution
            // error (a few LSB absolute) for tiny results.
            assert!(
                rel < 0.004 || abs < 4.0 / 65536.0,
                "exp({x}): approx {approx} vs {exact}, rel {rel}, abs {abs}"
            );
        }
    }

    #[test]
    fn exp_q16_extremes() {
        assert_eq!(exp_q16(Q16_16::from_f32(-40.0)), Q16_16::ZERO);
        assert_eq!(exp_q16(Q16_16::from_f32(100.0)), Q16_16::MAX);
        let one = exp_q16(Q16_16::ZERO).to_f32();
        assert!((one - 1.0).abs() < 0.001);
    }

    #[test]
    fn softmax_q16_sums_to_one() {
        let src: Vec<Q16_16> = [1.0f32, 2.0, 3.0]
            .iter()
            .map(|&v| Q16_16::from_f32(v))
            .collect();
        let mut dst = vec![Q16_16::ZERO; 3];
        softmax_q16_into(&src, &mut dst).unwrap();
        let total: f32 = dst.iter().map(|v| v.to_f32()).sum();
        assert!((total - 1.0).abs() < 0.01, "total {total}");
        assert!(dst[2] > dst[1] && dst[1] > dst[0]);
    }

    #[test]
    fn quantize_round_trips_structure() {
        let m = float_model(1);
        let q = QModel::quantize(&m).unwrap();
        assert_eq!(q.layers().len(), m.len());
        assert_eq!(q.input_shape(), m.input_shape());
        assert_eq!(q.output_shape(), m.output_shape());
        assert_eq!(q.source_digest(), m.digest());
    }

    #[test]
    fn quantize_rejects_huge_weights() {
        let mut m = float_model(1);
        if let Layer::Dense(d) = &mut m.layers_mut()[0] {
            d.weights_mut()[0] = 40000.0;
        }
        assert!(matches!(
            QModel::quantize(&m),
            Err(NnError::Quantisation(_))
        ));
    }

    #[test]
    fn qengine_close_to_float_engine() {
        let m = float_model(2);
        let mut fe = Engine::new(m.clone());
        let mut qe = QEngine::new(QModel::quantize(&m).unwrap());
        let input = [0.25f32, -0.5, 0.75, 0.125];
        let fout = fe.infer(&input).unwrap().to_vec();
        let qout = qe.infer_f32(&input).unwrap();
        for (f, q) in fout.iter().zip(&qout) {
            assert!((f - q).abs() < 0.01, "float {f} vs quant {q}");
        }
    }

    #[test]
    fn qengine_bit_exact_across_runs() {
        let m = float_model(3);
        let mut qe = QEngine::new(QModel::quantize(&m).unwrap());
        let input: Vec<Q16_16> = [0.1f32, 0.2, 0.3, 0.4]
            .iter()
            .map(|&v| Q16_16::from_f32(v))
            .collect();
        let a: Vec<Q16_16> = qe.infer(&input).unwrap().to_vec();
        for _ in 0..5 {
            let b: Vec<Q16_16> = qe.infer(&input).unwrap().to_vec();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn qengine_classify() {
        let mut rng = DetRng::new(0);
        let mut m = ModelBuilder::new(Shape::vector(2))
            .dense_with_init(3, Init::Zeros, &mut rng)
            .unwrap()
            .build()
            .unwrap();
        if let Layer::Dense(d) = &mut m.layers_mut()[0] {
            d.bias_mut().copy_from_slice(&[0.0, 1.0, 3.0]);
        }
        let mut qe = QEngine::new(QModel::quantize(&m).unwrap());
        let input = [Q16_16::ZERO, Q16_16::ZERO];
        let c = qe.classify(&input).unwrap();
        assert_eq!(c.class, 2);
        assert_eq!(c.confidence, 3.0);
    }

    #[test]
    fn qengine_batch_is_bit_identical_to_per_item() {
        let m = float_model(7);
        let q = QModel::quantize(&m).unwrap();
        let mut per_item = QEngine::new(q.clone());
        let mut batched = QEngine::new(q);
        let mut rng = DetRng::new(42);
        let inputs: Vec<Vec<Q16_16>> = (0..7)
            .map(|_| {
                (0..4)
                    .map(|_| Q16_16::from_f32(rng.next_f32() * 2.0 - 1.0))
                    .collect()
            })
            .collect();
        let batch_out = batched.infer_batch(&inputs).unwrap();
        for (input, out) in inputs.iter().zip(&batch_out) {
            assert_eq!(per_item.infer(input).unwrap(), out.as_slice());
        }
        let classes = batched.classify_batch(&inputs).unwrap();
        for (input, c) in inputs.iter().zip(&classes) {
            assert_eq!(per_item.classify(input).unwrap(), *c);
        }
        assert_eq!(batched.inference_count(), 14);
        // Smaller follow-up batch reuses the arena; empty batch is a no-op.
        let again = batched.infer_batch(&inputs[..3]).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(again[0], batch_out[0]);
        assert!(batched.infer_batch::<Vec<Q16_16>>(&[]).unwrap().is_empty());
        assert!(matches!(
            batched.infer_batch(&[vec![Q16_16::ZERO; 3]]),
            Err(NnError::InputShape { .. })
        ));
    }

    #[test]
    fn qengine_rejects_wrong_input() {
        let m = float_model(4);
        let mut qe = QEngine::new(QModel::quantize(&m).unwrap());
        assert!(matches!(
            qe.infer(&[Q16_16::ZERO; 3]),
            Err(NnError::InputShape { .. })
        ));
    }

    #[test]
    fn quantised_convnet_runs() {
        let mut rng = DetRng::new(5);
        let m = ModelBuilder::new(Shape::chw(1, 6, 6))
            .conv2d(2, 3, 1, 0, &mut rng)
            .unwrap()
            .relu()
            .avgpool2d(2, 2)
            .unwrap()
            .flatten()
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let mut fe = Engine::new(m.clone());
        let mut qe = QEngine::new(QModel::quantize(&m).unwrap());
        let input: Vec<f32> = (0..36).map(|i| (i as f32 - 18.0) / 36.0).collect();
        let fout = fe.infer(&input).unwrap().to_vec();
        let qout = qe.infer_f32(&input).unwrap();
        for (f, q) in fout.iter().zip(&qout) {
            assert!((f - q).abs() < 0.02, "float {f} vs quant {q}");
        }
    }

    #[test]
    fn leaky_relu_quantised() {
        let mut rng = DetRng::new(6);
        let m = ModelBuilder::new(Shape::vector(2))
            .dense_with_init(2, Init::Constant(ConstantFill::new(1.0)), &mut rng)
            .unwrap()
            .leaky_relu(0.5)
            .build()
            .unwrap();
        let mut qe = QEngine::new(QModel::quantize(&m).unwrap());
        let out = qe.infer_f32(&[-1.0, 0.0]).unwrap();
        // dense: both outputs = -1.0; leaky: -0.5
        assert!((out[0] + 0.5).abs() < 0.01);
        assert!((out[1] + 0.5).abs() < 0.01);
    }
}
