//! Deterministic fault injection for the DL stack (SEU model).
//!
//! `safex-patterns` can already fault a channel's *verdict*; this module
//! faults the stack underneath the verdict so hardening mechanisms
//! ([`crate::harden`]) have something real to detect:
//!
//! * **Weights** — [`FaultInjector`] flips bits in parameter buffers, the
//!   classic single-event-upset (SEU) model, for both the `f32` model and
//!   the Q16.16 quantised model.
//! * **Activations** — an [`ActivationFault`] in a [`FaultPlan`] flips bits
//!   in intermediate activations between layers (applied by
//!   [`crate::harden::HardenedEngine`]).
//! * **Inputs** — an [`InputFault`] models sensor-level trouble: a sensor
//!   stuck at a level, additive gaussian noise, or element dropout.
//!
//! Everything draws from [`DetRng`] streams derived from explicit seeds,
//! and per-decision faults are keyed by the *decision index*, so a
//! campaign's fault sequence is a pure function of `(model, inputs, seed)`
//! — identical for sequential and pooled execution at any worker count.

use std::sync::{Arc, Mutex};

use safex_tensor::fixed::Q16_16;
use safex_tensor::DetRng;

use crate::error::NnError;
use crate::layer::Layer;
use crate::model::Model;
use crate::quant::{QLayer, QModel};

/// One recorded weight bit-flip (ground truth for coverage accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightFlip {
    /// Index of the layer whose parameters were hit.
    pub layer: usize,
    /// Flat parameter index within the layer (weights then bias).
    pub param: usize,
    /// Bit position flipped (0 = LSB).
    pub bit: u32,
    /// Raw bits before the flip.
    pub before: u32,
    /// Raw bits after the flip.
    pub after: u32,
}

/// Seeded injector for weight-level SEU faults.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), safex_nn::NnError> {
/// use safex_nn::fault::FaultInjector;
/// use safex_nn::model::ModelBuilder;
/// use safex_tensor::{DetRng, Shape};
///
/// let mut rng = DetRng::new(1);
/// let mut model = ModelBuilder::new(Shape::vector(4))
///     .dense(8, &mut rng)?
///     .relu()
///     .dense(2, &mut rng)?
///     .build()?;
/// let before = model.digest();
/// let mut injector = FaultInjector::new(7);
/// let flips = injector.flip_weight_bits(&mut model, 1, 1)?;
/// assert_eq!(flips.len(), 1);
/// assert_ne!(model.digest(), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: DetRng,
    flips: u64,
}

impl FaultInjector {
    /// Creates an injector with its own deterministic stream.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: DetRng::new(seed),
            flips: 0,
        }
    }

    /// Total bit-flips performed so far (float and quantised combined).
    pub fn flip_count(&self) -> u64 {
        self.flips
    }

    /// Performs `events` SEU events on the float model, each flipping
    /// `bits_per_event` distinct bits of one uniformly chosen parameter
    /// (dense/conv weights and biases; frozen batch-norm statistics are
    /// excluded because execution reads their precomputed scale/shift).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] if `bits_per_event` is not in `1..=32`
    /// or the model has no injectable parameters.
    pub fn flip_weight_bits(
        &mut self,
        model: &mut Model,
        events: usize,
        bits_per_event: u32,
    ) -> Result<Vec<WeightFlip>, NnError> {
        validate_bits(bits_per_event)?;
        let mut buffers: Vec<(usize, &mut [f32])> = Vec::new();
        for (i, layer) in model.layers_mut().iter_mut().enumerate() {
            match layer {
                Layer::Dense(d) => {
                    buffers.push((i, d.weights.as_mut_slice()));
                    buffers.push((i, d.bias.as_mut_slice()));
                }
                Layer::Conv2d(c) => {
                    buffers.push((i, c.weights.as_mut_slice()));
                    buffers.push((i, c.bias.as_mut_slice()));
                }
                _ => {}
            }
        }
        let total: usize = buffers.iter().map(|(_, b)| b.len()).sum();
        if total == 0 {
            return Err(NnError::Fault("model has no injectable parameters".into()));
        }
        let mut out = Vec::with_capacity(events * bits_per_event as usize);
        for _ in 0..events {
            let target = self.rng.below_usize(total);
            let (layer, buf, offset) = locate_mut(&mut buffers, target);
            for bit in self.rng.sample_indices(32, bits_per_event as usize) {
                let before = buf[offset].to_bits();
                let after = before ^ (1u32 << bit);
                buf[offset] = f32::from_bits(after);
                self.flips += 1;
                out.push(WeightFlip {
                    layer,
                    param: target,
                    bit: bit as u32,
                    before,
                    after,
                });
            }
        }
        Ok(out)
    }

    /// Performs `events` SEU events on the quantised model, flipping bits
    /// of the 32-bit Q16.16 raw representation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] under the same conditions as
    /// [`FaultInjector::flip_weight_bits`].
    pub fn flip_qweight_bits(
        &mut self,
        model: &mut QModel,
        events: usize,
        bits_per_event: u32,
    ) -> Result<Vec<WeightFlip>, NnError> {
        validate_bits(bits_per_event)?;
        let mut buffers: Vec<(usize, &mut [Q16_16])> = Vec::new();
        for (i, layer) in model.layers_mut().iter_mut().enumerate() {
            match layer {
                QLayer::Dense { weights, bias, .. } | QLayer::Conv2d { weights, bias, .. } => {
                    buffers.push((i, weights.as_mut_slice()));
                    buffers.push((i, bias.as_mut_slice()));
                }
                _ => {}
            }
        }
        let total: usize = buffers.iter().map(|(_, b)| b.len()).sum();
        if total == 0 {
            return Err(NnError::Fault(
                "quantised model has no injectable parameters".into(),
            ));
        }
        let mut out = Vec::with_capacity(events * bits_per_event as usize);
        for _ in 0..events {
            let target = self.rng.below_usize(total);
            let (layer, buf, offset) = locate_mut(&mut buffers, target);
            for bit in self.rng.sample_indices(32, bits_per_event as usize) {
                let before = buf[offset].to_bits() as u32;
                let after = before ^ (1u32 << bit);
                buf[offset] = Q16_16::from_bits(after as i32);
                self.flips += 1;
                out.push(WeightFlip {
                    layer,
                    param: target,
                    bit: bit as u32,
                    before,
                    after,
                });
            }
        }
        Ok(out)
    }
}

/// Re-applies recorded weight flips to `model` — the replica-
/// synchronisation hook: generate flips once on one replica with
/// [`FaultInjector::flip_weight_bits`], then stamp the identical
/// corruption onto every other replica so a pooled engine observes one
/// coherent fault rather than per-replica divergence.
///
/// Each flip's `after` bits are written directly, so applying the same
/// list twice is idempotent.
///
/// # Errors
///
/// Returns [`NnError::Fault`] when a flip's flat parameter index does not
/// fit this model (the flips were recorded against a different
/// architecture).
pub fn apply_weight_flips(model: &mut Model, flips: &[WeightFlip]) -> Result<(), NnError> {
    let mut buffers: Vec<(usize, &mut [f32])> = Vec::new();
    for (i, layer) in model.layers_mut().iter_mut().enumerate() {
        match layer {
            Layer::Dense(d) => {
                buffers.push((i, d.weights.as_mut_slice()));
                buffers.push((i, d.bias.as_mut_slice()));
            }
            Layer::Conv2d(c) => {
                buffers.push((i, c.weights.as_mut_slice()));
                buffers.push((i, c.bias.as_mut_slice()));
            }
            _ => {}
        }
    }
    let total: usize = buffers.iter().map(|(_, b)| b.len()).sum();
    for flip in flips {
        if flip.param >= total {
            return Err(NnError::Fault(format!(
                "weight flip targets parameter {} but model has {total}",
                flip.param
            )));
        }
        let (_, buf, offset) = locate_mut(&mut buffers, flip.param);
        buf[offset] = f32::from_bits(flip.after);
    }
    Ok(())
}

fn validate_bits(bits: u32) -> Result<(), NnError> {
    if !(1..=32).contains(&bits) {
        return Err(NnError::Fault(format!(
            "bits_per_event must be in 1..=32, got {bits}"
        )));
    }
    Ok(())
}

/// Resolves a flat parameter index into `(layer, buffer, offset)`.
fn locate_mut<'a, 'b, T>(
    buffers: &'a mut [(usize, &'b mut [T])],
    mut index: usize,
) -> (usize, &'a mut &'b mut [T], usize) {
    for (layer, buf) in buffers.iter_mut() {
        if index < buf.len() {
            return (*layer, buf, index);
        }
        index -= buf.len();
    }
    unreachable!("index validated against total parameter count");
}

/// A sensor/input-level fault class.
///
/// All variants fire independently per decision with probability `p`, so a
/// decision's perturbation depends only on the decision index and the plan
/// seed — never on execution order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputFault {
    /// One sensor element frozen at a fixed level (a dead or railed
    /// sensor). Stateless by design: the stuck *level* is configured, not
    /// remembered, so pooled and sequential replays agree.
    Stuck {
        /// Input element index to freeze.
        index: usize,
        /// The level the element is stuck at.
        level: f32,
        /// Per-decision probability the fault is active.
        p: f64,
    },
    /// Additive gaussian noise on every element.
    Noise {
        /// Noise standard deviation.
        sigma: f64,
        /// Per-decision probability the fault is active.
        p: f64,
    },
    /// Each element independently zeroed (packet loss / occlusion).
    Dropout {
        /// Per-element drop probability when the fault is active.
        drop: f64,
        /// Per-decision probability the fault is active.
        p: f64,
    },
}

/// Bit-flip corruption of intermediate activations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationFault {
    /// Per-layer-boundary probability that one element is corrupted.
    pub p: f64,
    /// Distinct bits flipped in the chosen element.
    pub bits: u32,
}

/// A full per-decision injection plan executed by
/// [`crate::harden::HardenedEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-decision fault streams.
    pub seed: u64,
    /// Optional input-level fault.
    pub input: Option<InputFault>,
    /// Optional activation-level fault.
    pub activation: Option<ActivationFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a campaign control cell).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            input: None,
            activation: None,
        }
    }

    /// A plan with only an input fault.
    pub fn input(seed: u64, fault: InputFault) -> Self {
        FaultPlan {
            seed,
            input: Some(fault),
            activation: None,
        }
    }

    /// A plan with only an activation fault.
    pub fn activation(seed: u64, fault: ActivationFault) -> Self {
        FaultPlan {
            seed,
            input: None,
            activation: Some(fault),
        }
    }

    /// Validates probabilities and bit counts.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] for probabilities outside `[0, 1]`, a
    /// non-finite sigma, or a bit count outside `1..=32`.
    pub fn validate(&self) -> Result<(), NnError> {
        let check_p = |p: f64, what: &str| -> Result<(), NnError> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(NnError::Fault(format!(
                    "{what} probability {p} outside [0, 1]"
                )));
            }
            Ok(())
        };
        match self.input {
            Some(InputFault::Stuck { p, level, .. }) => {
                check_p(p, "stuck")?;
                if !level.is_finite() {
                    return Err(NnError::Fault("stuck level must be finite".into()));
                }
            }
            Some(InputFault::Noise { sigma, p }) => {
                check_p(p, "noise")?;
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(NnError::Fault("noise sigma must be non-negative".into()));
                }
            }
            Some(InputFault::Dropout { drop, p }) => {
                check_p(p, "dropout")?;
                check_p(drop, "per-element drop")?;
            }
            None => {}
        }
        if let Some(a) = self.activation {
            check_p(a.p, "activation")?;
            validate_bits(a.bits)?;
        }
        Ok(())
    }

    /// The deterministic per-decision fault stream for `decision`.
    pub(crate) fn decision_rng(&self, decision: u64) -> DetRng {
        // Mix the decision index into the seed with a splitmix-style odd
        // constant; DetRng::new then decorrelates neighbouring seeds.
        DetRng::new(self.seed ^ decision.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Replays the *input stage* of this plan for one decision without an
    /// engine: returns the input exactly as the hardened engine will see
    /// it on that decision.
    ///
    /// Sound because the input fault is the first draw from the
    /// per-decision stream, so the preview consumes precisely the prefix
    /// the engine consumes. This is the hook external (pillar-1)
    /// supervisors use to check the *faulted* sensor frame before the
    /// decision runs — the campaign loop feeds the preview to an ODD
    /// envelope and reports a rejection as a health event.
    pub fn preview_input(&self, decision: u64, input: &[f32]) -> Vec<f32> {
        let mut out = input.to_vec();
        if let Some(fault) = self.input {
            let mut rng = self.decision_rng(decision);
            let mut scratch = Vec::new();
            apply_input_fault(fault, &mut out, &mut rng, &mut scratch);
        }
        out
    }
}

/// Applies one input fault in place, recording what actually fired.
///
/// Shared by [`crate::harden::HardenedEngine`] (inside a decision) and
/// [`FaultPlan::preview_input`] (outside one); both must consume the same
/// draws from `rng` for the preview guarantee to hold.
pub(crate) fn apply_input_fault(
    fault: InputFault,
    input: &mut [f32],
    rng: &mut DetRng,
    injections: &mut Vec<Injection>,
) {
    match fault {
        InputFault::Stuck { index, level, p } => {
            if rng.chance(p) && index < input.len() {
                input[index] = level;
                injections.push(Injection::InputStuck { index });
            }
        }
        InputFault::Noise { sigma, p } => {
            if rng.chance(p) {
                for v in input.iter_mut() {
                    *v += (rng.next_gaussian() * sigma) as f32;
                }
                injections.push(Injection::InputNoise);
            }
        }
        InputFault::Dropout { drop, p } => {
            if rng.chance(p) {
                let mut zeroed = 0u32;
                for v in input.iter_mut() {
                    if rng.chance(drop) {
                        *v = 0.0;
                        zeroed += 1;
                    }
                }
                if zeroed > 0 {
                    injections.push(Injection::InputDropout { zeroed });
                }
            }
        }
    }
}

/// Ground truth: what a plan actually injected on one decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// An input element was forced to its stuck level.
    InputStuck {
        /// Element index.
        index: usize,
    },
    /// Gaussian noise was added to the input.
    InputNoise,
    /// Input elements were dropped.
    InputDropout {
        /// How many elements were zeroed.
        zeroed: u32,
    },
    /// Bits were flipped in an intermediate activation.
    ActivationFlip {
        /// Layer whose output was corrupted.
        layer: usize,
        /// Element index within the activation.
        index: usize,
    },
}

/// Shared, clonable log of injections (ground truth for campaigns).
///
/// The [`crate::harden::HardenedEngine`] pushes every injection it performs
/// here; the campaign runner drains it per decision to know whether a
/// fault was actually active.
#[derive(Debug, Clone, Default)]
pub struct InjectionLog(Arc<Mutex<Vec<Injection>>>);

impl InjectionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one injection.
    pub fn push(&self, injection: Injection) {
        self.0
            .lock()
            .expect("injection log poisoned")
            .push(injection);
    }

    /// Removes and returns everything logged so far.
    pub fn drain(&self) -> Vec<Injection> {
        std::mem::take(&mut *self.0.lock().expect("injection log poisoned"))
    }

    /// Number of injections currently logged.
    pub fn len(&self) -> usize {
        self.0.lock().expect("injection log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelBuilder;
    use safex_tensor::Shape;

    fn model(seed: u64) -> Model {
        let mut rng = DetRng::new(seed);
        ModelBuilder::new(Shape::vector(4))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn weight_flips_are_deterministic() {
        let run = |seed: u64| {
            let mut m = model(1);
            let mut inj = FaultInjector::new(seed);
            let flips = inj.flip_weight_bits(&mut m, 5, 1).unwrap();
            (flips, m.digest())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn weight_flip_changes_exactly_the_recorded_bit() {
        let mut m = model(2);
        let before_digest = m.digest();
        let mut inj = FaultInjector::new(3);
        let flips = inj.flip_weight_bits(&mut m, 1, 1).unwrap();
        assert_eq!(flips.len(), 1);
        let f = flips[0];
        assert_eq!(f.before ^ f.after, 1u32 << f.bit);
        assert_ne!(m.digest(), before_digest);
        assert_eq!(inj.flip_count(), 1);
        // Flipping the same bit back restores the digest.
        let mut restore = FaultInjector::new(3);
        restore.flip_weight_bits(&mut m, 1, 1).unwrap();
        assert_eq!(m.digest(), before_digest);
    }

    #[test]
    fn multi_bit_events_flip_distinct_bits() {
        let mut m = model(4);
        let mut inj = FaultInjector::new(9);
        let flips = inj.flip_weight_bits(&mut m, 1, 3).unwrap();
        assert_eq!(flips.len(), 3);
        let mut bits: Vec<u32> = flips.iter().map(|f| f.bit).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 3, "bits within one event must be distinct");
        assert!(flips.iter().all(|f| f.param == flips[0].param));
    }

    #[test]
    fn qweight_flips_change_quantised_params() {
        let m = model(5);
        let mut q = QModel::quantize(&m).unwrap();
        let pristine = QModel::quantize(&m).unwrap();
        let mut inj = FaultInjector::new(11);
        let flips = inj.flip_qweight_bits(&mut q, 4, 1).unwrap();
        assert_eq!(flips.len(), 4);
        assert_ne!(q, pristine);
    }

    #[test]
    fn validation_rejects_bad_bit_counts() {
        let mut m = model(6);
        let mut inj = FaultInjector::new(0);
        assert!(matches!(
            inj.flip_weight_bits(&mut m, 1, 0),
            Err(NnError::Fault(_))
        ));
        assert!(matches!(
            inj.flip_weight_bits(&mut m, 1, 33),
            Err(NnError::Fault(_))
        ));
    }

    #[test]
    fn plan_validation() {
        assert!(FaultPlan::none(0).validate().is_ok());
        assert!(FaultPlan::input(
            0,
            InputFault::Noise {
                sigma: -1.0,
                p: 0.5
            }
        )
        .validate()
        .is_err());
        assert!(FaultPlan::input(
            0,
            InputFault::Stuck {
                index: 0,
                level: f32::NAN,
                p: 0.5
            }
        )
        .validate()
        .is_err());
        assert!(
            FaultPlan::input(0, InputFault::Dropout { drop: 1.5, p: 0.1 })
                .validate()
                .is_err()
        );
        assert!(
            FaultPlan::activation(0, ActivationFault { p: 2.0, bits: 1 })
                .validate()
                .is_err()
        );
        assert!(
            FaultPlan::activation(0, ActivationFault { p: 0.2, bits: 0 })
                .validate()
                .is_err()
        );
        assert!(
            FaultPlan::activation(0, ActivationFault { p: 0.2, bits: 2 })
                .validate()
                .is_ok()
        );
    }

    #[test]
    fn decision_rng_is_index_keyed() {
        let plan = FaultPlan::none(42);
        let a = plan.decision_rng(3).next_u64();
        let b = plan.decision_rng(3).next_u64();
        let c = plan.decision_rng(4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn apply_weight_flips_reproduces_the_recorded_corruption() {
        let mut struck = model(8);
        let mut replica = struck.clone();
        let mut inj = FaultInjector::new(13);
        let flips = inj.flip_weight_bits(&mut struck, 3, 2).unwrap();
        apply_weight_flips(&mut replica, &flips).unwrap();
        assert_eq!(
            struck.digest(),
            replica.digest(),
            "replaying recorded flips must reproduce the corrupted model"
        );
        // Idempotent: applying the same list again changes nothing.
        apply_weight_flips(&mut replica, &flips).unwrap();
        assert_eq!(struck.digest(), replica.digest());
        // Out-of-range params are rejected, not silently skipped.
        let bogus = WeightFlip {
            layer: 0,
            param: usize::MAX,
            bit: 0,
            before: 0,
            after: 0,
        };
        assert!(apply_weight_flips(&mut replica, &[bogus]).is_err());
    }

    #[test]
    fn preview_input_matches_hardened_engine_view() {
        use crate::harden::{HardenConfig, HardenedEngine};
        use crate::Engine;
        let m = model(7);
        let plan = FaultPlan::input(5, InputFault::Dropout { drop: 0.5, p: 0.8 });
        let config = HardenConfig {
            crc_cadence: 0,
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(m.clone(), config).unwrap();
        hardened.set_plan(plan).unwrap();
        let mut reference = Engine::new(m);
        let input = [0.3f32, -0.4, 0.9, 0.2];
        let mut perturbed = 0;
        for k in 0..12u64 {
            let faulted = plan.preview_input(k, &input);
            if faulted != input {
                perturbed += 1;
            }
            let expected = reference.infer(&faulted).unwrap().to_vec();
            let actual = hardened.infer_indexed(k, &input).unwrap().to_vec();
            assert_eq!(actual, expected, "decision {k}: preview diverged");
        }
        assert!(perturbed > 0, "the 80% dropout fault must fire in 12 tries");
    }

    #[test]
    fn preview_input_without_input_fault_is_identity() {
        let plan = FaultPlan::activation(3, ActivationFault { p: 0.5, bits: 1 });
        let input = [1.0f32, 2.0, 3.0];
        assert_eq!(plan.preview_input(0, &input), input.to_vec());
    }

    #[test]
    fn injection_log_roundtrip() {
        let log = InjectionLog::new();
        assert!(log.is_empty());
        log.push(Injection::InputNoise);
        log.push(Injection::ActivationFlip { layer: 1, index: 2 });
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }
}
