//! Runtime hardening: fault *detection* for the inference stack.
//!
//! [`crate::fault`] puts faults in; this module notices them. Two
//! mechanisms, both cheap enough for the deployed hot path:
//!
//! * **Weight checksums** — a CRC-32 over every parametric layer's
//!   buffers, captured at construction ("golden") and re-verified on a
//!   configurable decision cadence. Any weight bit-flip makes the next
//!   scheduled check fail.
//! * **Activation range guards** — per-layer `[lo, hi]` envelopes learned
//!   from calibration data ([`ActivationGuard::calibrate`]) and widened by
//!   a slack factor. Corrupted activations that leave the envelope, and
//!   any non-finite value, are flagged on the decision they occur.
//!
//! Detections surface as typed [`HealthEvent`]s rather than silent wrong
//! answers; a [`HealthSink`] carries them out of the engine to whoever
//! owns the safety argument (in `safex-core`, the `HealthMonitor`).
//!
//! [`HardenedEngine`] mirrors [`Engine`] (ping-pong buffers, no hot-path
//! allocation beyond event reporting) and [`HardenedPool`] mirrors
//! [`crate::EnginePool`]. Per-decision work — injections from an attached
//! [`FaultPlan`] and every detection — is keyed by a global *decision
//! index*, so pooled execution is bit-identical to sequential execution
//! for any worker count.
//!
//! [`Engine`]: crate::Engine

use std::sync::{Arc, Mutex};

use safex_tensor::{CrcAccumulator, DenseKernel, WeightDigest};

use crate::ecc::{EccCode, EccConfig, RepairOutcome};
use crate::engine::{run_layer, run_layer_digest, Classification, Engine};
use crate::error::NnError;
use crate::fault::{apply_input_fault, FaultPlan, Injection, InjectionLog};
use crate::layer::Layer;
use crate::model::Model;
use crate::pool::run_partitioned;

/// A detected anomaly, typed so consumers can weigh classes differently.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum HealthEvent {
    /// A parametric layer's CRC no longer matches its golden value.
    ChecksumMismatch {
        /// Layer whose parameters changed.
        layer: usize,
        /// Golden CRC-32 captured at construction (or last rebaseline).
        expected: u32,
        /// CRC-32 of the parameters as they are now.
        actual: u32,
        /// Worst-case decisions between the corrupting write and this
        /// check, from the engine's [`CrcStrategy`]: `cadence` for
        /// [`CrcStrategy::Full`], `cadence × parametric layer count` for
        /// [`CrcStrategy::Rotating`]. Campaigns use it to account for
        /// delayed detection honestly instead of assuming latency 0.
        staleness: u64,
    },
    /// An activation left its calibrated envelope.
    ActivationOutOfRange {
        /// Layer whose output violated the envelope.
        layer: usize,
        /// First offending element index.
        index: usize,
        /// The offending value.
        value: f32,
        /// Envelope lower bound.
        lo: f32,
        /// Envelope upper bound.
        hi: f32,
    },
    /// An activation became NaN or infinite.
    NonFiniteActivation {
        /// Layer whose output is non-finite.
        layer: usize,
        /// First offending element index.
        index: usize,
    },
    /// An input element is NaN or infinite (sensor garbage).
    NonFiniteInput {
        /// First offending element index.
        index: usize,
    },
    /// A Q16.16 activation railed at the format's representable extreme —
    /// the fixed-point analogue of a non-finite float (raised by the
    /// quantised hardened engine, [`crate::qharden::HardenedQEngine`]).
    SaturatedActivation {
        /// Layer whose output saturated.
        layer: usize,
        /// First offending element index.
        index: usize,
    },
    /// An external (pillar-1) supervisor rejected the decision's input —
    /// e.g. an ODD envelope or distance monitor flagging out-of-domain
    /// sensor data before inference runs.
    SupervisorReject {
        /// Stable name of the supervisor that fired.
        monitor: &'static str,
    },
    /// A parametric layer's CRC mismatched, the ECC sidecar localised a
    /// single flipped bit, the bit was corrected in place, and the layer
    /// CRC re-verified against golden. The fault is *gone* — consumers
    /// should treat this as a warning (the memory took a hit) rather
    /// than an escalation (see `HealthConfig::warn_budget` in
    /// `safex-core`). Uncorrectable damage keeps raising
    /// [`HealthEvent::ChecksumMismatch`].
    CorrectedFault {
        /// Layer whose parameters were repaired.
        layer: usize,
        /// Index of the repaired 32-bit word within the layer's
        /// concatenated weight+bias stream.
        word: usize,
        /// Bit position (0..32) that was flipped back.
        bit: u32,
        /// Same worst-case exposure bound as
        /// [`HealthEvent::ChecksumMismatch`]: decisions the corrupted
        /// word could have influenced before this check repaired it.
        staleness: u64,
    },
}

impl HealthEvent {
    /// Stable tag for logging and evidence records.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthEvent::ChecksumMismatch { .. } => "checksum_mismatch",
            HealthEvent::ActivationOutOfRange { .. } => "activation_out_of_range",
            HealthEvent::NonFiniteActivation { .. } => "non_finite_activation",
            HealthEvent::NonFiniteInput { .. } => "non_finite_input",
            HealthEvent::SaturatedActivation { .. } => "saturated_activation",
            HealthEvent::SupervisorReject { .. } => "supervisor_reject",
            HealthEvent::CorrectedFault { .. } => "corrected_fault",
        }
    }
}

impl std::fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthEvent::ChecksumMismatch {
                layer,
                expected,
                actual,
                staleness,
            } => write!(
                f,
                "layer {layer} checksum mismatch: expected {expected:#010x}, got {actual:#010x} \
                 (staleness bound {staleness} decisions)"
            ),
            HealthEvent::ActivationOutOfRange {
                layer,
                index,
                value,
                lo,
                hi,
            } => write!(
                f,
                "layer {layer} activation[{index}] = {value} outside [{lo}, {hi}]"
            ),
            HealthEvent::NonFiniteActivation { layer, index } => {
                write!(f, "layer {layer} activation[{index}] is non-finite")
            }
            HealthEvent::NonFiniteInput { index } => {
                write!(f, "input[{index}] is non-finite")
            }
            HealthEvent::SaturatedActivation { layer, index } => {
                write!(f, "layer {layer} activation[{index}] saturated Q16.16")
            }
            HealthEvent::SupervisorReject { monitor } => {
                write!(f, "supervisor {monitor} rejected the input")
            }
            HealthEvent::CorrectedFault {
                layer,
                word,
                bit,
                staleness,
            } => write!(
                f,
                "layer {layer} word {word} bit {bit} corrected by ECC sidecar \
                 (staleness bound {staleness} decisions)"
            ),
        }
    }
}

/// Shared, clonable channel carrying [`HealthEvent`]s out of an engine.
///
/// The engine pushes; the pipeline/health-monitor side drains once per
/// decision. Cloning shares the underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct HealthSink(Arc<Mutex<Vec<HealthEvent>>>);

impl HealthSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&self, event: HealthEvent) {
        self.0.lock().expect("health sink poisoned").push(event);
    }

    /// Appends a batch of events.
    pub fn extend(&self, events: &[HealthEvent]) {
        self.0
            .lock()
            .expect("health sink poisoned")
            .extend_from_slice(events);
    }

    /// Removes and returns everything currently queued.
    pub fn drain(&self) -> Vec<HealthEvent> {
        std::mem::take(&mut *self.0.lock().expect("health sink poisoned"))
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.0.lock().expect("health sink poisoned").len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The CRC-32 primitives moved to `safex_tensor::crc` in PR 8 so the
// fused verify-on-read kernels can accumulate them inside the matmul
// sweep; re-exported here unchanged for every existing caller.
pub use safex_tensor::crc::{crc32, crc32_words};

/// The parametric buffers checksums cover, if the layer has any.
fn parametric_buffers(layer: &Layer) -> Option<(&[f32], &[f32])> {
    match layer {
        Layer::Dense(d) => Some((d.weights(), d.bias())),
        Layer::Conv2d(c) => Some((c.weights(), c.bias())),
        _ => None,
    }
}

/// Mutable view of the buffers [`parametric_buffers`] covers (repair
/// write-back path).
fn parametric_buffers_mut(layer: &mut Layer) -> Option<(&mut [f32], &mut [f32])> {
    match layer {
        Layer::Dense(d) => Some((&mut d.weights, &mut d.bias)),
        Layer::Conv2d(c) => Some((&mut c.weights, &mut c.bias)),
        _ => None,
    }
}

/// Encodes one ECC sidecar per golden (checksummed) layer, over the same
/// concatenated weight+bias word stream the CRC covers.
fn encode_sidecars(
    model: &Model,
    golden: &[(usize, u32)],
    config: EccConfig,
) -> Result<Vec<EccCode>, NnError> {
    golden
        .iter()
        .map(|&(layer, _)| {
            let (weights, bias) = parametric_buffers(&model.layers()[layer])
                .expect("golden entries index parametric layers");
            let words: Vec<u32> = weights.iter().chain(bias).map(|v| v.to_bits()).collect();
            EccCode::encode(&words, config)
        })
        .collect()
}

/// CRC-32 of one layer's parameters (`None` for non-parametric layers).
///
/// Runs the slice fast path ([`CrcAccumulator`]) over the weight and
/// bias buffers instead of a chained per-word iterator; the value is
/// bit-identical to `crc32_words` over the concatenated word stream.
pub fn layer_checksum(layer: &Layer) -> Option<u32> {
    parametric_buffers(layer).map(|(weights, bias)| {
        let mut acc = CrcAccumulator::new();
        acc.update_f32(weights);
        acc.update_f32(bias);
        acc.finish().crc
    })
}

/// CRC-32 of every parametric layer: `(layer index, crc)` pairs.
///
/// Covers dense and convolution weights and biases — the buffers
/// [`crate::fault::FaultInjector`] can hit. Frozen batch-norm is excluded
/// (execution reads its precomputed scale/shift, which the injector never
/// touches).
pub fn layer_checksums(model: &Model) -> Vec<(usize, u32)> {
    model
        .layers()
        .iter()
        .enumerate()
        .filter_map(|(i, layer)| layer_checksum(layer).map(|crc| (i, crc)))
        .collect()
}

/// Per-layer activation envelopes learned from calibration data.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationGuard {
    /// `(lo, hi)` per layer, input excluded, already slack-widened.
    ranges: Vec<(f32, f32)>,
}

impl ActivationGuard {
    /// Learns envelopes by tracing the *clean* model over calibration
    /// inputs and widening each layer's observed `[min, max]` by
    /// `slack × span` on both sides.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] for an empty calibration set or an
    /// invalid slack, and propagates inference errors on bad inputs.
    pub fn calibrate<I: AsRef<[f32]>>(
        model: &Model,
        inputs: &[I],
        slack: f32,
    ) -> Result<Self, NnError> {
        if inputs.is_empty() {
            return Err(NnError::Fault("calibration set is empty".into()));
        }
        if !slack.is_finite() || slack < 0.0 {
            return Err(NnError::Fault(format!(
                "guard slack must be finite and non-negative, got {slack}"
            )));
        }
        let mut engine = Engine::new(model.clone());
        let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); model.len()];
        for input in inputs {
            let traced = engine.infer_traced(input.as_ref())?;
            for (range, act) in ranges.iter_mut().zip(&traced) {
                for &v in act.as_slice() {
                    if !v.is_finite() {
                        return Err(NnError::Fault(
                            "calibration produced a non-finite activation".into(),
                        ));
                    }
                    range.0 = range.0.min(v);
                    range.1 = range.1.max(v);
                }
            }
        }
        for range in &mut ranges {
            let span = (range.1 - range.0).max(1e-6);
            range.0 -= slack * span;
            range.1 += slack * span;
        }
        Ok(ActivationGuard { ranges })
    }

    /// The widened `(lo, hi)` envelope per layer.
    pub fn ranges(&self) -> &[(f32, f32)] {
        &self.ranges
    }

    /// Checks one layer's activation, reporting at most one event (the
    /// first offending element) to bound per-decision event volume.
    fn check(&self, layer: usize, activation: &[f32], events: &mut Vec<HealthEvent>) {
        let (lo, hi) = self.ranges[layer];
        // Branch-free pass/fail reduction first (`&`, not `&&`, keeps
        // the clean common case free of per-element branches so it
        // auto-vectorizes); the offending element is located — and
        // classified as non-finite vs out-of-range — only on failure.
        let mut ok = true;
        for &value in activation {
            ok &= value.is_finite() & (value >= lo) & (value <= hi);
        }
        if ok {
            return;
        }
        for (index, &value) in activation.iter().enumerate() {
            if !value.is_finite() {
                events.push(HealthEvent::NonFiniteActivation { layer, index });
                return;
            }
            if value < lo || value > hi {
                events.push(HealthEvent::ActivationOutOfRange {
                    layer,
                    index,
                    value,
                    lo,
                    hi,
                });
                return;
            }
        }
    }
}

/// How much of the model each scheduled CRC verification covers.
///
/// The trade is per-decision cost against detection staleness:
/// [`CrcStrategy::Full`] re-checksums *every* parametric layer on each
/// cadence tick (O(total params) per verifying decision, staleness ≤
/// cadence); [`CrcStrategy::Rotating`] verifies *one* layer per tick in
/// round-robin (O(largest layer) per verifying decision, staleness ≤
/// cadence × parametric layer count); [`CrcStrategy::Fused`] covers the
/// whole model like `Full` but accumulates the digests *inside* the
/// layer kernels, riding the memory traffic inference pays anyway. The
/// rotation cursor is derived purely from the global decision index, so
/// pooled and sequential runs of the same decision check the same layer
/// — determinism survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrcStrategy {
    /// Verify every parametric layer on each cadence tick (the original
    /// behavior, and still the default).
    #[default]
    Full,
    /// Verify one parametric layer per cadence tick, round-robin by
    /// `(decision_index / cadence) % parametric_layer_count`.
    Rotating,
    /// Verify every parametric layer on each cadence tick, like `Full`,
    /// but fused into the layer kernels: the CRC-32 word stream (and the
    /// ECC parity signature) accumulates over weights and bias in the
    /// exact traversal order the matmul streams them, so a verifying
    /// decision pays one parameter sweep instead of two. Verdicts,
    /// events, event order, and the staleness bound are identical to
    /// `Full`; the parity cross-check can additionally flag corruption
    /// that a CRC collision would hide.
    Fused,
}

/// Detection settings for a [`HardenedEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardenConfig {
    /// Re-verify weight checksums when `decision_index % crc_cadence == 0`
    /// (0 disables checksum verification). Default 1: every decision.
    pub crc_cadence: u64,
    /// How much of the model each scheduled verification covers.
    /// Default [`CrcStrategy::Full`].
    pub crc_strategy: CrcStrategy,
    /// Envelope widening used by [`HardenedEngine::calibrate`]: each
    /// calibrated layer range grows by `slack × span` on both sides.
    /// Default 0.5.
    pub guard_slack: f32,
    /// Detect-*and-correct*: when set, the engine encodes an ECC sidecar
    /// ([`EccCode`]) over every checksummed layer at construction and, on
    /// a scheduled CRC mismatch, corrects a localised single-bit flip in
    /// place (re-verified against the golden CRC) instead of escalating —
    /// raising [`HealthEvent::CorrectedFault`] rather than
    /// [`HealthEvent::ChecksumMismatch`]. `None` (the default) keeps the
    /// detect-only behavior bit-for-bit.
    pub repair: Option<EccConfig>,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            crc_cadence: 1,
            crc_strategy: CrcStrategy::Full,
            guard_slack: 0.5,
            repair: None,
        }
    }
}

impl HardenConfig {
    pub(crate) fn validate(&self) -> Result<(), NnError> {
        if !self.guard_slack.is_finite() || self.guard_slack < 0.0 {
            return Err(NnError::Fault(format!(
                "guard slack must be finite and non-negative, got {}",
                self.guard_slack
            )));
        }
        if let Some(ecc) = &self.repair {
            ecc.validate()?;
        }
        Ok(())
    }

    /// Worst-case decisions between a parameter corruption and the check
    /// that would detect it, for a model with `parametric_layers`
    /// checksummed layers. `None` when checksum verification is disabled
    /// (`crc_cadence == 0`) or there is nothing to checksum.
    pub fn staleness_bound(&self, parametric_layers: usize) -> Option<u64> {
        if self.crc_cadence == 0 || parametric_layers == 0 {
            return None;
        }
        Some(match self.crc_strategy {
            CrcStrategy::Full | CrcStrategy::Fused => self.crc_cadence,
            CrcStrategy::Rotating => self.crc_cadence * parametric_layers as u64,
        })
    }
}

/// An [`Engine`]-shaped executor with built-in fault injection and
/// detection.
///
/// Same ping-pong buffer discipline as [`Engine`]; additionally, per
/// decision it (1) applies the attached [`FaultPlan`], (2) verifies
/// weight checksums on the configured cadence, and (3) runs the
/// activation guard. Detections land in [`HardenedEngine::last_events`]
/// and, when attached, a shared [`HealthSink`]; injections land in
/// [`HardenedEngine::last_injections`] and an optional [`InjectionLog`]
/// (campaign ground truth).
///
/// Everything per-decision is keyed by a monotonically increasing decision
/// index (or an explicit one via the `*_indexed` methods), making runs a
/// pure function of `(model, plan, index, input)`.
#[derive(Debug, Clone)]
pub struct HardenedEngine {
    model: Model,
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
    golden: Vec<(usize, u32)>,
    sidecars: Vec<EccCode>,
    config: HardenConfig,
    guard: Option<ActivationGuard>,
    plan: Option<FaultPlan>,
    sink: Option<HealthSink>,
    log: Option<InjectionLog>,
    events: Vec<HealthEvent>,
    injections: Vec<Injection>,
    decisions: u64,
    events_seen: u64,
    /// Decisions `< synced_to` have had their scheduled repairs applied to
    /// *this* replica's weights. Only meaningful when repair is enabled;
    /// lets a pooled replica serving a non-contiguous index stream replay
    /// the silent repairs the sequential reference performed in between.
    synced_to: u64,
    kernel: DenseKernel,
    /// [`HardenConfig::staleness_bound`] evaluated once at construction
    /// (and on rebaseline) — it is pure in `(config, golden.len())`, both
    /// fixed between rebaselines, and the hot path reads it on every
    /// emission.
    staleness_cached: Option<u64>,
}

impl HardenedEngine {
    /// Creates a hardened engine, capturing golden checksums from the
    /// (presumed pristine) model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] on an invalid config.
    pub fn new(model: Model, config: HardenConfig) -> Result<Self, NnError> {
        config.validate()?;
        let cap = model.max_activation_len();
        let golden = layer_checksums(&model);
        let sidecars = match config.repair {
            Some(ecc) => encode_sidecars(&model, &golden, ecc)?,
            None => Vec::new(),
        };
        let staleness_cached = config.staleness_bound(golden.len());
        Ok(HardenedEngine {
            model,
            buf_a: vec![0.0; cap],
            buf_b: vec![0.0; cap],
            golden,
            sidecars,
            config,
            guard: None,
            plan: None,
            sink: None,
            log: None,
            events: Vec::new(),
            injections: Vec::new(),
            decisions: 0,
            events_seen: 0,
            synced_to: 0,
            kernel: DenseKernel::Exact,
            staleness_cached,
        })
    }

    /// Selects the dense-kernel strategy (default [`DenseKernel::Exact`]).
    ///
    /// The chunked kernel is deterministic for any worker count but not
    /// bit-identical to `Exact`; switch it only together with whatever
    /// reference engine the campaign scores against.
    pub fn set_kernel(&mut self, kernel: DenseKernel) {
        self.kernel = kernel;
    }

    /// The dense-kernel strategy this engine executes with.
    pub fn kernel(&self) -> DenseKernel {
        self.kernel
    }

    /// Worst-case decisions between a parameter corruption and detection
    /// under the configured cadence and [`CrcStrategy`] (`None` when
    /// checksums are disabled). Cached at construction; both inputs
    /// (config, golden layer count) only change on rebaseline.
    pub fn staleness_bound(&self) -> Option<u64> {
        self.staleness_cached
    }

    /// Learns activation envelopes from clean calibration inputs using the
    /// configured slack.
    ///
    /// # Errors
    ///
    /// See [`ActivationGuard::calibrate`].
    pub fn calibrate<I: AsRef<[f32]>>(&mut self, inputs: &[I]) -> Result<(), NnError> {
        self.guard = Some(ActivationGuard::calibrate(
            &self.model,
            inputs,
            self.config.guard_slack,
        )?);
        Ok(())
    }

    /// Installs a pre-calibrated guard.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] if the guard's layer count does not
    /// match the model.
    pub fn set_guard(&mut self, guard: ActivationGuard) -> Result<(), NnError> {
        if guard.ranges.len() != self.model.len() {
            return Err(NnError::Fault(format!(
                "guard covers {} layers but model has {}",
                guard.ranges.len(),
                self.model.len()
            )));
        }
        self.guard = Some(guard);
        Ok(())
    }

    /// Attaches a per-decision fault plan (validated).
    ///
    /// # Errors
    ///
    /// See [`FaultPlan::validate`].
    pub fn set_plan(&mut self, plan: FaultPlan) -> Result<(), NnError> {
        plan.validate()?;
        self.plan = Some(plan);
        Ok(())
    }

    /// Attaches a shared sink that receives every [`HealthEvent`].
    pub fn attach_sink(&mut self, sink: HealthSink) {
        self.sink = Some(sink);
    }

    /// Attaches a shared log that receives every [`Injection`].
    pub fn attach_injection_log(&mut self, log: InjectionLog) {
        self.log = Some(log);
    }

    /// Drops shared observers (pool replicas report per-result instead).
    pub fn detach_observers(&mut self) {
        self.sink = None;
        self.log = None;
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Mutable model access — the fault-injection hook. Golden checksums
    /// deliberately do *not* follow: a mutation here is exactly what the
    /// checksum verification exists to catch. After a legitimate model
    /// update call [`HardenedEngine::rebaseline`].
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Re-captures golden checksums (and, when repair is enabled, ECC
    /// sidecars) from the current parameters.
    pub fn rebaseline(&mut self) {
        self.golden = layer_checksums(&self.model);
        if let Some(ecc) = self.config.repair {
            self.sidecars = encode_sidecars(&self.model, &self.golden, ecc)
                .expect("ecc config was validated at construction");
        }
        self.staleness_cached = self.config.staleness_bound(self.golden.len());
    }

    /// ECC sidecar memory as a fraction of the protected parameter bits
    /// (e.g. `0.0625` ≈ 6.25 %). `None` when repair is disabled or there
    /// is nothing to protect.
    pub fn sidecar_overhead(&self) -> Option<f64> {
        if self.sidecars.is_empty() {
            return None;
        }
        let sidecar: u64 = self.sidecars.iter().map(EccCode::sidecar_bits).sum();
        let data: u64 = self
            .sidecars
            .iter()
            .map(|c| c.protected_words() as u64 * 32)
            .sum();
        if data == 0 {
            return None;
        }
        Some(sidecar as f64 / data as f64)
    }

    /// Declares that every scheduled repair before `index` is already
    /// reflected in this replica's weights (pool dispatch calls this with
    /// the batch base: replicas are re-synchronised at batch boundaries,
    /// which is also the only point strikes can legally land).
    pub(crate) fn sync_to(&mut self, index: u64) {
        self.synced_to = self.synced_to.max(index);
    }

    /// Replays the silent repairs a sequential engine would have applied
    /// on the scheduled checks in `[synced_to, index)` — the catch-up that
    /// keeps a pooled replica's weights byte-identical to the sequential
    /// reference before it executes decision `index`.
    fn catch_up(&mut self, index: u64) {
        let cadence = self.config.crc_cadence;
        let t0 = self.synced_to.div_ceil(cadence);
        let t1 = index.div_ceil(cadence);
        if t0 >= t1 {
            return;
        }
        match self.config.crc_strategy {
            // Fused covers the whole model per tick exactly like Full, so
            // the catch-up replay is identical.
            CrcStrategy::Full | CrcStrategy::Fused => {
                for gi in 0..self.golden.len() {
                    self.silent_repair(gi);
                }
            }
            CrcStrategy::Rotating => {
                let len = self.golden.len() as u64;
                if t1 - t0 >= len {
                    for gi in 0..self.golden.len() {
                        self.silent_repair(gi);
                    }
                } else {
                    for t in t0..t1 {
                        self.silent_repair((t % len) as usize);
                    }
                }
            }
        }
    }

    /// Repairs golden slot `gi` if its CRC mismatches, without reporting:
    /// the replica that owns the scheduled check emits the event; this is
    /// only weight-state reconciliation.
    fn silent_repair(&mut self, gi: usize) {
        let (layer, expected) = self.golden[gi];
        let actual = layer_checksum(&self.model.layers()[layer])
            .expect("golden entries index parametric layers");
        if expected != actual {
            self.attempt_repair(gi);
        }
    }

    /// Runs one scheduled CRC check over golden slot `gi`, attempting an
    /// in-place ECC repair before escalating when repair is enabled.
    fn check_slot(&mut self, gi: usize, staleness: u64) {
        let (layer, expected) = self.golden[gi];
        let actual = layer_checksum(&self.model.layers()[layer])
            .expect("golden entries index parametric layers");
        if expected == actual {
            return;
        }
        if self.config.repair.is_some() {
            if let Some((word, bit)) = self.attempt_repair(gi) {
                self.events.push(HealthEvent::CorrectedFault {
                    layer,
                    word,
                    bit,
                    staleness,
                });
                return;
            }
        }
        self.events.push(HealthEvent::ChecksumMismatch {
            layer,
            expected,
            actual,
            staleness,
        });
    }

    /// Tries to ECC-correct golden slot `gi`'s parameters. Writes back
    /// exactly one word — and only after the corrected stream re-verifies
    /// against the golden CRC — returning the `(word, bit)` that was
    /// restored. `None` leaves the model untouched (uncorrectable damage,
    /// or ≥ 3 flips forging a single-flip signature that the CRC
    /// re-verification rejects).
    fn attempt_repair(&mut self, gi: usize) -> Option<(usize, u32)> {
        let (layer, expected) = self.golden[gi];
        let sidecar = &self.sidecars[gi];
        let (weights, bias) = parametric_buffers(&self.model.layers()[layer])
            .expect("golden entries index parametric layers");
        let n_weights = weights.len();
        let mut words: Vec<u32> = weights.iter().chain(bias).map(|v| v.to_bits()).collect();
        match sidecar.repair(&mut words) {
            RepairOutcome::Corrected { word, bit } => {
                if crc32_words(words.iter().copied()) != expected {
                    return None;
                }
                let repaired = f32::from_bits(words[word]);
                let (weights, bias) = parametric_buffers_mut(&mut self.model.layers_mut()[layer])
                    .expect("golden entries index parametric layers");
                if word < n_weights {
                    weights[word] = repaired;
                } else {
                    bias[word - n_weights] = repaired;
                }
                Some((word, bit))
            }
            RepairOutcome::Clean | RepairOutcome::Uncorrectable => None,
        }
    }

    /// Golden `(layer, crc)` pairs currently enforced.
    pub fn golden_checksums(&self) -> &[(usize, u32)] {
        &self.golden
    }

    /// Verifies the current parameters against the golden baseline as a
    /// pure read: every protected layer's CRC-32 must match its golden
    /// checksum and, when repair is enabled, every ECC sidecar's parities
    /// must describe the layer's words ([`EccCode::check`]). This is the
    /// hot-swap gate — run after [`HardenedEngine::rebaseline`] on
    /// incoming weights it confirms the re-golden is self-consistent
    /// (e.g. no non-finite encoding surprise); run at any other time it
    /// detects corruption that landed between scheduled checks. Nothing
    /// is repaired or escalated.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] naming the first layer whose CRC or
    /// sidecar parity disagrees.
    pub fn verify_weights(&self) -> Result<(), NnError> {
        for (gi, &(layer, expected)) in self.golden.iter().enumerate() {
            let (weights, bias) = parametric_buffers(&self.model.layers()[layer])
                .expect("golden entries index parametric layers");
            let words: Vec<u32> = weights.iter().chain(bias).map(|v| v.to_bits()).collect();
            let actual = crc32_words(words.iter().copied());
            if actual != expected {
                return Err(NnError::Fault(format!(
                    "layer {layer} crc mismatch: golden {expected:#010x}, actual {actual:#010x}"
                )));
            }
            if self.config.repair.is_some() && !self.sidecars[gi].check(&words) {
                return Err(NnError::Fault(format!(
                    "layer {layer} ecc sidecar parity disagrees with weights"
                )));
            }
        }
        Ok(())
    }

    /// Decisions completed via [`HardenedEngine::infer`] /
    /// [`HardenedEngine::classify`].
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Total health events raised since construction.
    pub fn event_count(&self) -> u64 {
        self.events_seen
    }

    /// Events raised by the most recent decision.
    pub fn last_events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Injections performed by the most recent decision.
    pub fn last_injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Runs one decision at the engine's own monotone index.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer(&mut self, input: &[f32]) -> Result<&[f32], NnError> {
        let index = self.decisions;
        let (len, in_a) = self.run(index, input)?;
        self.decisions += 1;
        let buf = if in_a { &self.buf_a } else { &self.buf_b };
        Ok(&buf[..len])
    }

    /// Runs one decision at an explicit global index (pool path).
    ///
    /// Does not advance the engine's own counter.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn infer_indexed(&mut self, index: u64, input: &[f32]) -> Result<&[f32], NnError> {
        let (len, in_a) = self.run(index, input)?;
        let buf = if in_a { &self.buf_a } else { &self.buf_b };
        Ok(&buf[..len])
    }

    /// Classification convenience over [`HardenedEngine::infer`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify(&mut self, input: &[f32]) -> Result<Classification, NnError> {
        let index = self.decisions;
        let c = self.classify_indexed(index, input)?;
        self.decisions += 1;
        Ok(c)
    }

    /// Classification at an explicit global index (pool path).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] on a wrong-sized input.
    pub fn classify_indexed(
        &mut self,
        index: u64,
        input: &[f32],
    ) -> Result<Classification, NnError> {
        let out = self.infer_indexed(index, input)?;
        let mut best = Classification {
            class: 0,
            confidence: f32::NEG_INFINITY,
        };
        for (i, &v) in out.iter().enumerate() {
            if v > best.confidence {
                best = Classification {
                    class: i,
                    confidence: v,
                };
            }
        }
        Ok(best)
    }

    /// The core decision: inject → execute → detect.
    ///
    /// Under [`CrcStrategy::Fused`] a cadence tick verifies *inside* the
    /// layer loop: the fused kernels accumulate each parametric layer's
    /// CRC/parity digest in the exact order the matmul streams the
    /// weights, and the digests are judged after the loop (spliced into
    /// the event position the pre-pass check would have used, so event
    /// order matches `Full`). When an ECC repair corrects a fault found
    /// this way, the decision re-runs once on the repaired weights —
    /// `Full` repairs *before* its layer loop, so the re-run is what
    /// keeps outputs bit-identical. The repaired weights are verified,
    /// so the re-run uses the plain kernels.
    fn run(&mut self, index: u64, input: &[f32]) -> Result<(usize, bool), NnError> {
        if input.len() != self.model.input_shape().len() {
            return Err(NnError::InputShape {
                expected: self.model.input_shape(),
                actual: input.len(),
            });
        }
        let crc_scheduled = self.config.crc_cadence > 0 && !self.golden.is_empty();
        let on_tick = crc_scheduled && index.is_multiple_of(self.config.crc_cadence);
        let mut verify_in_pass = on_tick && self.config.crc_strategy == CrcStrategy::Fused;
        let mut first_attempt = true;
        // CRC events found in-pass, carried across a repair re-run.
        let mut crc_events: Vec<HealthEvent> = Vec::new();

        let (out_len, out_in_a) = loop {
            self.events.clear();
            self.injections.clear();
            self.buf_a[..input.len()].copy_from_slice(input);

            // One fault stream per decision, derived from (plan seed,
            // index): the sequence of draws below is fixed, so pooled and
            // sequential replays of the same decision are identical — as
            // is a fused repair re-run.
            let mut fault_rng = self.plan.map(|p| p.decision_rng(index));
            if let (Some(plan), Some(rng)) = (self.plan, fault_rng.as_mut()) {
                if let Some(fault) = plan.input {
                    apply_input_fault(
                        fault,
                        &mut self.buf_a[..input.len()],
                        rng,
                        &mut self.injections,
                    );
                }
            }
            // Branch-free finiteness reduction: the all-finite common
            // case auto-vectorizes; the offending index is located only
            // once a fault is known to exist.
            let mut all_finite = true;
            for &v in &self.buf_a[..input.len()] {
                all_finite &= v.is_finite();
            }
            if !all_finite {
                if let Some(i) = self.buf_a[..input.len()]
                    .iter()
                    .position(|v| !v.is_finite())
                {
                    self.events.push(HealthEvent::NonFiniteInput { index: i });
                }
            }

            if crc_scheduled && first_attempt {
                // With repair enabled, first replay the silent repairs any
                // scheduled checks in `[synced_to, index)` would have
                // applied — a pooled replica may be served a
                // non-contiguous index stream, and its weights must match
                // the sequential reference *before* the layer loop reads
                // them. Sequentially, `synced_to == index` and this is a
                // no-op.
                if self.config.repair.is_some() {
                    self.catch_up(index);
                }
                if on_tick {
                    // The staleness bound is Some whenever we get here
                    // (cadence and golden are both non-zero).
                    let staleness = self.staleness_bound().unwrap_or(0);
                    match self.config.crc_strategy {
                        CrcStrategy::Full => {
                            for gi in 0..self.golden.len() {
                                self.check_slot(gi, staleness);
                            }
                        }
                        CrcStrategy::Rotating => {
                            // Cursor derived from the global decision
                            // index, never from engine-local state: pooled
                            // replicas replaying the same decision verify
                            // the same layer.
                            let tick = index / self.config.crc_cadence;
                            let slot = (tick % self.golden.len() as u64) as usize;
                            self.check_slot(slot, staleness);
                        }
                        // Verified inside the layer loop below.
                        CrcStrategy::Fused => {}
                    }
                }
                self.synced_to = self.synced_to.max(index + 1);
            }
            // Where the pre-pass check would have emitted: in-pass CRC
            // events splice in here so event order matches `Full`.
            let splice_at = self.events.len();

            let activation_fault = self.plan.and_then(|p| p.activation);
            let mut cur_shape = self.model.input_shape();
            let mut cur_in_a = true;
            // In-pass digests, one per parametric layer. The layer loop
            // visits parametric layers in ascending order — the same
            // order `layer_checksums` built `golden` in — so `sweep[gi]`
            // judges golden slot `gi`.
            let mut sweep: Vec<WeightDigest> = Vec::new();
            for (i, layer) in self.model.layers().iter().enumerate() {
                let out_shape = self
                    .model
                    .layer_output_shape(i)
                    .expect("layer index in range");
                let (src, dst) = if cur_in_a {
                    (&self.buf_a, &mut self.buf_b)
                } else {
                    (&self.buf_b, &mut self.buf_a)
                };
                let dst = &mut dst[..out_shape.len()];
                if verify_in_pass {
                    if let Some(digest) = run_layer_digest(
                        layer,
                        &src[..cur_shape.len()],
                        dst,
                        &cur_shape,
                        self.kernel,
                    )? {
                        sweep.push(digest);
                    }
                } else {
                    run_layer(layer, &src[..cur_shape.len()], dst, &cur_shape, self.kernel)?;
                }
                if let (Some(fault), Some(rng)) = (activation_fault, fault_rng.as_mut()) {
                    if rng.chance(fault.p) {
                        let element = rng.below_usize(dst.len());
                        let mut bits = dst[element].to_bits();
                        for b in rng.sample_indices(32, fault.bits as usize) {
                            bits ^= 1u32 << b;
                        }
                        dst[element] = f32::from_bits(bits);
                        self.injections.push(Injection::ActivationFlip {
                            layer: i,
                            index: element,
                        });
                    }
                }
                if let Some(guard) = &self.guard {
                    guard.check(i, dst, &mut self.events);
                }
                cur_shape = out_shape;
                cur_in_a = !cur_in_a;
            }

            if verify_in_pass {
                let staleness = self.staleness_bound().unwrap_or(0);
                let mut repaired = false;
                for (gi, digest) in sweep.iter().enumerate() {
                    let (layer, expected) = self.golden[gi];
                    // The parity signature rides the same sweep; it can
                    // only disagree while the CRC matches on a CRC
                    // collision, so checking both strictly tightens
                    // detection relative to `Full` without ever changing
                    // a verdict `Full` would give.
                    let parity_ok = self
                        .sidecars
                        .get(gi)
                        .is_none_or(|s| s.parity_signature() == digest.parity);
                    if digest.crc == expected && parity_ok {
                        continue;
                    }
                    if self.config.repair.is_some() {
                        if let Some((word, bit)) = self.attempt_repair(gi) {
                            crc_events.push(HealthEvent::CorrectedFault {
                                layer,
                                word,
                                bit,
                                staleness,
                            });
                            repaired = true;
                            continue;
                        }
                    }
                    crc_events.push(HealthEvent::ChecksumMismatch {
                        layer,
                        expected,
                        actual: digest.crc,
                        staleness,
                    });
                }
                if repaired {
                    // The layer loop above consumed pre-repair weights;
                    // re-run the decision on the corrected parameters so
                    // the output matches `Full`, which repairs before its
                    // layer loop ever runs.
                    verify_in_pass = false;
                    first_attempt = false;
                    continue;
                }
            }
            self.events
                .splice(splice_at..splice_at, crc_events.drain(..));

            // Without a guard, still refuse to stay silent on a
            // non-finite final activation.
            if self.guard.is_none() {
                let out = if cur_in_a { &self.buf_a } else { &self.buf_b };
                if let Some((index, _)) = out[..cur_shape.len()]
                    .iter()
                    .enumerate()
                    .find(|(_, v)| !v.is_finite())
                {
                    self.events.push(HealthEvent::NonFiniteActivation {
                        layer: self.model.len() - 1,
                        index,
                    });
                }
            }

            break (cur_shape.len(), cur_in_a);
        };

        self.events_seen += self.events.len() as u64;
        if let Some(sink) = &self.sink {
            sink.extend(&self.events);
        }
        if let Some(log) = &self.log {
            for &injection in &self.injections {
                log.push(injection);
            }
        }
        Ok((out_len, out_in_a))
    }
}

/// One pooled result: the classification plus everything the hardening
/// observed while producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedClassification {
    /// The (possibly fault-affected) classification.
    pub classification: Classification,
    /// Health events raised on this decision.
    pub events: Vec<HealthEvent>,
    /// Faults actually injected on this decision (ground truth).
    pub injections: Vec<Injection>,
}

/// A pool of [`HardenedEngine`] replicas for parallel campaign batches.
///
/// Replicas drop shared sink/log observers (their push order would depend
/// on scheduling); instead every result carries its own events and
/// injections, so batch output is bit-identical for any worker count and
/// equal to a sequential [`HardenedEngine::classify_indexed`] loop over
/// the same global indices.
#[derive(Debug, Clone)]
pub struct HardenedPool {
    workers: Vec<HardenedEngine>,
    dispatched: u64,
}

impl HardenedPool {
    /// Creates a pool of `workers` replicas of `engine`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Pool`] when `workers` is zero.
    pub fn new(engine: &HardenedEngine, workers: usize) -> Result<Self, NnError> {
        if workers == 0 {
            return Err(NnError::Pool("pool needs at least one worker".into()));
        }
        let workers = (0..workers)
            .map(|_| {
                let mut replica = engine.clone();
                replica.detach_observers();
                replica
            })
            .collect();
        Ok(HardenedPool {
            workers,
            dispatched: 0,
        })
    }

    /// Number of worker replicas.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Mutable access to every replica, e.g. to apply the same recorded
    /// weight corruption ([`crate::fault::apply_weight_flips`]) to all of
    /// them — replicas must stay byte-identical or batch output would
    /// depend on which replica serves which item.
    pub fn engines_mut(&mut self) -> &mut [HardenedEngine] {
        &mut self.workers
    }

    /// Decisions dispatched so far (the next batch starts at this global
    /// index).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Read-only access to every replica (e.g. to inspect golden
    /// checksums without the mutable-borrow commitments of
    /// [`HardenedPool::engines_mut`]).
    pub fn engines(&self) -> &[HardenedEngine] {
        &self.workers
    }

    /// Restores the pool's dispatch clock after a snapshot restore: sets
    /// the global decision index and declares every replica synchronised
    /// up to it. All scheduled-check and fault-plan state is keyed off
    /// the global index, so a pool with clean (golden-matching) weights
    /// resynced to the snapshot's `dispatched` continues bit-identically
    /// to the uninterrupted pool.
    pub fn resync(&mut self, dispatched: u64) {
        self.dispatched = dispatched;
        for worker in &mut self.workers {
            worker.sync_to(dispatched);
        }
    }

    /// Re-goldens every replica on its current weights and verifies the
    /// result: each replica re-captures CRC-32 checksums and rebuilds its
    /// ECC sidecars ([`HardenedEngine::rebaseline`]), then must pass
    /// [`HardenedEngine::verify_weights`] and agree bit-for-bit with
    /// replica 0's golden set — divergent replicas would make batch
    /// output depend on worker assignment, which is exactly the silent
    /// corruption a hot swap must not introduce.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Fault`] (per-replica verify failure) or
    /// [`NnError::Pool`] (cross-replica golden divergence). The pool is
    /// left re-goldened but the caller must treat any error as a failed
    /// swap and discard the pool.
    pub fn regolden(&mut self) -> Result<(), NnError> {
        for worker in &mut self.workers {
            worker.rebaseline();
        }
        let reference: Vec<(usize, u32)> = self.workers[0].golden_checksums().to_vec();
        for (i, worker) in self.workers.iter().enumerate() {
            worker.verify_weights().map_err(|e| {
                NnError::Fault(format!("replica {i} failed post-regolden verify: {e}"))
            })?;
            if worker.golden_checksums() != reference.as_slice() {
                return Err(NnError::Pool(format!(
                    "replica {i} golden checksums diverge from replica 0 after regolden"
                )));
            }
        }
        Ok(())
    }

    /// Classifies a batch in parallel, preserving input order; global
    /// decision indices continue across batches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] if any input has the wrong element
    /// count; the whole batch fails (no partial results).
    pub fn classify_batch<I: AsRef<[f32]> + Sync>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<CheckedClassification>, NnError> {
        let base = self.dispatched;
        // Weight strikes (via `engines_mut`) can only land between
        // batches, where they hit every replica identically; advancing
        // every replica's sync point to the batch base keeps the repair
        // catch-up from replaying pre-strike scheduled checks — which the
        // sequential reference saw as clean — against post-strike
        // weights.
        for worker in &mut self.workers {
            worker.sync_to(base);
        }
        let indexed: Vec<(u64, &[f32])> = inputs
            .iter()
            .enumerate()
            .map(|(k, x)| (base + k as u64, x.as_ref()))
            .collect();
        let out = run_partitioned(&mut self.workers, &indexed, |engine, &(index, input)| {
            let classification = engine.classify_indexed(index, input)?;
            Ok(CheckedClassification {
                classification,
                events: engine.last_events().to_vec(),
                injections: engine.last_injections().to_vec(),
            })
        })?;
        self.dispatched = base + inputs.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ActivationFault, FaultInjector, InputFault};
    use crate::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    fn model(seed: u64) -> Model {
        let mut rng = DetRng::new(seed);
        ModelBuilder::new(Shape::vector(4))
            .dense(8, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap()
    }

    fn calibration() -> Vec<Vec<f32>> {
        let mut rng = DetRng::new(99);
        (0..16)
            .map(|_| (0..4).map(|_| rng.next_f32() * 2.0 - 1.0).collect())
            .collect()
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789".iter().copied()), 0xCBF4_3926);
        assert_eq!(crc32(std::iter::empty()), 0);
    }

    #[test]
    fn crc32_words_matches_bytewise() {
        // The sliced word path must agree with the byte-at-a-time
        // reference for even word counts (slicing-by-8), odd word counts
        // (slicing-by-4 tail), single words, and empty streams.
        for n in [0usize, 1, 2, 3, 7, 8, 64, 129] {
            let words: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            assert_eq!(
                crc32_words(words.iter().copied()),
                crc32(bytes.iter().copied()),
                "word/byte CRC disagree at {n} words"
            );
        }
        // Known vector through the word path: "123456789" is not
        // word-aligned, so check a word-aligned known case instead
        // ("12345678" = two LE words).
        let expected = crc32(b"12345678".iter().copied());
        assert_eq!(
            crc32_words([0x3433_3231, 0x3837_3635].into_iter()),
            expected
        );
    }

    #[test]
    fn staleness_bound_formula() {
        let full = HardenConfig::default();
        assert_eq!(full.staleness_bound(3), Some(1));
        let rotating = HardenConfig {
            crc_cadence: 4,
            crc_strategy: CrcStrategy::Rotating,
            ..HardenConfig::default()
        };
        assert_eq!(rotating.staleness_bound(3), Some(12));
        assert_eq!(rotating.staleness_bound(0), None);
        let disabled = HardenConfig {
            crc_cadence: 0,
            ..HardenConfig::default()
        };
        assert_eq!(disabled.staleness_bound(3), None);

        // The engine reports its own bound from its golden layer count
        // (the demo model has two parametric layers).
        let engine = HardenedEngine::new(model(20), rotating).unwrap();
        assert_eq!(engine.golden_checksums().len(), 2);
        assert_eq!(engine.staleness_bound(), Some(8));
    }

    /// Flips one weight bit in the given layer (deterministic strike for
    /// rotation tests — no injector randomness).
    fn flip_weight_bit(model: &mut Model, layer: usize) {
        match &mut model.layers_mut()[layer] {
            Layer::Dense(d) => d.weights[0] = f32::from_bits(d.weights[0].to_bits() ^ 1),
            Layer::Conv2d(c) => c.weights[0] = f32::from_bits(c.weights[0].to_bits() ^ 1),
            other => panic!("layer {layer} is not parametric: {other:?}"),
        }
    }

    #[test]
    fn rotating_crc_detects_within_staleness_bound_and_never_later() {
        // Flip a weight bit in the *last* parametric layer — the worst
        // case for the rotation — and assert detection within
        // `parametric_layers × cadence` decisions of the flip, never
        // later.
        for cadence in [1u64, 3] {
            let config = HardenConfig {
                crc_cadence: cadence,
                crc_strategy: CrcStrategy::Rotating,
                ..HardenConfig::default()
            };
            let mut hardened = HardenedEngine::new(model(21), config).unwrap();
            let layers = hardened.golden_checksums().len() as u64;
            let bound = hardened.staleness_bound().unwrap();
            assert_eq!(bound, layers * cadence);
            let last_layer = hardened.golden_checksums().last().unwrap().0;
            let input = [0.1, 0.2, 0.3, 0.4];

            // A few clean decisions first, so the flip lands mid-rotation.
            for _ in 0..3 {
                hardened.infer(&input).unwrap();
                assert!(hardened.last_events().is_empty());
            }
            let flip_at = hardened.decision_count();
            flip_weight_bit(hardened.model_mut(), last_layer);

            let mut detected_at = None;
            for _ in 0..2 * bound {
                hardened.infer(&input).unwrap();
                let hit = hardened.last_events().iter().any(|e| {
                    matches!(e, HealthEvent::ChecksumMismatch { layer, staleness, .. }
                        if *layer == last_layer && *staleness == bound)
                });
                if hit {
                    detected_at = Some(hardened.decision_count() - 1);
                    break;
                }
            }
            let detected_at =
                detected_at.expect("one full rotation must reach the corrupted layer");
            assert!(
                detected_at - flip_at < bound,
                "cadence {cadence}: flip at {flip_at} detected at {detected_at}, \
                 bound {bound}"
            );
        }
    }

    #[test]
    fn rotating_crc_covers_all_layers_in_one_cycle() {
        // With cadence 1 and L parametric layers, L consecutive decisions
        // check every golden layer exactly once; corrupt all layers and
        // the next L decisions must flag each of them.
        let config = HardenConfig {
            crc_cadence: 1,
            crc_strategy: CrcStrategy::Rotating,
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(model(22), config).unwrap();
        let layers: Vec<usize> = hardened
            .golden_checksums()
            .iter()
            .map(|&(l, _)| l)
            .collect();
        let input = [0.0; 4];
        hardened.infer(&input).unwrap();
        for &layer in &layers {
            flip_weight_bit(hardened.model_mut(), layer);
        }
        let mut flagged: Vec<usize> = Vec::new();
        for _ in 0..layers.len() {
            hardened.infer(&input).unwrap();
            for e in hardened.last_events() {
                if let HealthEvent::ChecksumMismatch { layer, .. } = e {
                    flagged.push(*layer);
                }
            }
        }
        flagged.sort_unstable();
        assert_eq!(flagged, layers, "one full rotation must flag every layer");
    }

    #[test]
    fn rotating_pool_matches_sequential_for_any_worker_count() {
        let config = HardenConfig {
            crc_cadence: 2,
            crc_strategy: CrcStrategy::Rotating,
            ..HardenConfig::default()
        };
        let mut engine = HardenedEngine::new(model(23), config).unwrap();
        engine.calibrate(&calibration()).unwrap();
        engine
            .set_plan(FaultPlan {
                seed: 31,
                input: Some(InputFault::Noise { sigma: 0.2, p: 0.3 }),
                activation: Some(ActivationFault { p: 0.2, bits: 2 }),
            })
            .unwrap();
        let inputs = calibration();
        let mut reference = Vec::new();
        {
            let mut seq = engine.clone();
            for (i, input) in inputs.iter().enumerate() {
                let classification = seq.classify_indexed(i as u64, input).unwrap();
                reference.push(CheckedClassification {
                    classification,
                    events: seq.last_events().to_vec(),
                    injections: seq.last_injections().to_vec(),
                });
            }
        }
        for workers in [1, 2, 4, 8] {
            let mut pool = HardenedPool::new(&engine, workers).unwrap();
            let got = pool.classify_batch(&inputs).unwrap();
            assert_eq!(got, reference, "rotating CRC, {workers} workers diverged");
        }
    }

    /// Replays `inputs` through `engine`, applying `strike` before each
    /// decision, and records everything observable per decision.
    fn run_stream(
        engine: &mut HardenedEngine,
        inputs: &[Vec<f32>],
        strike: &dyn Fn(&mut HardenedEngine, u64),
    ) -> Vec<(Vec<f32>, Vec<HealthEvent>, Vec<Injection>)> {
        let mut out = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            strike(engine, i as u64);
            let o = engine.infer(input).unwrap().to_vec();
            out.push((
                o,
                engine.last_events().to_vec(),
                engine.last_injections().to_vec(),
            ));
        }
        out
    }

    /// Full and Fused must be indistinguishable from the outside: same
    /// outputs, same events (order included), same injections, on every
    /// decision of the same stream.
    fn assert_fused_equals_full(
        seed: u64,
        cadence: u64,
        repair: Option<EccConfig>,
        strike: &dyn Fn(&mut HardenedEngine, u64),
    ) {
        let m = model(seed);
        let mk = |strategy: CrcStrategy| {
            let config = HardenConfig {
                crc_cadence: cadence,
                crc_strategy: strategy,
                repair,
                ..HardenConfig::default()
            };
            let mut e = HardenedEngine::new(m.clone(), config).unwrap();
            e.calibrate(&calibration()).unwrap();
            e.set_plan(FaultPlan {
                seed: 31,
                input: Some(InputFault::Noise { sigma: 0.2, p: 0.3 }),
                activation: Some(ActivationFault { p: 0.2, bits: 2 }),
            })
            .unwrap();
            e
        };
        let inputs = calibration();
        let full = run_stream(&mut mk(CrcStrategy::Full), &inputs, strike);
        let fused = run_stream(&mut mk(CrcStrategy::Fused), &inputs, strike);
        assert_eq!(
            full, fused,
            "Fused diverged from Full (seed {seed}, cadence {cadence}, repair {repair:?})"
        );
    }

    fn flip_weight(engine: &mut HardenedEngine, layer: usize, word: usize, bit: u32) {
        if let Layer::Dense(d) = &mut engine.model_mut().layers_mut()[layer] {
            let w = &mut d.weights_mut()[word];
            *w = f32::from_bits(w.to_bits() ^ (1 << bit));
        } else {
            panic!("layer {layer} is not dense");
        }
    }

    #[test]
    fn fused_matches_full_on_clean_streams() {
        for cadence in [1, 3] {
            assert_fused_equals_full(30, cadence, None, &|_, _| {});
            assert_fused_equals_full(30, cadence, Some(EccConfig::default()), &|_, _| {});
        }
    }

    #[test]
    fn fused_matches_full_on_detected_corruption() {
        // Detect-only: a mid-stream single flip must produce the same
        // ChecksumMismatch (same tick, same staleness) and the same
        // faulty outputs until rebaseline.
        let strike = |e: &mut HardenedEngine, i: u64| {
            if i == 5 {
                flip_weight(e, 2, 0, 30);
            }
        };
        assert_fused_equals_full(31, 1, None, &strike);
        assert_fused_equals_full(31, 4, None, &strike);
    }

    #[test]
    fn fused_matches_full_on_repaired_corruption() {
        // Detect-and-correct: the in-pass digest finds the flip, the ECC
        // repair lands, and the decision re-runs — output and events must
        // equal Full, which repaired before its layer loop.
        let strike = |e: &mut HardenedEngine, i: u64| {
            if i == 5 {
                flip_weight(e, 2, 0, 30);
            }
        };
        assert_fused_equals_full(32, 1, Some(EccConfig::default()), &strike);
        assert_fused_equals_full(32, 2, Some(EccConfig { block_words: 8 }), &strike);
    }

    #[test]
    fn fused_matches_full_on_uncorrectable_corruption() {
        // A double flip defeats the single-error ECC on both paths and
        // must escalate identically.
        let strike = |e: &mut HardenedEngine, i: u64| {
            if i == 3 {
                flip_weight(e, 0, 0, 1);
                flip_weight(e, 0, 1, 7);
            }
        };
        assert_fused_equals_full(33, 1, Some(EccConfig::default()), &strike);
    }

    #[test]
    fn fused_repair_restores_pristine_output() {
        let config = HardenConfig {
            crc_strategy: CrcStrategy::Fused,
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let m = model(34);
        let mut pristine = Engine::new(m.clone());
        let mut hardened = HardenedEngine::new(m, config).unwrap();
        let input = [0.1, -0.2, 0.3, -0.4];
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty());

        flip_weight(&mut hardened, 2, 0, 30);
        let expected = pristine.infer(&input).unwrap().to_vec();
        let got = hardened.infer(&input).unwrap().to_vec();
        assert_eq!(got, expected, "corrected decision must match pristine");
        assert!(
            matches!(
                hardened.last_events(),
                [HealthEvent::CorrectedFault {
                    layer: 2,
                    word: 0,
                    bit: 30,
                    staleness: 1
                }]
            ),
            "events: {:?}",
            hardened.last_events()
        );
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty(), "the fault is gone");
    }

    #[test]
    fn fused_respects_cadence_and_staleness() {
        let config = HardenConfig {
            crc_cadence: 4,
            crc_strategy: CrcStrategy::Fused,
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(model(35), config).unwrap();
        assert_eq!(hardened.staleness_bound(), Some(4), "Fused bound = cadence");
        let input = [0.0; 4];
        hardened.infer(&input).unwrap(); // index 0: verified in-pass, clean
        flip_weight(&mut hardened, 2, 0, 3);
        for index in 1..4 {
            hardened.infer(&input).unwrap();
            assert!(
                hardened.last_events().is_empty(),
                "index {index} is off-cadence"
            );
        }
        hardened.infer(&input).unwrap(); // index 4: verified in-pass
        assert!(matches!(
            hardened.last_events(),
            [HealthEvent::ChecksumMismatch { staleness: 4, .. }]
        ));
        // Rebaseline accepts the current weights and refreshes the
        // cached staleness bound.
        hardened.rebaseline();
        assert_eq!(hardened.staleness_bound(), Some(4));
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty());
    }

    #[test]
    fn fused_pool_matches_sequential_for_any_worker_count() {
        let config = HardenConfig {
            crc_cadence: 2,
            crc_strategy: CrcStrategy::Fused,
            repair: Some(EccConfig { block_words: 8 }),
            ..HardenConfig::default()
        };
        let mut engine = HardenedEngine::new(model(36), config).unwrap();
        engine.calibrate(&calibration()).unwrap();
        // Strike before cloning: every replica carries the corruption and
        // the scheduled in-pass check must repair it mid-stream.
        flip_weight(&mut engine, 0, 1, 12);
        let inputs = calibration();
        let mut reference = Vec::new();
        {
            let mut seq = engine.clone();
            for (i, input) in inputs.iter().enumerate() {
                let classification = seq.classify_indexed(i as u64, input).unwrap();
                reference.push(CheckedClassification {
                    classification,
                    events: seq.last_events().to_vec(),
                    injections: seq.last_injections().to_vec(),
                });
            }
        }
        assert!(
            reference
                .iter()
                .flat_map(|r| &r.events)
                .any(|e| matches!(e, HealthEvent::CorrectedFault { .. })),
            "the strike must be corrected somewhere"
        );
        for workers in [1, 2, 4, 8] {
            let mut pool = HardenedPool::new(&engine, workers).unwrap();
            let got = pool.classify_batch(&inputs).unwrap();
            assert_eq!(got, reference, "fused CRC, {workers} workers diverged");
        }
    }

    #[test]
    fn hardened_chunked_kernel_deterministic() {
        let mut hardened = HardenedEngine::new(model(24), HardenConfig::default()).unwrap();
        hardened.set_kernel(DenseKernel::Chunked);
        assert_eq!(hardened.kernel(), DenseKernel::Chunked);
        let input = [0.3, -0.1, 0.7, 0.2];
        let a = hardened.infer(&input).unwrap().to_vec();
        for _ in 0..5 {
            assert_eq!(hardened.infer(&input).unwrap(), a.as_slice());
        }
        assert!(hardened.last_events().is_empty(), "clean model stays clean");
    }

    #[test]
    fn clean_run_matches_engine_and_raises_nothing() {
        let m = model(1);
        let mut plain = Engine::new(m.clone());
        let mut hardened = HardenedEngine::new(m, HardenConfig::default()).unwrap();
        hardened.calibrate(&calibration()).unwrap();
        for input in calibration() {
            let expected = plain.infer(&input).unwrap().to_vec();
            let got = hardened.infer(&input).unwrap();
            assert_eq!(
                got,
                expected.as_slice(),
                "hardening must not perturb output"
            );
            assert!(hardened.last_events().is_empty());
        }
        assert_eq!(hardened.event_count(), 0);
        assert_eq!(hardened.decision_count(), 16);
    }

    #[test]
    fn checksum_catches_weight_flip() {
        let mut hardened = HardenedEngine::new(model(2), HardenConfig::default()).unwrap();
        let input = [0.1, 0.2, 0.3, 0.4];
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty());
        let flips = FaultInjector::new(5)
            .flip_weight_bits(hardened.model_mut(), 1, 1)
            .unwrap();
        hardened.infer(&input).unwrap();
        let events = hardened.last_events().to_vec();
        assert_eq!(events.len(), 1);
        match events[0] {
            HealthEvent::ChecksumMismatch { layer, .. } => assert_eq!(layer, flips[0].layer),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // After acknowledging the change the engine is clean again.
        hardened.rebaseline();
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty());
    }

    #[test]
    fn checksum_respects_cadence() {
        let config = HardenConfig {
            crc_cadence: 4,
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(model(3), config).unwrap();
        let input = [0.0; 4];
        hardened.infer(&input).unwrap(); // index 0: checked, clean
        FaultInjector::new(1)
            .flip_weight_bits(hardened.model_mut(), 1, 1)
            .unwrap();
        for index in 1..4 {
            hardened.infer(&input).unwrap();
            assert!(
                hardened.last_events().is_empty(),
                "index {index} is off-cadence"
            );
        }
        hardened.infer(&input).unwrap(); // index 4: checked
        assert!(matches!(
            hardened.last_events(),
            [HealthEvent::ChecksumMismatch { .. }]
        ));
    }

    #[test]
    fn guard_flags_out_of_envelope_activations() {
        let mut hardened = HardenedEngine::new(model(4), HardenConfig::default()).unwrap();
        hardened.calibrate(&calibration()).unwrap();
        // Calibration inputs live in [-1, 1]; an input 100x outside drives
        // the first dense layer far beyond its widened envelope.
        hardened.infer(&[100.0, -100.0, 100.0, -100.0]).unwrap();
        assert!(
            hardened
                .last_events()
                .iter()
                .any(|e| matches!(e, HealthEvent::ActivationOutOfRange { layer: 0, .. })),
            "events: {:?}",
            hardened.last_events()
        );
    }

    #[test]
    fn non_finite_input_flagged() {
        let mut hardened = HardenedEngine::new(model(5), HardenConfig::default()).unwrap();
        hardened.infer(&[0.0, f32::NAN, 0.0, 0.0]).unwrap();
        assert!(hardened
            .last_events()
            .iter()
            .any(|e| matches!(e, HealthEvent::NonFiniteInput { index: 1 })));
    }

    #[test]
    fn input_faults_are_decision_keyed() {
        let plan = FaultPlan::input(77, InputFault::Noise { sigma: 0.1, p: 1.0 });
        let make = || {
            let mut h = HardenedEngine::new(model(6), HardenConfig::default()).unwrap();
            h.set_plan(plan).unwrap();
            h
        };
        let input = [0.5, -0.5, 0.25, -0.25];
        let mut a = make();
        let mut b = make();
        let out_a0 = a.infer(&input).unwrap().to_vec();
        let out_b0 = b.infer(&input).unwrap().to_vec();
        assert_eq!(out_a0, out_b0, "same decision index, same perturbation");
        assert_eq!(a.last_injections(), &[Injection::InputNoise]);
        let out_a1 = a.infer(&input).unwrap().to_vec();
        assert_ne!(out_a0, out_a1, "different index, different perturbation");
        // Explicit index reproduces the pooled view of the same decision.
        let mut c = make();
        assert_eq!(c.infer_indexed(1, &input).unwrap(), out_a1.as_slice());
    }

    #[test]
    fn stuck_and_dropout_faults_apply() {
        let input = [0.5, -0.5, 0.25, -0.25];
        let mut h = HardenedEngine::new(model(7), HardenConfig::default()).unwrap();
        h.set_plan(FaultPlan::input(
            3,
            InputFault::Stuck {
                index: 2,
                level: 9.0,
                p: 1.0,
            },
        ))
        .unwrap();
        let mut clean = Engine::new(model(7));
        let mut stuck_input = input;
        stuck_input[2] = 9.0;
        let expected = clean.infer(&stuck_input).unwrap().to_vec();
        assert_eq!(h.infer(&input).unwrap(), expected.as_slice());
        assert_eq!(h.last_injections(), &[Injection::InputStuck { index: 2 }]);

        let mut d = HardenedEngine::new(model(7), HardenConfig::default()).unwrap();
        d.set_plan(FaultPlan::input(
            4,
            InputFault::Dropout { drop: 1.0, p: 1.0 },
        ))
        .unwrap();
        let expected = clean.infer(&[0.0; 4]).unwrap().to_vec();
        assert_eq!(d.infer(&input).unwrap(), expected.as_slice());
        assert_eq!(
            d.last_injections(),
            &[Injection::InputDropout { zeroed: 4 }]
        );
    }

    #[test]
    fn activation_faults_logged_and_deterministic() {
        let plan = FaultPlan::activation(21, ActivationFault { p: 0.5, bits: 2 });
        let run = |n: u64| {
            let mut h = HardenedEngine::new(model(8), HardenConfig::default()).unwrap();
            h.set_plan(plan).unwrap();
            let log = InjectionLog::new();
            h.attach_injection_log(log.clone());
            let input = [0.1, 0.2, 0.3, 0.4];
            let outs: Vec<Vec<f32>> = (0..n).map(|_| h.infer(&input).unwrap().to_vec()).collect();
            (outs, log.drain())
        };
        let (outs_a, log_a) = run(20);
        let (outs_b, log_b) = run(20);
        assert_eq!(outs_a, outs_b);
        assert_eq!(log_a, log_b);
        assert!(
            !log_a.is_empty(),
            "p=0.5 over 20x3 layer boundaries must hit"
        );
    }

    #[test]
    fn pool_matches_sequential_for_any_worker_count() {
        let mut engine = HardenedEngine::new(model(9), HardenConfig::default()).unwrap();
        engine.calibrate(&calibration()).unwrap();
        engine
            .set_plan(FaultPlan {
                seed: 13,
                input: Some(InputFault::Noise { sigma: 0.2, p: 0.3 }),
                activation: Some(ActivationFault { p: 0.2, bits: 2 }),
            })
            .unwrap();
        let inputs = calibration();
        let mut reference = Vec::new();
        {
            let mut seq = engine.clone();
            for (i, input) in inputs.iter().enumerate() {
                let classification = seq.classify_indexed(i as u64, input).unwrap();
                reference.push(CheckedClassification {
                    classification,
                    events: seq.last_events().to_vec(),
                    injections: seq.last_injections().to_vec(),
                });
            }
        }
        for workers in [1, 2, 4] {
            let mut pool = HardenedPool::new(&engine, workers).unwrap();
            let got = pool.classify_batch(&inputs).unwrap();
            assert_eq!(got, reference, "worker count {workers} diverged");
        }
    }

    #[test]
    fn pool_indices_continue_across_batches() {
        let mut engine = HardenedEngine::new(model(10), HardenConfig::default()).unwrap();
        engine
            .set_plan(FaultPlan::input(
                5,
                InputFault::Noise { sigma: 0.5, p: 0.5 },
            ))
            .unwrap();
        let inputs = calibration();
        let whole = HardenedPool::new(&engine, 2)
            .unwrap()
            .classify_batch(&inputs)
            .unwrap();
        let mut pool = HardenedPool::new(&engine, 2).unwrap();
        let mut split = pool.classify_batch(&inputs[..7]).unwrap();
        assert_eq!(pool.dispatched(), 7);
        split.extend(pool.classify_batch(&inputs[7..]).unwrap());
        assert_eq!(split, whole, "split batches must see the same indices");
    }

    #[test]
    fn ecc_repairs_single_bit_flip_and_keeps_serving() {
        let config = HardenConfig {
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(model(30), config).unwrap();
        let mut pristine = Engine::new(model(30));
        let input = [0.1, 0.2, 0.3, 0.4];
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty());

        let last_layer = hardened.golden_checksums().last().unwrap().0;
        flip_weight_bit(hardened.model_mut(), last_layer);
        pristine.infer(&input).unwrap();
        let expected = pristine.infer(&input).unwrap().to_vec();
        let got = hardened.infer(&input).unwrap().to_vec();
        // The repair runs at the scheduled check, *before* the layer loop
        // reads the weights: the corrected decision already matches the
        // pristine engine.
        assert_eq!(got, expected, "corrected decision must match pristine");
        assert!(
            matches!(
                hardened.last_events(),
                [HealthEvent::CorrectedFault { layer, word: 0, bit: 0, .. }]
                    if *layer == last_layer
            ),
            "events: {:?}",
            hardened.last_events()
        );
        // The fault is gone — no lingering escalation.
        hardened.infer(&input).unwrap();
        assert!(hardened.last_events().is_empty());
        // Interleaved parity at block 32 ≈ 6.25 % sidecar overhead.
        let overhead = hardened.sidecar_overhead().unwrap();
        assert!(
            (0.05..0.10).contains(&overhead),
            "unexpected overhead {overhead}"
        );
    }

    #[test]
    fn verify_weights_is_a_pure_corruption_probe() {
        let config = HardenConfig {
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(model(40), config).unwrap();
        assert!(hardened.verify_weights().is_ok());
        let layer = hardened.golden_checksums()[0].0;
        flip_weight_bit(hardened.model_mut(), layer);
        let err = hardened.verify_weights().unwrap_err();
        assert!(
            err.to_string().contains("crc mismatch"),
            "unexpected error: {err}"
        );
        // The probe must not have repaired or escalated anything: the
        // flip is still there and a second probe still fails.
        assert!(hardened.verify_weights().is_err());
        // rebaseline accepts the current weights as the new golden state
        // (the hot-swap path), after which verify passes again.
        hardened.rebaseline();
        assert!(hardened.verify_weights().is_ok());
    }

    #[test]
    fn pool_resync_continues_bit_identically() {
        let config = HardenConfig {
            crc_cadence: 2,
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let engine = HardenedEngine::new(model(41), config).unwrap();
        let inputs = calibration();
        let mut continuous = HardenedPool::new(&engine, 3).unwrap();
        continuous.classify_batch(&inputs[..7]).unwrap();
        let expected = continuous.classify_batch(&inputs[7..]).unwrap();
        // A fresh pool resynced to the old dispatch clock — the restore
        // path — must produce the same tail batch.
        let mut restored = HardenedPool::new(&engine, 3).unwrap();
        restored.resync(7);
        assert_eq!(restored.dispatched(), 7);
        let got = restored.classify_batch(&inputs[7..]).unwrap();
        assert_eq!(got, expected, "resynced pool diverged from continuous run");
    }

    #[test]
    fn pool_regolden_accepts_uniform_and_rejects_divergent_replicas() {
        let config = HardenConfig {
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let engine = HardenedEngine::new(model(42), config).unwrap();
        let mut pool = HardenedPool::new(&engine, 3).unwrap();
        let before: Vec<(usize, u32)> = pool.engines()[0].golden_checksums().to_vec();
        let layer = before[0].0;
        // A uniform weight change across every replica (the swap path:
        // incoming weights land on all of them) re-goldens cleanly.
        for replica in pool.engines_mut() {
            flip_weight_bit(replica.model_mut(), layer);
        }
        pool.regolden().unwrap();
        let after: Vec<(usize, u32)> = pool.engines()[0].golden_checksums().to_vec();
        assert_ne!(before, after, "regolden must track the new weights");
        for replica in pool.engines() {
            assert!(replica.verify_weights().is_ok());
        }
        // A change on only one replica is exactly the divergence the
        // verify step exists to catch.
        flip_weight_bit(pool.engines_mut()[1].model_mut(), layer);
        match pool.regolden() {
            Err(NnError::Pool(msg)) => assert!(msg.contains("diverge"), "msg: {msg}"),
            other => panic!("divergent replicas must fail regolden, got {other:?}"),
        }
    }

    #[test]
    fn ecc_leaves_double_flips_on_the_escalation_path() {
        let config = HardenConfig {
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let mut hardened = HardenedEngine::new(model(31), config).unwrap();
        let input = [0.1, 0.2, 0.3, 0.4];
        hardened.infer(&input).unwrap();
        let layer = hardened.golden_checksums()[0].0;
        // Two flips in distinct words of one layer: no single-flip
        // signature exists, so ECC must refuse and the checksum path
        // escalates exactly as without repair.
        match &mut hardened.model_mut().layers_mut()[layer] {
            Layer::Dense(d) => {
                d.weights[0] = f32::from_bits(d.weights[0].to_bits() ^ 1);
                d.weights[1] = f32::from_bits(d.weights[1].to_bits() ^ (1 << 7));
            }
            other => panic!("layer {layer} is not dense: {other:?}"),
        }
        let damaged: Vec<f32> = match &hardened.model().layers()[layer] {
            Layer::Dense(d) => d.weights().to_vec(),
            _ => unreachable!(),
        };
        hardened.infer(&input).unwrap();
        assert!(
            matches!(
                hardened.last_events(),
                [HealthEvent::ChecksumMismatch { layer: l, .. }] if *l == layer
            ),
            "events: {:?}",
            hardened.last_events()
        );
        let after: Vec<f32> = match &hardened.model().layers()[layer] {
            Layer::Dense(d) => d.weights().to_vec(),
            _ => unreachable!(),
        };
        assert_eq!(
            after.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            damaged.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "uncorrectable damage must never be miscorrected"
        );
    }

    #[test]
    fn repair_pool_matches_sequential_under_boundary_strikes() {
        // Repair mutates replica weight state mid-stream; the catch-up
        // machinery must keep pooled output byte-identical to sequential
        // for any worker count, for both CRC strategies, across a strike
        // at a batch boundary.
        for strategy in [CrcStrategy::Full, CrcStrategy::Rotating] {
            let config = HardenConfig {
                crc_cadence: 2,
                crc_strategy: strategy,
                repair: Some(EccConfig { block_words: 8 }),
                ..HardenConfig::default()
            };
            let mut engine = HardenedEngine::new(model(32), config).unwrap();
            engine.calibrate(&calibration()).unwrap();
            let inputs = calibration();
            let strike_layer = engine.golden_checksums().last().unwrap().0;

            let mut reference = Vec::new();
            {
                let mut seq = engine.clone();
                for (i, input) in inputs.iter().enumerate() {
                    if i == 8 {
                        flip_weight_bit(seq.model_mut(), strike_layer);
                    }
                    let classification = seq.classify_indexed(i as u64, input).unwrap();
                    reference.push(CheckedClassification {
                        classification,
                        events: seq.last_events().to_vec(),
                        injections: seq.last_injections().to_vec(),
                    });
                }
            }
            assert!(
                reference
                    .iter()
                    .flat_map(|r| &r.events)
                    .any(|e| matches!(e, HealthEvent::CorrectedFault { .. })),
                "{strategy:?}: the strike must be corrected somewhere"
            );

            for workers in [1, 2, 4, 8] {
                let mut pool = HardenedPool::new(&engine, workers).unwrap();
                let mut got = pool.classify_batch(&inputs[..8]).unwrap();
                for replica in pool.engines_mut() {
                    flip_weight_bit(replica.model_mut(), strike_layer);
                }
                got.extend(pool.classify_batch(&inputs[8..]).unwrap());
                assert_eq!(got, reference, "{strategy:?}, {workers} workers diverged");
            }
        }
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(HardenedEngine::new(
            model(11),
            HardenConfig {
                crc_cadence: 1,
                guard_slack: -1.0,
                ..HardenConfig::default()
            }
        )
        .is_err());
        let mut h = HardenedEngine::new(model(11), HardenConfig::default()).unwrap();
        assert!(h.calibrate(&Vec::<Vec<f32>>::new()).is_err());
        let other = ActivationGuard::calibrate(
            &{
                let mut rng = DetRng::new(0);
                ModelBuilder::new(Shape::vector(4))
                    .dense(2, &mut rng)
                    .unwrap()
                    .build()
                    .unwrap()
            },
            &calibration(),
            0.5,
        )
        .unwrap();
        assert!(h.set_guard(other).is_err(), "layer-count mismatch");
        assert!(HardenedPool::new(&h, 0).is_err());
        assert!(
            HardenedEngine::new(
                model(11),
                HardenConfig {
                    repair: Some(EccConfig { block_words: 0 }),
                    ..HardenConfig::default()
                }
            )
            .is_err(),
            "zero ecc block size"
        );
    }
}
