//! Regression test: Rotating CRC composed with ECC repair. A single-bit
//! flip in the *last* parametric layer — the worst case for the
//! rotation — must be corrected within `HardenConfig::staleness_bound`
//! decisions of the flip, never later, and the model must afterwards be
//! byte-identical to pristine.

use safex_nn::layer::Layer;
use safex_nn::model::ModelBuilder;
use safex_nn::{CrcStrategy, EccConfig, HardenConfig, HardenedEngine, HealthEvent, Model};
use safex_tensor::{DetRng, Shape};

fn model(seed: u64) -> Model {
    let mut rng = DetRng::new(seed);
    ModelBuilder::new(Shape::vector(4))
        .dense(12, &mut rng)
        .unwrap()
        .relu()
        .dense(8, &mut rng)
        .unwrap()
        .relu()
        .dense(3, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap()
}

fn flip_weight_bit(model: &mut Model, layer: usize) {
    let w = match &mut model.layers_mut()[layer] {
        Layer::Dense(d) => &mut d.weights_mut()[0],
        Layer::Conv2d(c) => &mut c.weights_mut()[0],
        other => panic!("layer {layer} is not parametric: {other:?}"),
    };
    *w = f32::from_bits(w.to_bits() ^ 1);
}

fn weight_bits(model: &Model) -> Vec<u32> {
    let mut bits = Vec::new();
    for layer in model.layers() {
        let (w, b) = match layer {
            Layer::Dense(d) => (d.weights(), d.bias()),
            Layer::Conv2d(c) => (c.weights(), c.bias()),
            _ => continue,
        };
        bits.extend(w.iter().map(|v| v.to_bits()));
        bits.extend(b.iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn rotating_crc_repairs_last_layer_within_staleness_bound_never_later() {
    for cadence in [1u64, 3] {
        let config = HardenConfig {
            crc_cadence: cadence,
            crc_strategy: CrcStrategy::Rotating,
            repair: Some(EccConfig::default()),
            ..HardenConfig::default()
        };
        let pristine = model(21);
        let golden_bits = weight_bits(&pristine);
        let mut hardened = HardenedEngine::new(pristine, config).unwrap();
        let layers = hardened.golden_checksums().len() as u64;
        let bound = hardened.staleness_bound().unwrap();
        assert_eq!(bound, layers * cadence);
        let last_layer = hardened.golden_checksums().last().unwrap().0;
        let input = [0.1, 0.2, 0.3, 0.4];

        // A few clean decisions first, so the flip lands mid-rotation.
        for _ in 0..3 {
            hardened.infer(&input).unwrap();
            assert!(hardened.last_events().is_empty());
        }
        let flip_at = hardened.decision_count();
        flip_weight_bit(hardened.model_mut(), last_layer);

        let mut corrected_at = None;
        for _ in 0..2 * bound {
            hardened.infer(&input).unwrap();
            for e in hardened.last_events() {
                match e {
                    HealthEvent::CorrectedFault {
                        layer,
                        word,
                        bit,
                        staleness,
                    } if *layer == last_layer => {
                        assert_eq!((*word, *bit), (0, 0), "repair must name the exact flip");
                        assert_eq!(*staleness, bound);
                        corrected_at = Some(hardened.decision_count() - 1);
                    }
                    other => panic!(
                        "cadence {cadence}: only a CorrectedFault may surface, got {other:?}"
                    ),
                }
            }
            if corrected_at.is_some() {
                break;
            }
        }
        let corrected_at = corrected_at.expect("one full rotation must repair the corrupted layer");
        assert!(
            corrected_at - flip_at < bound,
            "cadence {cadence}: flip at {flip_at} corrected at {corrected_at}, bound {bound}"
        );

        // The repair is real: weights are byte-identical to pristine and
        // the remainder of the rotation stays silent.
        assert_eq!(weight_bits(hardened.model()), golden_bits);
        for _ in 0..2 * bound {
            hardened.infer(&input).unwrap();
            assert!(
                hardened.last_events().is_empty(),
                "cadence {cadence}: no event may fire after the repair"
            );
        }
    }
}
