//! Property-based tests for the DL library.

use proptest::prelude::*;
use safex_nn::model::ModelBuilder;
use safex_nn::{Engine, QEngine, QModel};
use safex_tensor::fixed::Q16_16;
use safex_tensor::{DetRng, Shape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (valid) randomly-shaped MLP builds, runs, and produces a
    /// probability distribution.
    #[test]
    fn arbitrary_mlp_produces_distribution(
        seed in any::<u64>(),
        input_dim in 1usize..24,
        hidden in 1usize..24,
        classes in 1usize..8,
    ) {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(Shape::vector(input_dim))
            .dense(hidden, &mut rng).expect("dense")
            .relu()
            .dense(classes, &mut rng).expect("dense")
            .softmax()
            .build().expect("build");
        let mut engine = Engine::new(model);
        let input: Vec<f32> = (0..input_dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        let out = engine.infer(&input).expect("infer");
        let total: f32 = out.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        prop_assert!(out.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    /// Any (valid) randomly-shaped small convnet builds and runs, and its
    /// declared shapes match what the engine produces.
    #[test]
    fn arbitrary_convnet_shapes_consistent(
        seed in any::<u64>(),
        size in 6usize..12,
        channels in 1usize..5,
        kernel in 1usize..4,
        padding in 0usize..2,
    ) {
        prop_assume!(kernel <= size + 2 * padding);
        let mut rng = DetRng::new(seed);
        let built = ModelBuilder::new(Shape::chw(1, size, size))
            .conv2d(channels, kernel, 1, padding, &mut rng).expect("conv")
            .relu()
            .flatten()
            .dense(3, &mut rng).expect("dense")
            .softmax()
            .build();
        let model = built.expect("build");
        let expected_out = model.output_shape().len();
        let mut engine = Engine::new(model);
        let input: Vec<f32> = (0..size * size).map(|_| rng.next_f32()).collect();
        let out = engine.infer(&input).expect("infer");
        prop_assert_eq!(out.len(), expected_out);
        prop_assert!(out.iter().all(|p| p.is_finite()));
    }

    /// Quantised inference stays close to float inference for any small
    /// trained-ish model (random weights, bounded inputs).
    #[test]
    fn quantised_tracks_float(
        seed in any::<u64>(),
        input_dim in 2usize..12,
        classes in 2usize..6,
    ) {
        let mut rng = DetRng::new(seed);
        let model = ModelBuilder::new(Shape::vector(input_dim))
            .dense(8, &mut rng).expect("dense")
            .relu()
            .dense(classes, &mut rng).expect("dense")
            .softmax()
            .build().expect("build");
        let mut fe = Engine::new(model.clone());
        let mut qe = QEngine::new(QModel::quantize(&model).expect("quantize"));
        let input: Vec<f32> = (0..input_dim).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
        let fout = fe.infer(&input).expect("infer").to_vec();
        let qout = qe.infer_f32(&input).expect("infer");
        for (f, q) in fout.iter().zip(&qout) {
            prop_assert!((f - q).abs() < 0.02, "float {f} vs quant {q}");
        }
    }

    /// The model digest is a function of weights: any single-weight
    /// perturbation changes it.
    #[test]
    fn digest_sensitive_to_any_weight(
        seed in any::<u64>(),
        victim_frac in 0.0f64..1.0,
    ) {
        let mut rng = DetRng::new(seed);
        let mut model = ModelBuilder::new(Shape::vector(4))
            .dense(6, &mut rng).expect("dense")
            .relu()
            .dense(2, &mut rng).expect("dense")
            .build().expect("build");
        let original = model.digest();
        if let safex_nn::layer::Layer::Dense(d) = &mut model.layers_mut()[0] {
            let weights = d.weights_mut();
            let victim = ((weights.len() - 1) as f64 * victim_frac) as usize;
            weights[victim] += 0.5;
        }
        prop_assert_ne!(model.digest(), original);
    }

    /// Training one batch never panics and keeps the loss finite for any
    /// labels in range.
    #[test]
    fn train_batch_total(
        seed in any::<u64>(),
        labels in prop::collection::vec(0usize..3, 1..8),
    ) {
        use safex_nn::train::{SgdConfig, Trainer};
        let mut rng = DetRng::new(seed);
        let mut model = ModelBuilder::new(Shape::vector(4))
            .dense(6, &mut rng).expect("dense")
            .relu()
            .dense(3, &mut rng).expect("dense")
            .softmax()
            .build().expect("build");
        let inputs: Vec<Vec<f32>> = labels
            .iter()
            .map(|_| (0..4).map(|_| rng.next_f32()).collect())
            .collect();
        let batch: Vec<(&[f32], usize)> = inputs
            .iter()
            .map(|x| x.as_slice())
            .zip(labels.iter().copied())
            .collect();
        let mut trainer = Trainer::new(SgdConfig::default()).expect("trainer");
        let loss = trainer.train_batch(&mut model, &batch).expect("train");
        prop_assert!(loss.is_finite() && loss >= 0.0);
    }

    /// Fixed-point softmax output is a distribution for any logits.
    #[test]
    fn q16_softmax_distribution(
        logits in prop::collection::vec(-20.0f32..20.0, 1..10),
    ) {
        let src: Vec<Q16_16> = logits.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let mut dst = vec![Q16_16::ZERO; src.len()];
        safex_nn::quant::softmax_q16_into(&src, &mut dst).expect("softmax");
        let total: f64 = dst.iter().map(|v| v.to_f64()).sum();
        prop_assert!((total - 1.0).abs() < 0.02, "total {total}");
        prop_assert!(dst.iter().all(|v| *v >= Q16_16::ZERO));
    }
}
