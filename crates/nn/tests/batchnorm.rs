//! Cross-module BatchNorm behaviour: engine execution, folding
//! equivalence, quantised path, and training through frozen BN.

use safex_nn::layer::BatchNormLayer;
use safex_nn::model::ModelBuilder;
use safex_nn::train::{SgdConfig, Trainer};
use safex_nn::{Engine, QEngine, QModel};
use safex_tensor::{DetRng, Shape};

fn bn_model(seed: u64) -> safex_nn::Model {
    let mut rng = DetRng::new(seed);
    ModelBuilder::new(Shape::chw(1, 6, 6))
        .conv2d(3, 3, 1, 1, &mut rng)
        .unwrap()
        .batchnorm(
            BatchNormLayer::new(
                vec![1.5, 0.8, 1.2],
                vec![0.1, -0.2, 0.0],
                vec![0.05, -0.1, 0.2],
                vec![0.5, 1.2, 0.9],
                1e-5,
            )
            .unwrap(),
        )
        .unwrap()
        .relu()
        .flatten()
        .dense(4, &mut rng)
        .unwrap()
        .batchnorm(
            BatchNormLayer::new(
                vec![1.0, 1.1, 0.9, 1.05],
                vec![0.0, 0.1, -0.1, 0.05],
                vec![0.2, 0.0, -0.3, 0.1],
                vec![1.0, 0.8, 1.1, 0.95],
                1e-5,
            )
            .unwrap(),
        )
        .unwrap()
        .softmax()
        .build()
        .unwrap()
}

#[test]
fn identity_batchnorm_is_a_no_op() {
    let mut rng = DetRng::new(1);
    let base = ModelBuilder::new(Shape::vector(4))
        .dense(3, &mut rng)
        .unwrap()
        .build()
        .unwrap();
    let mut rng = DetRng::new(1);
    let with_bn = ModelBuilder::new(Shape::vector(4))
        .dense(3, &mut rng)
        .unwrap()
        .batchnorm(BatchNormLayer::identity(3).unwrap())
        .unwrap()
        .build()
        .unwrap();
    let mut e1 = Engine::new(base);
    let mut e2 = Engine::new(with_bn);
    let input = [0.3f32, -0.7, 0.2, 0.9];
    let a = e1.infer(&input).unwrap().to_vec();
    let b = e2.infer(&input).unwrap();
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 2e-6, "{x} vs {y}");
    }
}

#[test]
fn folding_preserves_outputs_exactly_enough() {
    let model = bn_model(7);
    let mut folded = model.clone();
    let folds = folded.fold_batchnorm();
    assert_eq!(folds, 2, "both BN layers fold");
    assert_eq!(folded.len(), model.len() - 2);
    assert!(folded.layers().iter().all(|l| l.kind_name() != "batchnorm"));

    let mut original = Engine::new(model);
    let mut fused = Engine::new(folded);
    let mut rng = DetRng::new(9);
    for _ in 0..10 {
        let input: Vec<f32> = (0..36).map(|_| rng.next_f32()).collect();
        let a = original.infer(&input).unwrap().to_vec();
        let b = fused.infer(&input).unwrap();
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "fold must be equivalent: {x} vs {y}");
        }
    }
}

#[test]
fn fold_skips_unfoldable_positions() {
    // BN after a pooling layer cannot fold into anything.
    let mut rng = DetRng::new(3);
    let mut model = ModelBuilder::new(Shape::chw(2, 4, 4))
        .maxpool2d(2, 2)
        .unwrap()
        .batchnorm(BatchNormLayer::identity(2).unwrap())
        .unwrap()
        .flatten()
        .dense(2, &mut rng)
        .unwrap()
        .build()
        .unwrap();
    assert_eq!(model.fold_batchnorm(), 0);
    assert_eq!(model.len(), 4);
}

#[test]
fn quantised_batchnorm_tracks_float() {
    let model = bn_model(11);
    let mut fe = Engine::new(model.clone());
    let mut qe = QEngine::new(QModel::quantize(&model).unwrap());
    let mut rng = DetRng::new(13);
    let input: Vec<f32> = (0..36).map(|_| rng.next_f32()).collect();
    let fout = fe.infer(&input).unwrap().to_vec();
    let qout = qe.infer_f32(&input).unwrap();
    for (f, q) in fout.iter().zip(&qout) {
        assert!((f - q).abs() < 0.02, "float {f} vs quant {q}");
    }
}

#[test]
fn training_through_frozen_batchnorm_converges() {
    // Frozen BN scales gradients but must not block learning.
    let mut rng = DetRng::new(17);
    let mut model = ModelBuilder::new(Shape::vector(2))
        .dense(8, &mut rng)
        .unwrap()
        .batchnorm(BatchNormLayer::identity(8).unwrap())
        .unwrap()
        .relu()
        .dense(2, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    let inputs = vec![
        vec![0.0, 0.0],
        vec![0.0, 1.0],
        vec![1.0, 0.0],
        vec![1.0, 1.0],
    ];
    let labels = vec![0, 1, 1, 0];
    let mut trainer = Trainer::new(SgdConfig {
        learning_rate: 0.5,
        momentum: 0.9,
        batch_size: 4,
    })
    .unwrap();
    let first = trainer
        .train_epoch(&mut model, &inputs, &labels, &mut rng)
        .unwrap();
    let mut last = first;
    for _ in 0..300 {
        last = trainer
            .train_epoch(&mut model, &inputs, &labels, &mut rng)
            .unwrap();
    }
    assert!(last < first * 0.2, "loss {first} -> {last}");
}

#[test]
fn digest_sensitive_to_bn_parameters() {
    let a = bn_model(21);
    let mut rng = DetRng::new(21);
    let b = ModelBuilder::new(Shape::chw(1, 6, 6))
        .conv2d(3, 3, 1, 1, &mut rng)
        .unwrap()
        .batchnorm(
            BatchNormLayer::new(
                vec![1.5, 0.8, 1.2],
                vec![0.1, -0.2, 0.0],
                vec![0.05, -0.1, 0.2],
                vec![0.5, 1.2, 0.91], // one variance differs
                1e-5,
            )
            .unwrap(),
        )
        .unwrap()
        .relu()
        .flatten()
        .dense(4, &mut rng)
        .unwrap()
        .batchnorm(
            BatchNormLayer::new(
                vec![1.0, 1.1, 0.9, 1.05],
                vec![0.0, 0.1, -0.1, 0.05],
                vec![0.2, 0.0, -0.3, 0.1],
                vec![1.0, 0.8, 1.1, 0.95],
                1e-5,
            )
            .unwrap(),
        )
        .unwrap()
        .softmax()
        .build()
        .unwrap();
    assert_ne!(a.digest(), b.digest());
}
