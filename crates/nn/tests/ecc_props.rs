//! Property tests for the ECC sidecar codec: single-bit flips always
//! decode-correct back to the golden words, and double-bit flips are
//! always flagged uncorrectable — never silently miscorrected.

use proptest::prelude::*;
use safex_nn::{EccCode, EccConfig, RepairOutcome};
use safex_tensor::DetRng;

fn golden_words(seed: u64, len: usize) -> Vec<u32> {
    let mut rng = DetRng::new(seed);
    (0..len).map(|_| rng.next_u64() as u32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every block size and every single-bit flip position, repair
    /// restores the buffer to the golden words and names the exact
    /// (word, bit) it fixed.
    #[test]
    fn any_single_bit_flip_corrects_to_golden(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 1usize..160,
        word_pick in any::<u64>(),
        bit in 0u32..32,
    ) {
        let golden = golden_words(seed, len);
        let code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let word = (word_pick % len as u64) as usize;

        let mut damaged = golden.clone();
        damaged[word] ^= 1u32 << bit;
        let outcome = code.repair(&mut damaged);
        prop_assert_eq!(outcome, RepairOutcome::Corrected { word, bit });
        prop_assert_eq!(&damaged, &golden, "repair must restore the golden words");

        // And a clean buffer is recognised as clean, untouched.
        let mut clean = golden.clone();
        prop_assert_eq!(code.repair(&mut clean), RepairOutcome::Clean);
        prop_assert_eq!(&clean, &golden);
    }

    /// Any two-bit flip — same word, same block, or across blocks — is
    /// flagged uncorrectable and the damaged buffer is left untouched:
    /// a wrong "repair" is worse than an honest escalation.
    #[test]
    fn any_double_bit_flip_is_uncorrectable_never_miscorrected(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 2usize..160,
        pick_a in any::<u64>(),
        pick_b in any::<u64>(),
        bit_a in 0u32..32,
        bit_b in 0u32..32,
    ) {
        let golden = golden_words(seed, len);
        let code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let word_a = (pick_a % len as u64) as usize;
        let word_b = (pick_b % len as u64) as usize;
        // Two flips at the same position cancel to a clean buffer;
        // require genuinely distinct damage.
        prop_assume!(word_a != word_b || bit_a != bit_b);

        let mut damaged = golden.clone();
        damaged[word_a] ^= 1u32 << bit_a;
        damaged[word_b] ^= 1u32 << bit_b;
        let snapshot = damaged.clone();
        prop_assert_eq!(code.repair(&mut damaged), RepairOutcome::Uncorrectable);
        prop_assert_eq!(
            &damaged, &snapshot,
            "an uncorrectable buffer must not be modified"
        );
    }

    /// An aligned burst — the same bit flipped in `k >= 2` consecutive
    /// words, the signature of a row-hammer / wordline fault — must
    /// never be "corrected". Within one block an even-length burst
    /// cancels in the column syndrome entirely, so the row parities are
    /// the only witness; the decoder must still refuse.
    #[test]
    fn aligned_multiword_bursts_never_miscorrect(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 2usize..160,
        start_pick in any::<u64>(),
        burst in 2usize..9,
        bit in 0u32..32,
    ) {
        let golden = golden_words(seed, len);
        let code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let burst = burst.min(len);
        let start = (start_pick % (len - burst + 1) as u64) as usize;

        let mut damaged = golden.clone();
        for word in damaged.iter_mut().skip(start).take(burst) {
            *word ^= 1u32 << bit;
        }
        let snapshot = damaged.clone();
        prop_assert_eq!(code.repair(&mut damaged), RepairOutcome::Uncorrectable);
        prop_assert_eq!(&damaged, &snapshot, "burst damage must be left untouched");
    }

    /// A flip landing in the sidecar's *column* parity — alone or paired
    /// with one data-word flip — must never produce a correction: the
    /// decoder cannot tell redundancy damage from data damage, so the
    /// only safe verdict is escalation.
    #[test]
    fn single_column_parity_flip_never_miscorrects(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 1usize..160,
        block_pick in any::<u64>(),
        parity_bit in 0u32..32,
        data_pick in any::<u64>(),
        data_bit in 0u32..32,
        also_flip_data in any::<bool>(),
    ) {
        let golden = golden_words(seed, len);
        let mut code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let block = (block_pick % code.blocks() as u64) as usize;
        code.corrupt_column(block, 1u32 << parity_bit);

        let mut damaged = golden.clone();
        if also_flip_data {
            let word = (data_pick % len as u64) as usize;
            damaged[word] ^= 1u32 << data_bit;
        }
        let snapshot = damaged.clone();
        prop_assert_eq!(code.repair(&mut damaged), RepairOutcome::Uncorrectable);
        prop_assert_eq!(&damaged, &snapshot, "no write-back under sidecar damage");
    }

    /// The row half of the same argument: one flipped row-parity bit in
    /// the sidecar — alone or paired with one data-word flip, including
    /// the nasty case where the data flip lands on the very word whose
    /// row bit was forged (the two parities then cancel) — must never
    /// yield a correction.
    #[test]
    fn single_row_parity_flip_never_miscorrects(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 1usize..160,
        row_pick in any::<u64>(),
        data_pick in any::<u64>(),
        data_bit in 0u32..32,
        also_flip_data in any::<bool>(),
        collide in any::<bool>(),
    ) {
        let golden = golden_words(seed, len);
        let mut code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let row = (row_pick % len as u64) as usize;
        code.corrupt_row(row);

        let mut damaged = golden.clone();
        if also_flip_data {
            // Half the cases aim the data flip at the forged row itself.
            let word = if collide { row } else { (data_pick % len as u64) as usize };
            damaged[word] ^= 1u32 << data_bit;
        }
        let snapshot = damaged.clone();
        prop_assert_eq!(code.repair(&mut damaged), RepairOutcome::Uncorrectable);
        prop_assert_eq!(&damaged, &snapshot, "no write-back under sidecar damage");
    }
}
