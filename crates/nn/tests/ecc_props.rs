//! Property tests for the ECC sidecar codec: single-bit flips always
//! decode-correct back to the golden words, and double-bit flips are
//! always flagged uncorrectable — never silently miscorrected.

use proptest::prelude::*;
use safex_nn::{EccCode, EccConfig, RepairOutcome};
use safex_tensor::DetRng;

fn golden_words(seed: u64, len: usize) -> Vec<u32> {
    let mut rng = DetRng::new(seed);
    (0..len).map(|_| rng.next_u64() as u32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every block size and every single-bit flip position, repair
    /// restores the buffer to the golden words and names the exact
    /// (word, bit) it fixed.
    #[test]
    fn any_single_bit_flip_corrects_to_golden(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 1usize..160,
        word_pick in any::<u64>(),
        bit in 0u32..32,
    ) {
        let golden = golden_words(seed, len);
        let code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let word = (word_pick % len as u64) as usize;

        let mut damaged = golden.clone();
        damaged[word] ^= 1u32 << bit;
        let outcome = code.repair(&mut damaged);
        prop_assert_eq!(outcome, RepairOutcome::Corrected { word, bit });
        prop_assert_eq!(&damaged, &golden, "repair must restore the golden words");

        // And a clean buffer is recognised as clean, untouched.
        let mut clean = golden.clone();
        prop_assert_eq!(code.repair(&mut clean), RepairOutcome::Clean);
        prop_assert_eq!(&clean, &golden);
    }

    /// Any two-bit flip — same word, same block, or across blocks — is
    /// flagged uncorrectable and the damaged buffer is left untouched:
    /// a wrong "repair" is worse than an honest escalation.
    #[test]
    fn any_double_bit_flip_is_uncorrectable_never_miscorrected(
        seed in any::<u64>(),
        block_words in 1usize..64,
        len in 2usize..160,
        pick_a in any::<u64>(),
        pick_b in any::<u64>(),
        bit_a in 0u32..32,
        bit_b in 0u32..32,
    ) {
        let golden = golden_words(seed, len);
        let code = EccCode::encode(&golden, EccConfig { block_words }).expect("encode");
        let word_a = (pick_a % len as u64) as usize;
        let word_b = (pick_b % len as u64) as usize;
        // Two flips at the same position cancel to a clean buffer;
        // require genuinely distinct damage.
        prop_assume!(word_a != word_b || bit_a != bit_b);

        let mut damaged = golden.clone();
        damaged[word_a] ^= 1u32 << bit_a;
        damaged[word_b] ^= 1u32 << bit_b;
        let snapshot = damaged.clone();
        prop_assert_eq!(code.repair(&mut damaged), RepairOutcome::Uncorrectable);
        prop_assert_eq!(
            &damaged, &snapshot,
            "an uncorrectable buffer must not be modified"
        );
    }
}
