//! Error type for the supervision crate.

use std::error::Error;
use std::fmt;

use safex_nn::NnError;

/// Errors produced by supervisors, monitors, and ROC analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SupervisionError {
    /// The supervisor has not been fitted but requires fitting.
    NotFitted(String),
    /// Input data is structurally invalid (empty, mismatched lengths,
    /// non-finite values); the message explains.
    InvalidData(String),
    /// An underlying inference failure.
    Nn(NnError),
}

impl fmt::Display for SupervisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisionError::NotFitted(name) => {
                write!(f, "supervisor {name} must be fitted before scoring")
            }
            SupervisionError::InvalidData(msg) => write!(f, "invalid supervision data: {msg}"),
            SupervisionError::Nn(e) => write!(f, "inference error: {e}"),
        }
    }
}

impl Error for SupervisionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SupervisionError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for SupervisionError {
    fn from(e: NnError) -> Self {
        SupervisionError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SupervisionError::NotFitted("mahalanobis".into());
        assert!(e.to_string().contains("mahalanobis"));
        assert!(e.source().is_none());
        let e = SupervisionError::from(NnError::EmptyModel);
        assert!(e.source().is_some());
    }
}
