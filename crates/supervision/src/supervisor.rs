//! The supervisor trait and the four standard supervisors.

use crate::error::SupervisionError;
use crate::observation::Observation;

/// A runtime anomaly scorer for DL inference.
///
/// Implementations map an [`Observation`] to a score where **higher means
/// less trustworthy**. Scores from different supervisors are not
/// comparable in magnitude; calibrate each with
/// [`crate::monitor::CalibratedMonitor`] before thresholding, and z-score
/// them before ensembling ([`crate::ensemble::ScoreEnsemble`] does this).
///
/// The trait is object-safe; pipelines hold `Box<dyn Supervisor>`.
pub trait Supervisor {
    /// Stable identifier used in reports and evidence records.
    fn name(&self) -> &'static str;

    /// Scores one observation (higher = more anomalous).
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::NotFitted`] if the supervisor requires
    /// fitting and has not been fitted, or
    /// [`SupervisionError::InvalidData`] on malformed observations.
    fn score(&self, obs: &Observation) -> Result<f64, SupervisionError>;

    /// Fits the supervisor on in-distribution observations with labels.
    ///
    /// The default implementation is a no-op for fit-free supervisors.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] on empty or inconsistent
    /// training data.
    fn fit(
        &mut self,
        observations: &[Observation],
        labels: &[usize],
    ) -> Result<(), SupervisionError> {
        let _ = (observations, labels);
        Ok(())
    }
}

/// Baseline supervisor: `score = 1 - max softmax probability`.
///
/// Fit-free. The weakest detector in the literature but the universal
/// baseline (Hendrycks & Gimpel); experiment E1 reproduces its ordering
/// against the stronger supervisors below.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoftmaxThreshold;

impl SoftmaxThreshold {
    /// Creates the supervisor.
    pub fn new() -> Self {
        SoftmaxThreshold
    }
}

impl Supervisor for SoftmaxThreshold {
    fn name(&self) -> &'static str {
        "softmax_threshold"
    }

    fn score(&self, obs: &Observation) -> Result<f64, SupervisionError> {
        obs.validate()?;
        Ok(1.0 - obs.confidence() as f64)
    }
}

/// Logit-margin supervisor: `score = -(top1 - top2)` over raw logits.
///
/// Fit-free. Near-boundary and far-OOD inputs both compress the margin,
/// which softmax saturation can hide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogitMargin;

impl LogitMargin {
    /// Creates the supervisor.
    pub fn new() -> Self {
        LogitMargin
    }
}

impl Supervisor for LogitMargin {
    fn name(&self) -> &'static str {
        "logit_margin"
    }

    fn score(&self, obs: &Observation) -> Result<f64, SupervisionError> {
        obs.validate()?;
        if obs.logits.len() < 2 {
            return Err(SupervisionError::InvalidData(
                "logit margin needs at least two logits".into(),
            ));
        }
        let mut top1 = f32::NEG_INFINITY;
        let mut top2 = f32::NEG_INFINITY;
        for &l in &obs.logits {
            if l > top1 {
                top2 = top1;
                top1 = l;
            } else if l > top2 {
                top2 = l;
            }
        }
        Ok(-((top1 - top2) as f64))
    }
}

/// Class-conditional Mahalanobis-distance supervisor on penultimate
/// features (diagonal covariance).
///
/// Must be [`Supervisor::fit`] on labelled in-distribution observations
/// before scoring. The score is the minimum squared Mahalanobis distance
/// over classes:
/// `min_c Σ_d (f_d - μ_{c,d})² / σ²_d`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Mahalanobis {
    /// Per-class feature means.
    means: Vec<Vec<f64>>,
    /// Shared diagonal variance (tied across classes, floored).
    variance: Vec<f64>,
}

impl Mahalanobis {
    /// Minimum variance floor avoiding division blow-ups on constant
    /// features.
    const VAR_FLOOR: f64 = 1e-6;

    /// Creates an unfitted supervisor.
    pub fn new() -> Self {
        Mahalanobis::default()
    }

    /// Whether [`Supervisor::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        !self.means.is_empty()
    }
}

impl Supervisor for Mahalanobis {
    fn name(&self) -> &'static str {
        "mahalanobis"
    }

    fn score(&self, obs: &Observation) -> Result<f64, SupervisionError> {
        obs.validate()?;
        if !self.is_fitted() {
            return Err(SupervisionError::NotFitted("mahalanobis".into()));
        }
        let d = self.variance.len();
        if obs.features.len() != d {
            return Err(SupervisionError::InvalidData(format!(
                "feature dim {} does not match fitted dim {d}",
                obs.features.len()
            )));
        }
        let mut best = f64::INFINITY;
        for mean in &self.means {
            let mut dist = 0.0f64;
            for (i, &m) in mean.iter().enumerate().take(d) {
                let diff = obs.features[i] as f64 - m;
                dist += diff * diff / self.variance[i];
            }
            if dist < best {
                best = dist;
            }
        }
        Ok(best)
    }

    fn fit(
        &mut self,
        observations: &[Observation],
        labels: &[usize],
    ) -> Result<(), SupervisionError> {
        if observations.is_empty() {
            return Err(SupervisionError::InvalidData(
                "cannot fit on empty observations".into(),
            ));
        }
        if observations.len() != labels.len() {
            return Err(SupervisionError::InvalidData(format!(
                "{} observations but {} labels",
                observations.len(),
                labels.len()
            )));
        }
        let d = observations[0].features.len();
        if observations.iter().any(|o| o.features.len() != d) {
            return Err(SupervisionError::InvalidData(
                "inconsistent feature dimensions".into(),
            ));
        }
        let classes = labels.iter().max().copied().unwrap_or(0) + 1;
        let mut means = vec![vec![0.0f64; d]; classes];
        let mut counts = vec![0usize; classes];
        for (o, &y) in observations.iter().zip(labels) {
            counts[y] += 1;
            for (m, &f) in means[y].iter_mut().zip(&o.features) {
                *m += f as f64;
            }
        }
        for (mean, &c) in means.iter_mut().zip(&counts) {
            if c == 0 {
                continue;
            }
            for m in mean.iter_mut() {
                *m /= c as f64;
            }
        }
        // Drop classes with no observations to keep the min well-defined.
        let means: Vec<Vec<f64>> = means
            .into_iter()
            .zip(&counts)
            .filter(|(_, &c)| c > 0)
            .map(|(m, _)| m)
            .collect();
        // Tied diagonal variance around class means.
        let mut variance = vec![0.0f64; d];
        let mut kept = vec![0usize; 0];
        kept.extend(
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| i),
        );
        for (o, &y) in observations.iter().zip(labels) {
            let class_pos = kept
                .iter()
                .position(|&k| k == y)
                .expect("label was counted");
            for i in 0..d {
                let diff = o.features[i] as f64 - means[class_pos][i];
                variance[i] += diff * diff;
            }
        }
        for v in variance.iter_mut() {
            *v = (*v / observations.len() as f64).max(Self::VAR_FLOOR);
        }
        self.means = means;
        self.variance = variance;
        Ok(())
    }
}

/// PCA-subspace reconstruction-error supervisor on the raw input.
///
/// Fits a `k`-dimensional principal subspace of the training inputs (power
/// iteration with deflation) and scores inputs by the squared distance to
/// that subspace. Detects covariate shift — occlusions, sensor faults —
/// that may never perturb the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    components: usize,
    mean: Vec<f64>,
    /// Row-major `components x dim` orthonormal basis.
    basis: Vec<Vec<f64>>,
}

impl Reconstruction {
    /// Creates an unfitted supervisor keeping `components` principal
    /// directions.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for zero components.
    pub fn new(components: usize) -> Result<Self, SupervisionError> {
        if components == 0 {
            return Err(SupervisionError::InvalidData(
                "components must be non-zero".into(),
            ));
        }
        Ok(Reconstruction {
            components,
            mean: Vec::new(),
            basis: Vec::new(),
        })
    }

    /// Whether [`Supervisor::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        !self.basis.is_empty()
    }

    /// Number of principal components retained.
    pub fn components(&self) -> usize {
        self.components
    }
}

impl Supervisor for Reconstruction {
    fn name(&self) -> &'static str {
        "reconstruction"
    }

    fn score(&self, obs: &Observation) -> Result<f64, SupervisionError> {
        obs.validate()?;
        if !self.is_fitted() {
            return Err(SupervisionError::NotFitted("reconstruction".into()));
        }
        let d = self.mean.len();
        if obs.input.len() != d {
            return Err(SupervisionError::InvalidData(format!(
                "input dim {} does not match fitted dim {d}",
                obs.input.len()
            )));
        }
        // Centre, project onto the basis, measure the residual.
        let centred: Vec<f64> = obs
            .input
            .iter()
            .zip(&self.mean)
            .map(|(&x, &m)| x as f64 - m)
            .collect();
        let mut residual_sq = centred.iter().map(|c| c * c).sum::<f64>();
        for b in &self.basis {
            let proj: f64 = centred.iter().zip(b).map(|(c, w)| c * w).sum();
            residual_sq -= proj * proj;
        }
        Ok(residual_sq.max(0.0))
    }

    fn fit(
        &mut self,
        observations: &[Observation],
        _labels: &[usize],
    ) -> Result<(), SupervisionError> {
        if observations.len() < 2 {
            return Err(SupervisionError::InvalidData(
                "reconstruction needs at least two observations".into(),
            ));
        }
        let d = observations[0].input.len();
        if observations.iter().any(|o| o.input.len() != d) {
            return Err(SupervisionError::InvalidData(
                "inconsistent input dimensions".into(),
            ));
        }
        let n = observations.len();
        let mut mean = vec![0.0f64; d];
        for o in observations {
            for (m, &x) in mean.iter_mut().zip(&o.input) {
                *m += x as f64;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f64;
        }
        let centred: Vec<Vec<f64>> = observations
            .iter()
            .map(|o| {
                o.input
                    .iter()
                    .zip(&mean)
                    .map(|(&x, &m)| x as f64 - m)
                    .collect()
            })
            .collect();

        // Power iteration with deflation. Deterministic start vectors.
        let k = self.components.min(d);
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
        for comp in 0..k {
            let mut v = vec![0.0f64; d];
            v[comp % d] = 1.0;
            for _ in 0..50 {
                // w = C v where C = (1/n) Σ x xᵀ, computed as Σ (x·v) x.
                let mut w = vec![0.0f64; d];
                for x in &centred {
                    let dot: f64 = x.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (wi, &xi) in w.iter_mut().zip(x) {
                        *wi += dot * xi;
                    }
                }
                // Deflate: remove projections on previous components.
                for b in &basis {
                    let dot: f64 = w.iter().zip(b).map(|(a, c)| a * c).sum();
                    for (wi, &bi) in w.iter_mut().zip(b) {
                        *wi -= dot * bi;
                    }
                }
                let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm < 1e-12 {
                    // Degenerate direction (data spans fewer dims); keep
                    // the current orthogonal unit vector as-is.
                    break;
                }
                for (vi, wi) in v.iter_mut().zip(&w) {
                    *vi = wi / norm;
                }
            }
            // Re-orthonormalise defensively.
            for b in &basis {
                let dot: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
                for (vi, &bi) in v.iter_mut().zip(b) {
                    *vi -= dot * bi;
                }
            }
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for vi in v.iter_mut() {
                    *vi /= norm;
                }
                basis.push(v);
            }
        }
        self.mean = mean;
        self.basis = basis;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(input: &[f32], logits: &[f32], probs: &[f32], features: &[f32]) -> Observation {
        Observation {
            input: input.to_vec(),
            logits: logits.to_vec(),
            probs: probs.to_vec(),
            features: features.to_vec(),
        }
    }

    #[test]
    fn softmax_threshold_orders_by_confidence() {
        let s = SoftmaxThreshold::new();
        let confident = obs(&[0.0], &[5.0, 0.0], &[0.95, 0.05], &[0.0]);
        let unsure = obs(&[0.0], &[1.0, 0.9], &[0.55, 0.45], &[0.0]);
        assert!(s.score(&unsure).unwrap() > s.score(&confident).unwrap());
        assert!((s.score(&confident).unwrap() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn logit_margin_orders_by_margin() {
        let s = LogitMargin::new();
        let wide = obs(&[0.0], &[5.0, 1.0, 0.0], &[0.9, 0.08, 0.02], &[0.0]);
        let narrow = obs(&[0.0], &[2.0, 1.9, 0.0], &[0.4, 0.38, 0.22], &[0.0]);
        assert!(s.score(&narrow).unwrap() > s.score(&wide).unwrap());
        assert_eq!(s.score(&wide).unwrap(), -4.0);
    }

    #[test]
    fn logit_margin_needs_two_logits() {
        let s = LogitMargin::new();
        let single = obs(&[0.0], &[1.0], &[1.0], &[0.0]);
        assert!(s.score(&single).is_err());
    }

    #[test]
    fn mahalanobis_requires_fit() {
        let s = Mahalanobis::new();
        let o = obs(&[0.0], &[1.0, 0.0], &[0.7, 0.3], &[0.0, 0.0]);
        assert!(matches!(s.score(&o), Err(SupervisionError::NotFitted(_))));
    }

    #[test]
    fn mahalanobis_scores_far_points_higher() {
        let mut s = Mahalanobis::new();
        // Two clusters: class 0 near (0,0), class 1 near (5,5).
        let mut train = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.1;
            train.push(obs(&[0.0], &[0.0, 0.0], &[0.5, 0.5], &[jitter, -jitter]));
            labels.push(0);
            train.push(obs(
                &[0.0],
                &[0.0, 0.0],
                &[0.5, 0.5],
                &[5.0 + jitter, 5.0 - jitter],
            ));
            labels.push(1);
        }
        s.fit(&train, &labels).unwrap();
        let near0 = obs(&[0.0], &[0.0, 0.0], &[0.5, 0.5], &[0.1, 0.0]);
        let near1 = obs(&[0.0], &[0.0, 0.0], &[0.5, 0.5], &[5.1, 5.0]);
        let far = obs(&[0.0], &[0.0, 0.0], &[0.5, 0.5], &[20.0, -20.0]);
        assert!(s.score(&far).unwrap() > s.score(&near0).unwrap() * 10.0);
        assert!(s.score(&far).unwrap() > s.score(&near1).unwrap() * 10.0);
    }

    #[test]
    fn mahalanobis_fit_validation() {
        let mut s = Mahalanobis::new();
        assert!(s.fit(&[], &[]).is_err());
        let o = obs(&[0.0], &[0.0, 0.0], &[1.0, 0.0], &[0.0]);
        assert!(s.fit(std::slice::from_ref(&o), &[0, 1]).is_err());
        // Dimension mismatch at score time.
        s.fit(&[o.clone(), o], &[0, 0]).unwrap();
        let wrong = obs(&[0.0], &[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]);
        assert!(s.score(&wrong).is_err());
    }

    #[test]
    fn reconstruction_detects_off_subspace_points() {
        // Training data lies on the x-axis (1-D subspace of 3-D space).
        let mut s = Reconstruction::new(1).unwrap();
        let train: Vec<Observation> = (0..20)
            .map(|i| {
                let x = (i as f32 - 10.0) / 5.0;
                obs(&[x, 0.0, 0.0], &[0.0, 0.0], &[0.5, 0.5], &[0.0])
            })
            .collect();
        s.fit(&train, &[0; 20]).unwrap();
        let on = obs(&[1.5, 0.0, 0.0], &[0.0, 0.0], &[0.5, 0.5], &[0.0]);
        let off = obs(&[0.0, 2.0, 1.0], &[0.0, 0.0], &[0.5, 0.5], &[0.0]);
        assert!(s.score(&on).unwrap() < 1e-6);
        assert!(s.score(&off).unwrap() > 4.9);
    }

    #[test]
    fn reconstruction_validation() {
        assert!(Reconstruction::new(0).is_err());
        let mut s = Reconstruction::new(2).unwrap();
        let o = obs(&[0.0, 0.0], &[0.0, 0.0], &[1.0, 0.0], &[0.0]);
        assert!(s.fit(std::slice::from_ref(&o), &[0]).is_err()); // needs >= 2
        assert!(matches!(s.score(&o), Err(SupervisionError::NotFitted(_))));
    }

    #[test]
    fn reconstruction_basis_is_orthonormal() {
        let mut s = Reconstruction::new(2).unwrap();
        let train: Vec<Observation> = (0..30)
            .map(|i| {
                let t = i as f32 / 3.0;
                obs(
                    &[t.sin(), t.cos(), 0.3 * t, 0.1],
                    &[0.0, 0.0],
                    &[0.5, 0.5],
                    &[0.0],
                )
            })
            .collect();
        s.fit(&train, &vec![0; 30]).unwrap();
        assert!(s.is_fitted());
        for (i, a) in s.basis.iter().enumerate() {
            let norm: f64 = a.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for b in &s.basis[..i] {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-6, "components not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn supervisors_are_object_safe() {
        let list: Vec<Box<dyn Supervisor>> = vec![
            Box::new(SoftmaxThreshold::new()),
            Box::new(LogitMargin::new()),
            Box::new(Mahalanobis::new()),
            Box::new(Reconstruction::new(2).unwrap()),
        ];
        let names: Vec<&str> = list.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "softmax_threshold",
                "logit_margin",
                "mahalanobis",
                "reconstruction"
            ]
        );
    }
}
