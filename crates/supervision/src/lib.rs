#![forbid(unsafe_code)]
//! # safex-supervision
//!
//! Runtime supervisors for DL inference: the operational half of pillar 1
//! of the SAFEXPLAIN paper — *"specific approaches to explain whether
//! predictions can be trusted"*.
//!
//! A **supervisor** watches each inference and produces an anomaly score
//! (higher = less trustworthy). The SAFEXPLAIN consortium's companion work
//! (Henriksson et al., SEAA 2019 / IST 2020) evaluates exactly this kind of
//! component under the name *supervisor*; this crate implements the
//! standard family:
//!
//! * [`supervisor::SoftmaxThreshold`] — `1 - max softmax probability`; the
//!   baseline every paper compares against.
//! * [`supervisor::LogitMargin`] — negative margin between the two largest
//!   logits; sharper than softmax for near-boundary inputs.
//! * [`supervisor::Mahalanobis`] — distance to the nearest class-conditional
//!   Gaussian fitted on penultimate features (diagonal covariance).
//! * [`supervisor::Reconstruction`] — PCA-subspace reconstruction error on
//!   the raw input; detects covariate shift that never reaches the logits.
//!
//! Scores become accept/reject decisions through a
//! [`monitor::CalibratedMonitor`], whose threshold is fitted to a target
//! false-positive rate on in-distribution data. [`ensemble::ScoreEnsemble`]
//! combines supervisors; [`roc`] computes AUROC / TPR / FPR for experiment
//! E1. Two complementary monitors cover what per-frame scoring cannot:
//! [`odd::OddEnvelope`] is a *specified* input-domain envelope an assessor
//! can read, and [`drift::CusumDetector`] watches the score *stream* for
//! slow drift that never trips a per-frame threshold.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_nn::{Engine, model::ModelBuilder};
//! use safex_supervision::observation::observe;
//! use safex_supervision::supervisor::{SoftmaxThreshold, Supervisor};
//! use safex_tensor::{DetRng, Shape};
//!
//! let mut rng = DetRng::new(1);
//! let model = ModelBuilder::new(Shape::vector(4))
//!     .dense(8, &mut rng)?.relu().dense(3, &mut rng)?.softmax()
//!     .build()?;
//! let mut engine = Engine::new(model);
//! let obs = observe(&mut engine, &[0.1, 0.2, 0.3, 0.4])?;
//! let score = SoftmaxThreshold::new().score(&obs)?;
//! assert!((0.0..=1.0).contains(&score));
//! # Ok(())
//! # }
//! ```

pub mod drift;
pub mod ensemble;
pub mod error;
pub mod monitor;
pub mod observation;
pub mod odd;
pub mod roc;
pub mod supervisor;

pub use error::SupervisionError;
pub use monitor::{CalibratedMonitor, Verdict};
pub use observation::{observe, Observation};
pub use supervisor::Supervisor;
