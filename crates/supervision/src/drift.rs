//! Streaming drift detection over supervisor scores.
//!
//! Per-frame supervisors ([`crate::supervisor`]) catch *individually*
//! anomalous inputs; slow environmental drift (gradual sensor
//! degradation, seasonal change, lens fouling) can stay under every
//! per-frame threshold while the *distribution* of scores creeps upward.
//! The classic runtime answer is a CUSUM chart: accumulate evidence of a
//! mean shift and alarm when it crosses a decision interval.
//!
//! [`CusumDetector`] implements the standardised two-sided CUSUM with the
//! usual `(k, h)` parametrisation: `k` is the slack (in reference standard
//! deviations) that absorbs noise, `h` is the decision interval. With
//! `k = 0.5, h = 5` the chart detects a 1σ mean shift in ~10 observations
//! while keeping the in-control false-alarm run length very long.

use crate::error::SupervisionError;

/// The state a CUSUM update reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriftState {
    /// No evidence of drift.
    InControl,
    /// The score mean has drifted upward (more anomalous) past `h`.
    DriftedUp,
    /// The score mean has drifted downward past `h` (scores collapsing —
    /// e.g. a stuck sensor feeding constant frames).
    DriftedDown,
}

impl DriftState {
    /// Whether either direction has alarmed.
    pub fn is_drifted(self) -> bool {
        self != DriftState::InControl
    }
}

/// Two-sided standardised CUSUM detector over a scalar stream.
///
/// # Examples
///
/// ```
/// use safex_supervision::drift::CusumDetector;
///
/// // Reference: supervisor scores on validation data.
/// let reference: Vec<f64> = (0..100).map(|i| 1.0 + (i % 10) as f64 * 0.01).collect();
/// let mut detector = CusumDetector::fit(&reference, 0.5, 5.0).unwrap();
/// // A sustained upward shift alarms within a handful of frames.
/// let mut alarmed = false;
/// for _ in 0..30 {
///     if detector.update(2.0).unwrap().is_drifted() {
///         alarmed = true;
///         break;
///     }
/// }
/// assert!(alarmed);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CusumDetector {
    mean: f64,
    std: f64,
    k: f64,
    h: f64,
    s_hi: f64,
    s_lo: f64,
    observations: u64,
    alarms: u64,
}

impl CusumDetector {
    /// Fits the reference mean/std from in-control scores and sets the
    /// slack `k` and decision interval `h` (both in reference standard
    /// deviations).
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for fewer than 10
    /// reference scores, non-finite scores, a degenerate (zero-variance)
    /// reference, or non-positive `k`/`h`.
    pub fn fit(reference: &[f64], k: f64, h: f64) -> Result<Self, SupervisionError> {
        if reference.len() < 10 {
            return Err(SupervisionError::InvalidData(format!(
                "need at least 10 reference scores, got {}",
                reference.len()
            )));
        }
        if reference.iter().any(|x| !x.is_finite()) {
            return Err(SupervisionError::InvalidData(
                "non-finite reference scores".into(),
            ));
        }
        if !(k > 0.0 && k.is_finite() && h > 0.0 && h.is_finite()) {
            return Err(SupervisionError::InvalidData(
                "k and h must be positive".into(),
            ));
        }
        let n = reference.len() as f64;
        let mean = reference.iter().sum::<f64>() / n;
        let var = reference.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        if var <= 0.0 {
            return Err(SupervisionError::InvalidData(
                "reference scores have zero variance".into(),
            ));
        }
        Ok(CusumDetector {
            mean,
            std: var.sqrt(),
            k,
            h,
            s_hi: 0.0,
            s_lo: 0.0,
            observations: 0,
            alarms: 0,
        })
    }

    /// Feeds one score and returns the current state.
    ///
    /// After an alarm the accumulators reset (restart chart), so
    /// persistent drift produces repeated alarms rather than one.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for a non-finite score.
    pub fn update(&mut self, score: f64) -> Result<DriftState, SupervisionError> {
        if !score.is_finite() {
            return Err(SupervisionError::InvalidData("non-finite score".into()));
        }
        self.observations += 1;
        let z = (score - self.mean) / self.std;
        self.s_hi = (self.s_hi + z - self.k).max(0.0);
        self.s_lo = (self.s_lo - z - self.k).max(0.0);
        if self.s_hi > self.h {
            self.s_hi = 0.0;
            self.s_lo = 0.0;
            self.alarms += 1;
            return Ok(DriftState::DriftedUp);
        }
        if self.s_lo > self.h {
            self.s_hi = 0.0;
            self.s_lo = 0.0;
            self.alarms += 1;
            return Ok(DriftState::DriftedDown);
        }
        Ok(DriftState::InControl)
    }

    /// `(observations, alarms)` since fitting.
    pub fn stats(&self) -> (u64, u64) {
        (self.observations, self.alarms)
    }

    /// The fitted reference mean.
    pub fn reference_mean(&self) -> f64 {
        self.mean
    }

    /// The fitted reference standard deviation.
    pub fn reference_std(&self) -> f64 {
        self.std
    }

    /// Current positive-side accumulator (diagnostic).
    pub fn upper_statistic(&self) -> f64 {
        self.s_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    fn reference(seed: u64) -> Vec<f64> {
        let mut rng = DetRng::new(seed);
        (0..200).map(|_| rng.gaussian(10.0, 1.0)).collect()
    }

    #[test]
    fn in_control_stream_rarely_alarms() {
        let mut det = CusumDetector::fit(&reference(1), 0.5, 5.0).unwrap();
        let mut rng = DetRng::new(2);
        let mut alarms = 0usize;
        for _ in 0..2000 {
            if det.update(rng.gaussian(10.0, 1.0)).unwrap().is_drifted() {
                alarms += 1;
            }
        }
        // In-control ARL at (0.5, 5) is ~900+; a couple of alarms over
        // 2000 frames is acceptable, frequent alarming is a bug.
        assert!(alarms <= 5, "false alarms: {alarms}");
    }

    #[test]
    fn one_sigma_shift_detected_quickly() {
        let mut det = CusumDetector::fit(&reference(3), 0.5, 5.0).unwrap();
        let mut rng = DetRng::new(4);
        let mut first_alarm = None;
        for i in 0..100 {
            if det.update(rng.gaussian(11.0, 1.0)).unwrap() == DriftState::DriftedUp {
                first_alarm = Some(i);
                break;
            }
        }
        let at = first_alarm.expect("must alarm");
        assert!(at < 30, "detection delay {at} too long for a 1-sigma shift");
    }

    #[test]
    fn downward_collapse_detected() {
        let mut det = CusumDetector::fit(&reference(5), 0.5, 5.0).unwrap();
        let mut state = DriftState::InControl;
        for _ in 0..50 {
            state = det.update(7.0).unwrap(); // 3 sigma below
            if state.is_drifted() {
                break;
            }
        }
        assert_eq!(state, DriftState::DriftedDown);
    }

    #[test]
    fn persistent_drift_realarms_after_reset() {
        let mut det = CusumDetector::fit(&reference(6), 0.5, 5.0).unwrap();
        let mut alarms = 0usize;
        for _ in 0..200 {
            if det.update(12.0).unwrap().is_drifted() {
                alarms += 1;
            }
        }
        assert!(alarms >= 2, "persistent drift must re-alarm: {alarms}");
        assert_eq!(det.stats().1 as usize, alarms);
        assert_eq!(det.stats().0, 200);
    }

    #[test]
    fn fit_validation() {
        assert!(CusumDetector::fit(&[1.0; 5], 0.5, 5.0).is_err());
        assert!(CusumDetector::fit(&[1.0; 20], 0.5, 5.0).is_err()); // zero variance
        assert!(CusumDetector::fit(&reference(7), 0.0, 5.0).is_err());
        assert!(CusumDetector::fit(&reference(7), 0.5, 0.0).is_err());
        let mut bad = reference(7);
        bad[0] = f64::NAN;
        assert!(CusumDetector::fit(&bad, 0.5, 5.0).is_err());
    }

    #[test]
    fn update_rejects_nan() {
        let mut det = CusumDetector::fit(&reference(8), 0.5, 5.0).unwrap();
        assert!(det.update(f64::NAN).is_err());
    }

    #[test]
    fn accessors() {
        let det = CusumDetector::fit(&reference(9), 0.5, 5.0).unwrap();
        assert!((det.reference_mean() - 10.0).abs() < 0.3);
        assert!((det.reference_std() - 1.0).abs() < 0.2);
        assert_eq!(det.upper_statistic(), 0.0);
    }
}
