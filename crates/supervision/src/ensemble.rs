//! Supervisor ensembles.
//!
//! Different supervisors see different failure modes (softmax saturation
//! vs feature-space drift vs raw covariate shift), so combining them is
//! standard practice. [`ScoreEnsemble`] z-normalises each member's score
//! against its in-distribution calibration statistics and averages;
//! [`VoteEnsemble`] thresholds each member and takes a k-of-n vote.

use crate::error::SupervisionError;
use crate::monitor::{CalibratedMonitor, Verdict};
use crate::observation::Observation;
use crate::supervisor::Supervisor;

/// Mean-of-z-scores ensemble.
///
/// Each member is calibrated with the mean and standard deviation of its
/// scores on in-distribution data; at runtime the ensemble score is the
/// average of the members' z-scores, which is itself a supervisor score
/// (higher = more anomalous).
pub struct ScoreEnsemble {
    members: Vec<Box<dyn Supervisor>>,
    /// Per-member `(mean, std)` of in-distribution scores.
    calibration: Vec<(f64, f64)>,
}

impl std::fmt::Debug for ScoreEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.members.iter().map(|m| m.name()).collect();
        f.debug_struct("ScoreEnsemble")
            .field("members", &names)
            .field("calibration", &self.calibration)
            .finish()
    }
}

impl ScoreEnsemble {
    /// Builds an ensemble and calibrates it on in-distribution
    /// observations (members must already be fitted).
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for an empty member list
    /// or empty calibration set, and propagates member scoring failures.
    pub fn fit(
        members: Vec<Box<dyn Supervisor>>,
        id_observations: &[Observation],
    ) -> Result<Self, SupervisionError> {
        if members.is_empty() {
            return Err(SupervisionError::InvalidData(
                "ensemble needs at least one member".into(),
            ));
        }
        if id_observations.is_empty() {
            return Err(SupervisionError::InvalidData(
                "ensemble calibration needs observations".into(),
            ));
        }
        let mut calibration = Vec::with_capacity(members.len());
        for member in &members {
            let scores: Result<Vec<f64>, _> =
                id_observations.iter().map(|o| member.score(o)).collect();
            let scores = scores?;
            let n = scores.len() as f64;
            let mean = scores.iter().sum::<f64>() / n;
            let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
            // Floor the std so constant scorers contribute zero, not NaN.
            calibration.push((mean, var.sqrt().max(1e-12)));
        }
        Ok(ScoreEnsemble {
            members,
            calibration,
        })
    }

    /// Member names in order.
    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Supervisor for ScoreEnsemble {
    fn name(&self) -> &'static str {
        "score_ensemble"
    }

    fn score(&self, obs: &Observation) -> Result<f64, SupervisionError> {
        let mut total = 0.0f64;
        for (member, (mean, std)) in self.members.iter().zip(&self.calibration) {
            let s = member.score(obs)?;
            total += (s - mean) / std;
        }
        Ok(total / self.members.len() as f64)
    }
}

/// k-of-n voting ensemble over calibrated monitors.
///
/// Rejects when at least `quorum` members reject. With `quorum = 1` the
/// ensemble is maximally sensitive (union of detectors); with
/// `quorum = n` it is maximally specific (intersection).
#[derive(Debug)]
pub struct VoteEnsemble {
    monitors: Vec<CalibratedMonitor>,
    quorum: usize,
}

impl VoteEnsemble {
    /// Creates a voting ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for an empty monitor list
    /// or a quorum of zero or above the member count.
    pub fn new(monitors: Vec<CalibratedMonitor>, quorum: usize) -> Result<Self, SupervisionError> {
        if monitors.is_empty() {
            return Err(SupervisionError::InvalidData(
                "vote ensemble needs monitors".into(),
            ));
        }
        if quorum == 0 || quorum > monitors.len() {
            return Err(SupervisionError::InvalidData(format!(
                "quorum {quorum} invalid for {} monitors",
                monitors.len()
            )));
        }
        Ok(VoteEnsemble { monitors, quorum })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether the ensemble has no members (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// The reject quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Checks an observation; returns the verdict and the number of
    /// members that voted to reject.
    ///
    /// # Errors
    ///
    /// Propagates member failures.
    pub fn check(&self, obs: &Observation) -> Result<(Verdict, usize), SupervisionError> {
        let mut rejects = 0usize;
        for m in &self.monitors {
            if let (Verdict::Reject, _) = m.check(obs)? {
                rejects += 1;
            }
        }
        let verdict = if rejects >= self.quorum {
            Verdict::Reject
        } else {
            Verdict::Accept
        };
        Ok((verdict, rejects))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{LogitMargin, SoftmaxThreshold};

    fn obs(conf: f32, margin: f32) -> Observation {
        Observation {
            input: vec![0.0],
            logits: vec![margin, 0.0],
            probs: vec![conf, 1.0 - conf],
            features: vec![0.0],
        }
    }

    fn id_observations() -> Vec<Observation> {
        (0..20)
            .map(|i| obs(0.9 + (i % 5) as f32 * 0.01, 4.0))
            .collect()
    }

    #[test]
    fn score_ensemble_scores_anomalies_higher() {
        let e = ScoreEnsemble::fit(
            vec![
                Box::new(SoftmaxThreshold::new()),
                Box::new(LogitMargin::new()),
            ],
            &id_observations(),
        )
        .unwrap();
        let normal = obs(0.92, 4.0);
        let weird = obs(0.5, 0.1);
        assert!(e.score(&weird).unwrap() > e.score(&normal).unwrap() + 1.0);
        assert_eq!(e.member_names(), vec!["softmax_threshold", "logit_margin"]);
        assert_eq!(e.name(), "score_ensemble");
    }

    #[test]
    fn score_ensemble_validation() {
        assert!(ScoreEnsemble::fit(vec![], &id_observations()).is_err());
        assert!(ScoreEnsemble::fit(vec![Box::new(SoftmaxThreshold::new())], &[]).is_err());
    }

    #[test]
    fn vote_ensemble_quorum_semantics() {
        let strict = CalibratedMonitor::with_threshold(
            Box::new(SoftmaxThreshold::new()),
            0.05, // rejects anything below 95 % confidence
        )
        .unwrap();
        let lax = CalibratedMonitor::with_threshold(
            Box::new(SoftmaxThreshold::new()),
            0.45, // rejects only below 55 % confidence
        )
        .unwrap();

        let borderline = obs(0.8, 1.0); // score 0.2: strict rejects, lax accepts

        let any = VoteEnsemble::new(
            vec![
                CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.05).unwrap(),
                CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.45).unwrap(),
            ],
            1,
        )
        .unwrap();
        let (v, rejects) = any.check(&borderline).unwrap();
        assert_eq!(v, Verdict::Reject);
        assert_eq!(rejects, 1);

        let all = VoteEnsemble::new(vec![strict, lax], 2).unwrap();
        let (v, rejects) = all.check(&borderline).unwrap();
        assert_eq!(v, Verdict::Accept);
        assert_eq!(rejects, 1);
    }

    #[test]
    fn vote_ensemble_validation() {
        assert!(VoteEnsemble::new(vec![], 1).is_err());
        let m = CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.5).unwrap();
        assert!(VoteEnsemble::new(vec![m], 0).is_err());
        let m = CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.5).unwrap();
        assert!(VoteEnsemble::new(vec![m], 2).is_err());
    }

    #[test]
    fn vote_ensemble_accessors() {
        let m = CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.5).unwrap();
        let e = VoteEnsemble::new(vec![m], 1).unwrap();
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        assert_eq!(e.quorum(), 1);
    }

    #[test]
    fn ensemble_is_a_supervisor() {
        // ScoreEnsemble itself can be wrapped in a CalibratedMonitor.
        let e = ScoreEnsemble::fit(vec![Box::new(SoftmaxThreshold::new())], &id_observations())
            .unwrap();
        let m = CalibratedMonitor::with_threshold(Box::new(e), 3.0).unwrap();
        let (v, _) = m.check(&obs(0.91, 4.0)).unwrap();
        assert_eq!(v, Verdict::Accept);
    }
}
