//! ROC analysis for supervisor evaluation (experiment E1's metrics).
//!
//! Convention: out-of-distribution samples are the *positive* class and
//! should receive *higher* scores.

use crate::error::SupervisionError;

/// Area under the ROC curve via the Mann-Whitney U statistic.
///
/// `id_scores` are in-distribution (negative), `ood_scores` are
/// out-of-distribution (positive). Ties count half. 1.0 = perfect
/// separation, 0.5 = chance.
///
/// # Errors
///
/// Returns [`SupervisionError::InvalidData`] if either set is empty or
/// contains non-finite scores.
pub fn auroc(id_scores: &[f64], ood_scores: &[f64]) -> Result<f64, SupervisionError> {
    validate(id_scores, ood_scores)?;
    // Rank-based computation, O((n+m) log (n+m)).
    let mut all: Vec<(f64, bool)> = id_scores
        .iter()
        .map(|&s| (s, false))
        .chain(ood_scores.iter().map(|&s| (s, true)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores compare"));
    // Assign mid-ranks to ties.
    let n = all.len();
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let mid_rank = (i + j) as f64 / 2.0 + 1.0; // 1-based mid rank
        for item in all.iter().take(j + 1).skip(i) {
            if item.1 {
                rank_sum_pos += mid_rank;
            }
        }
        i = j + 1;
    }
    let n_pos = ood_scores.len() as f64;
    let n_neg = id_scores.len() as f64;
    let u = rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0;
    Ok(u / (n_pos * n_neg))
}

/// True-positive rate at the threshold giving the requested
/// false-positive rate (`tpr_at_fpr(id, ood, 0.05)` = "TPR at 5 % FPR").
///
/// # Errors
///
/// Returns [`SupervisionError::InvalidData`] on empty/non-finite scores or
/// an FPR outside `(0, 1)`.
pub fn tpr_at_fpr(
    id_scores: &[f64],
    ood_scores: &[f64],
    fpr: f64,
) -> Result<f64, SupervisionError> {
    validate(id_scores, ood_scores)?;
    if !(fpr > 0.0 && fpr < 1.0) {
        return Err(SupervisionError::InvalidData(format!(
            "FPR {fpr} outside (0, 1)"
        )));
    }
    let threshold = safex_tensor::stats::quantile(id_scores, 1.0 - fpr)
        .map_err(|e| SupervisionError::InvalidData(e.to_string()))?;
    let tp = ood_scores.iter().filter(|&&s| s > threshold).count();
    Ok(tp as f64 / ood_scores.len() as f64)
}

/// False-positive rate at the threshold giving the requested true-positive
/// rate (`fpr_at_tpr(id, ood, 0.95)` = the standard "FPR@95TPR").
///
/// # Errors
///
/// Returns [`SupervisionError::InvalidData`] on empty/non-finite scores or
/// a TPR outside `(0, 1)`.
pub fn fpr_at_tpr(
    id_scores: &[f64],
    ood_scores: &[f64],
    tpr: f64,
) -> Result<f64, SupervisionError> {
    validate(id_scores, ood_scores)?;
    if !(tpr > 0.0 && tpr < 1.0) {
        return Err(SupervisionError::InvalidData(format!(
            "TPR {tpr} outside (0, 1)"
        )));
    }
    // Threshold that catches `tpr` of the positives: the (1-tpr) quantile
    // of OOD scores.
    let threshold = safex_tensor::stats::quantile(ood_scores, 1.0 - tpr)
        .map_err(|e| SupervisionError::InvalidData(e.to_string()))?;
    let fp = id_scores.iter().filter(|&&s| s > threshold).count();
    Ok(fp as f64 / id_scores.len() as f64)
}

/// One supervisor's evaluation across the standard metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocSummary {
    /// Area under the ROC curve.
    pub auroc: f64,
    /// TPR at 5 % FPR.
    pub tpr_at_fpr5: f64,
    /// FPR at 95 % TPR.
    pub fpr_at_tpr95: f64,
}

/// Computes all three standard metrics at once.
///
/// # Errors
///
/// Propagates the individual metric errors.
pub fn summarize(id_scores: &[f64], ood_scores: &[f64]) -> Result<RocSummary, SupervisionError> {
    Ok(RocSummary {
        auroc: auroc(id_scores, ood_scores)?,
        tpr_at_fpr5: tpr_at_fpr(id_scores, ood_scores, 0.05)?,
        fpr_at_tpr95: fpr_at_tpr(id_scores, ood_scores, 0.95)?,
    })
}

fn validate(id: &[f64], ood: &[f64]) -> Result<(), SupervisionError> {
    if id.is_empty() || ood.is_empty() {
        return Err(SupervisionError::InvalidData(
            "ROC needs both ID and OOD scores".into(),
        ));
    }
    if id.iter().chain(ood).any(|s| !s.is_finite()) {
        return Err(SupervisionError::InvalidData(
            "scores must be finite".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let id = [0.0, 0.1, 0.2];
        let ood = [0.8, 0.9, 1.0];
        assert_eq!(auroc(&id, &ood).unwrap(), 1.0);
        assert_eq!(tpr_at_fpr(&id, &ood, 0.05).unwrap(), 1.0);
        assert_eq!(fpr_at_tpr(&id, &ood, 0.95).unwrap(), 0.0);
    }

    #[test]
    fn inverted_separation() {
        let id = [0.8, 0.9, 1.0];
        let ood = [0.0, 0.1, 0.2];
        assert_eq!(auroc(&id, &ood).unwrap(), 0.0);
    }

    #[test]
    fn chance_level() {
        let id = [0.1, 0.3, 0.5, 0.7];
        let ood = [0.1, 0.3, 0.5, 0.7];
        assert!((auroc(&id, &ood).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let id = [0.0, 0.2, 0.4, 0.6];
        let ood = [0.3, 0.5, 0.7, 0.9];
        // Count pairs: ood > id pairs / 16. Pairs where ood>id:
        // 0.3>{0,0.2}=2, 0.5>{0,0.2,0.4}=3, 0.7>{0,0.2,0.4,0.6}=4, 0.9>4 = 13/16.
        assert!((auroc(&id, &ood).unwrap() - 13.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn ties_count_half() {
        let id = [0.5];
        let ood = [0.5];
        assert_eq!(auroc(&id, &ood).unwrap(), 0.5);
    }

    #[test]
    fn validation_errors() {
        assert!(auroc(&[], &[1.0]).is_err());
        assert!(auroc(&[1.0], &[]).is_err());
        assert!(auroc(&[f64::NAN], &[1.0]).is_err());
        assert!(tpr_at_fpr(&[0.1], &[0.9], 0.0).is_err());
        assert!(fpr_at_tpr(&[0.1], &[0.9], 1.0).is_err());
    }

    #[test]
    fn summary_consistent() {
        let id: Vec<f64> = (0..100).map(|i| i as f64 / 200.0).collect(); // 0..0.5
        let ood: Vec<f64> = (0..100).map(|i| 0.4 + i as f64 / 200.0).collect(); // 0.4..0.9
        let s = summarize(&id, &ood).unwrap();
        assert!(s.auroc > 0.9);
        assert!(s.tpr_at_fpr5 > 0.7);
        assert!(s.fpr_at_tpr95 < 0.3);
    }

    #[test]
    fn auroc_symmetric_under_label_swap() {
        let id = [0.1, 0.4, 0.35, 0.8];
        let ood = [0.45, 0.9, 0.5, 0.3];
        let a = auroc(&id, &ood).unwrap();
        let b = auroc(&ood, &id).unwrap();
        assert!((a + b - 1.0).abs() < 1e-12);
    }
}
