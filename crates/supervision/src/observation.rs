//! Inference observations: everything a supervisor may inspect.

use safex_nn::layer::Layer;
use safex_nn::Engine;

use crate::error::SupervisionError;

/// A captured inference: raw input plus the internal signals supervisors
/// score (logits, output probabilities, penultimate features).
///
/// Build one with [`observe`]; construct manually only in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The raw model input.
    pub input: Vec<f32>,
    /// Pre-softmax activations (equals `probs` when the model has no
    /// softmax head).
    pub logits: Vec<f32>,
    /// Final model output (softmax probabilities for classifiers).
    pub probs: Vec<f32>,
    /// Input to the last parametric (dense/conv) layer — the "feature
    /// embedding" distance-based supervisors model.
    pub features: Vec<f32>,
}

impl Observation {
    /// The predicted class (argmax of `probs`, first-wins ties).
    pub fn predicted_class(&self) -> usize {
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, &p) in self.probs.iter().enumerate() {
            if p > best.1 {
                best = (i, p);
            }
        }
        best.0
    }

    /// The maximum output probability.
    pub fn confidence(&self) -> f32 {
        self.probs.iter().fold(f32::NEG_INFINITY, |m, &p| m.max(p))
    }

    /// Validates structural sanity (non-empty, all finite).
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] on empty vectors or
    /// non-finite values.
    pub fn validate(&self) -> Result<(), SupervisionError> {
        if self.input.is_empty() || self.probs.is_empty() {
            return Err(SupervisionError::InvalidData(
                "observation has empty input or probs".into(),
            ));
        }
        let finite = |v: &[f32]| v.iter().all(|x| x.is_finite());
        if !finite(&self.input)
            || !finite(&self.logits)
            || !finite(&self.probs)
            || !finite(&self.features)
        {
            return Err(SupervisionError::InvalidData(
                "observation contains non-finite values".into(),
            ));
        }
        Ok(())
    }
}

/// Runs a traced inference and captures an [`Observation`].
///
/// * `probs` is the final layer output.
/// * `logits` is the activation feeding the softmax head (or the final
///   output when there is no softmax).
/// * `features` is the input to the last dense/conv layer (or the raw
///   input for a single-layer model).
///
/// # Errors
///
/// Propagates inference failures as [`SupervisionError::Nn`].
pub fn observe(engine: &mut Engine, input: &[f32]) -> Result<Observation, SupervisionError> {
    let acts = engine.infer_traced(input)?;
    let layers = engine.model().layers();
    let n = layers.len();
    debug_assert_eq!(acts.len(), n);

    let probs = acts[n - 1].as_slice().to_vec();
    let logits_idx = if matches!(layers[n - 1], Layer::Softmax) && n >= 2 {
        n - 2
    } else {
        n - 1
    };
    let logits = acts[logits_idx].as_slice().to_vec();

    // Find the last parametric layer and take its *input* as the feature
    // embedding.
    let last_param = layers
        .iter()
        .rposition(|l| matches!(l, Layer::Dense(_) | Layer::Conv2d(_)));
    let features = match last_param {
        Some(0) | None => input.to_vec(),
        Some(i) => acts[i - 1].as_slice().to_vec(),
    };

    Ok(Observation {
        input: input.to_vec(),
        logits,
        probs,
        features,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_nn::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    fn engine() -> Engine {
        let mut rng = DetRng::new(5);
        let model = ModelBuilder::new(Shape::vector(4))
            .dense(6, &mut rng)
            .unwrap()
            .relu()
            .dense(3, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        Engine::new(model)
    }

    #[test]
    fn observe_captures_all_signals() {
        let mut e = engine();
        let obs = observe(&mut e, &[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(obs.input.len(), 4);
        assert_eq!(obs.probs.len(), 3);
        assert_eq!(obs.logits.len(), 3);
        // Features = input to final dense = relu output (6 wide).
        assert_eq!(obs.features.len(), 6);
        // Probs are the softmax of logits: same argmax.
        let argmax_l = obs
            .logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(obs.predicted_class(), argmax_l);
        obs.validate().unwrap();
    }

    #[test]
    fn observe_without_softmax_uses_output_as_logits() {
        let mut rng = DetRng::new(6);
        let model = ModelBuilder::new(Shape::vector(2))
            .dense(2, &mut rng)
            .unwrap()
            .build()
            .unwrap();
        let mut e = Engine::new(model);
        let obs = observe(&mut e, &[1.0, -1.0]).unwrap();
        assert_eq!(obs.logits, obs.probs);
        // Single parametric layer: features are the raw input.
        assert_eq!(obs.features, vec![1.0, -1.0]);
    }

    #[test]
    fn confidence_and_class() {
        let obs = Observation {
            input: vec![0.0],
            logits: vec![1.0, 3.0, 2.0],
            probs: vec![0.1, 0.7, 0.2],
            features: vec![0.0],
        };
        assert_eq!(obs.predicted_class(), 1);
        assert_eq!(obs.confidence(), 0.7);
    }

    #[test]
    fn validate_rejects_nan_and_empty() {
        let mut obs = Observation {
            input: vec![0.0],
            logits: vec![0.0],
            probs: vec![1.0],
            features: vec![0.0],
        };
        obs.validate().unwrap();
        obs.probs[0] = f32::NAN;
        assert!(obs.validate().is_err());
        obs.probs = vec![];
        assert!(obs.validate().is_err());
    }

    #[test]
    fn wrong_input_size_propagates() {
        let mut e = engine();
        assert!(matches!(
            observe(&mut e, &[0.0; 2]),
            Err(SupervisionError::Nn(_))
        ));
    }
}
