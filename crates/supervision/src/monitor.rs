//! Calibrated accept/reject monitors built on supervisors.

use crate::error::SupervisionError;
use crate::observation::Observation;
use crate::supervisor::Supervisor;

/// The decision a monitor renders for one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The observation looks in-distribution; the prediction may be used.
    Accept,
    /// The observation is anomalous; the pipeline must fall back.
    Reject,
}

impl Verdict {
    /// Whether the verdict is [`Verdict::Accept`].
    pub fn is_accept(self) -> bool {
        self == Verdict::Accept
    }
}

/// A supervisor plus a threshold calibrated to a target false-positive
/// rate on in-distribution data.
///
/// Calibration picks the `(1 - target_fpr)` quantile of in-distribution
/// scores: by construction roughly `target_fpr` of good inputs will be
/// rejected (availability cost), which is the dial FUSA engineers trade
/// against hazard coverage.
///
/// # Examples
///
/// ```
/// use safex_supervision::monitor::CalibratedMonitor;
/// use safex_supervision::supervisor::SoftmaxThreshold;
///
/// let id_scores = vec![0.01, 0.02, 0.05, 0.04, 0.03];
/// let monitor = CalibratedMonitor::fit(
///     Box::new(SoftmaxThreshold::new()),
///     &id_scores,
///     0.05,
/// ).unwrap();
/// assert!(monitor.threshold() >= 0.04);
/// ```
pub struct CalibratedMonitor {
    supervisor: Box<dyn Supervisor>,
    threshold: f64,
    target_fpr: f64,
}

impl std::fmt::Debug for CalibratedMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalibratedMonitor")
            .field("supervisor", &self.supervisor.name())
            .field("threshold", &self.threshold)
            .field("target_fpr", &self.target_fpr)
            .finish()
    }
}

impl CalibratedMonitor {
    /// Calibrates a threshold from in-distribution scores.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for empty scores,
    /// non-finite scores, or a target FPR outside `(0, 1)`.
    pub fn fit(
        supervisor: Box<dyn Supervisor>,
        id_scores: &[f64],
        target_fpr: f64,
    ) -> Result<Self, SupervisionError> {
        if id_scores.is_empty() {
            return Err(SupervisionError::InvalidData(
                "cannot calibrate on empty scores".into(),
            ));
        }
        if !(target_fpr > 0.0 && target_fpr < 1.0) {
            return Err(SupervisionError::InvalidData(format!(
                "target FPR {target_fpr} outside (0, 1)"
            )));
        }
        let threshold = safex_tensor::stats::quantile(id_scores, 1.0 - target_fpr)
            .map_err(|e| SupervisionError::InvalidData(e.to_string()))?;
        Ok(CalibratedMonitor {
            supervisor,
            threshold,
            target_fpr,
        })
    }

    /// Creates a monitor with an explicit threshold (no calibration).
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for a non-finite
    /// threshold.
    pub fn with_threshold(
        supervisor: Box<dyn Supervisor>,
        threshold: f64,
    ) -> Result<Self, SupervisionError> {
        if !threshold.is_finite() {
            return Err(SupervisionError::InvalidData(
                "threshold must be finite".into(),
            ));
        }
        Ok(CalibratedMonitor {
            supervisor,
            threshold,
            target_fpr: f64::NAN,
        })
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The target FPR used at calibration (NaN for explicit thresholds).
    pub fn target_fpr(&self) -> f64 {
        self.target_fpr
    }

    /// The wrapped supervisor's name.
    pub fn supervisor_name(&self) -> &'static str {
        self.supervisor.name()
    }

    /// Scores and thresholds an observation.
    ///
    /// Scores **strictly above** the threshold reject; the calibration
    /// quantile itself still accepts.
    ///
    /// # Errors
    ///
    /// Propagates supervisor scoring failures.
    pub fn check(&self, obs: &Observation) -> Result<(Verdict, f64), SupervisionError> {
        let score = self.supervisor.score(obs)?;
        let verdict = if score > self.threshold {
            Verdict::Reject
        } else {
            Verdict::Accept
        };
        Ok((verdict, score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SoftmaxThreshold;

    fn obs(conf: f32) -> Observation {
        Observation {
            input: vec![0.0],
            logits: vec![0.0, 0.0],
            probs: vec![conf, 1.0 - conf],
            features: vec![0.0],
        }
    }

    #[test]
    fn fit_sets_quantile_threshold() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let m = CalibratedMonitor::fit(Box::new(SoftmaxThreshold::new()), &scores, 0.05).unwrap();
        assert!((m.threshold() - 0.9405).abs() < 0.01, "{}", m.threshold());
        assert_eq!(m.target_fpr(), 0.05);
        assert_eq!(m.supervisor_name(), "softmax_threshold");
    }

    #[test]
    fn fit_validation() {
        assert!(CalibratedMonitor::fit(Box::new(SoftmaxThreshold::new()), &[], 0.05).is_err());
        assert!(CalibratedMonitor::fit(Box::new(SoftmaxThreshold::new()), &[0.1], 0.0).is_err());
        assert!(CalibratedMonitor::fit(Box::new(SoftmaxThreshold::new()), &[0.1], 1.0).is_err());
        assert!(
            CalibratedMonitor::fit(Box::new(SoftmaxThreshold::new()), &[f64::NAN], 0.05).is_err()
        );
    }

    #[test]
    fn check_thresholds_scores() {
        let m = CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.3).unwrap();
        // Confident input: score = 1 - 0.9 = 0.1 -> accept.
        let (v, s) = m.check(&obs(0.9)).unwrap();
        assert_eq!(v, Verdict::Accept);
        assert!((s - 0.1).abs() < 1e-6);
        // Unsure input: score = 0.5 -> reject.
        let (v, _) = m.check(&obs(0.5)).unwrap();
        assert_eq!(v, Verdict::Reject);
        assert!(!v.is_accept());
    }

    #[test]
    fn boundary_score_accepts() {
        let m = CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.5).unwrap();
        let (v, s) = m.check(&obs(0.5)).unwrap();
        assert_eq!(s, 0.5);
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn with_threshold_rejects_nan() {
        assert!(
            CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), f64::NAN).is_err()
        );
    }

    #[test]
    fn debug_shows_supervisor() {
        let m = CalibratedMonitor::with_threshold(Box::new(SoftmaxThreshold::new()), 0.5).unwrap();
        assert!(format!("{m:?}").contains("softmax_threshold"));
    }
}
