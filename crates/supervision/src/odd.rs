//! Operational design domain (ODD) envelopes.
//!
//! FUSA arguments for DL components are conditioned on an ODD: the input
//! domain the function was designed and validated for. An [`OddEnvelope`]
//! is a fitted, checkable description of that domain — per-feature ranges
//! plus global statistics bounds learned from the validation set with a
//! configurable margin. It complements the statistical supervisors in
//! [`crate::supervisor`]: the envelope is *specified* behaviour an
//! assessor can read, while the supervisors are *learned* behaviour.
//!
//! The safety-bag pattern's checker and the simplex fallback trigger can
//! both be driven from an envelope.

use crate::error::SupervisionError;

/// A fitted input envelope: per-dimension ranges and global mean/std
/// bounds, each widened by a safety margin.
#[derive(Debug, Clone, PartialEq)]
pub struct OddEnvelope {
    lo: Vec<f32>,
    hi: Vec<f32>,
    mean_range: (f64, f64),
    std_range: (f64, f64),
    /// Fraction of per-pixel range violations tolerated before the input
    /// is declared out of ODD (a few hot pixels are noise, not an ODD
    /// exit).
    violation_budget: f64,
}

/// Why an input failed the envelope check.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum OddViolation {
    /// Too many individual values outside their fitted range.
    RangeExceeded {
        /// Fraction of out-of-range values.
        fraction: f64,
    },
    /// The input's mean is outside the fitted band.
    MeanOutOfBand {
        /// Observed mean.
        observed: f64,
    },
    /// The input's standard deviation is outside the fitted band.
    StdOutOfBand {
        /// Observed standard deviation.
        observed: f64,
    },
    /// The input contains non-finite values.
    NonFinite,
}

impl OddEnvelope {
    /// Fits an envelope on in-ODD inputs.
    ///
    /// Per-dimension ranges are the observed min/max widened by
    /// `margin` × the dimension's observed spread; global mean/std bands
    /// are widened the same way. `violation_budget` is the tolerated
    /// fraction of out-of-range values per input (e.g. 0.01).
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] for an empty set,
    /// inconsistent dimensions, non-finite data, a negative margin, or a
    /// budget outside `[0, 1)`.
    pub fn fit(
        inputs: &[Vec<f32>],
        margin: f64,
        violation_budget: f64,
    ) -> Result<Self, SupervisionError> {
        if inputs.is_empty() {
            return Err(SupervisionError::InvalidData(
                "cannot fit envelope on empty inputs".into(),
            ));
        }
        let d = inputs[0].len();
        if d == 0 || inputs.iter().any(|x| x.len() != d) {
            return Err(SupervisionError::InvalidData(
                "inputs must be non-empty and consistent".into(),
            ));
        }
        if inputs.iter().flatten().any(|v| !v.is_finite()) {
            return Err(SupervisionError::InvalidData("non-finite inputs".into()));
        }
        if !(margin.is_finite() && margin >= 0.0) {
            return Err(SupervisionError::InvalidData(
                "margin must be non-negative".into(),
            ));
        }
        if !(0.0..1.0).contains(&violation_budget) {
            return Err(SupervisionError::InvalidData(
                "violation budget must be in [0, 1)".into(),
            ));
        }

        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for x in inputs {
            for (i, &v) in x.iter().enumerate() {
                lo[i] = lo[i].min(v);
                hi[i] = hi[i].max(v);
            }
        }
        for i in 0..d {
            let spread = (hi[i] - lo[i]).max(1e-6);
            lo[i] -= (margin * spread as f64) as f32;
            hi[i] += (margin * spread as f64) as f32;
        }

        let stats: Vec<(f64, f64)> = inputs.iter().map(|x| mean_std(x)).collect();
        let mean_lo = stats.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
        let mean_hi = stats.iter().map(|s| s.0).fold(f64::NEG_INFINITY, f64::max);
        let std_lo = stats.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let std_hi = stats.iter().map(|s| s.1).fold(f64::NEG_INFINITY, f64::max);
        let widen = |lo: f64, hi: f64| {
            let spread = (hi - lo).max(1e-9);
            (lo - margin * spread, hi + margin * spread)
        };
        Ok(OddEnvelope {
            lo,
            hi,
            mean_range: widen(mean_lo, mean_hi),
            std_range: widen(std_lo, std_hi),
            violation_budget,
        })
    }

    /// Input dimensionality the envelope was fitted for.
    pub fn dimensions(&self) -> usize {
        self.lo.len()
    }

    /// Checks an input against the envelope.
    ///
    /// Returns `Ok(())` for in-ODD inputs and the first violation
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] on a dimension mismatch
    /// (a *caller* bug, distinct from an out-of-ODD *input*).
    pub fn check(&self, input: &[f32]) -> Result<Result<(), OddViolation>, SupervisionError> {
        if input.len() != self.lo.len() {
            return Err(SupervisionError::InvalidData(format!(
                "input dim {} does not match envelope dim {}",
                input.len(),
                self.lo.len()
            )));
        }
        if input.iter().any(|v| !v.is_finite()) {
            return Ok(Err(OddViolation::NonFinite));
        }
        let violations = input
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .filter(|(v, (lo, hi))| *v < lo || *v > hi)
            .count();
        let fraction = violations as f64 / input.len() as f64;
        if fraction > self.violation_budget {
            return Ok(Err(OddViolation::RangeExceeded { fraction }));
        }
        let (mean, std) = mean_std(input);
        if mean < self.mean_range.0 || mean > self.mean_range.1 {
            return Ok(Err(OddViolation::MeanOutOfBand { observed: mean }));
        }
        if std < self.std_range.0 || std > self.std_range.1 {
            return Ok(Err(OddViolation::StdOutOfBand { observed: std }));
        }
        Ok(Ok(()))
    }

    /// Convenience predicate: `true` when the input is inside the ODD.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisionError::InvalidData`] on a dimension mismatch.
    pub fn contains(&self, input: &[f32]) -> Result<bool, SupervisionError> {
        Ok(self.check(input)?.is_ok())
    }
}

fn mean_std(x: &[f32]) -> (f64, f64) {
    let n = x.len() as f64;
    let mean = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = x.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_tensor::DetRng;

    fn training_inputs(n: usize) -> Vec<Vec<f32>> {
        let mut rng = DetRng::new(1);
        (0..n)
            .map(|_| (0..16).map(|_| rng.range_f64(0.0, 1.0) as f32).collect())
            .collect()
    }

    #[test]
    fn fit_and_accept_in_odd() {
        let inputs = training_inputs(100);
        let env = OddEnvelope::fit(&inputs, 0.1, 0.02).unwrap();
        assert_eq!(env.dimensions(), 16);
        for x in &inputs {
            assert!(env.contains(x).unwrap(), "training input must be in ODD");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let inputs = training_inputs(100);
        let env = OddEnvelope::fit(&inputs, 0.05, 0.02).unwrap();
        let far = vec![50.0f32; 16];
        match env.check(&far).unwrap() {
            Err(OddViolation::RangeExceeded { fraction }) => assert!(fraction > 0.9),
            other => panic!("expected range violation, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_budgeted_hot_pixels() {
        // 64 dimensions so a single hot pixel barely moves the global
        // mean/std; the per-pixel range check is the discriminating one.
        let mut rng = DetRng::new(2);
        let inputs: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..64).map(|_| rng.range_f64(0.0, 1.0) as f32).collect())
            .collect();
        // 5 % budget: one hot pixel out of 64 (1.6 %) passes.
        let env = OddEnvelope::fit(&inputs, 0.3, 0.05).unwrap();
        let mut x = inputs[0].clone();
        x[10] = 1.7; // outside the widened per-pixel range
        assert!(env.contains(&x).unwrap());
        // Zero budget: the same pixel trips it.
        let strict = OddEnvelope::fit(&inputs, 0.3, 0.0).unwrap();
        assert!(!strict.contains(&x).unwrap());
    }

    #[test]
    fn rejects_contrast_collapse_via_std_band() {
        let inputs = training_inputs(100);
        let env = OddEnvelope::fit(&inputs, 0.2, 0.05).unwrap();
        // Constant image: every pixel within range, but std ~ 0.
        let flat = vec![0.5f32; 16];
        match env.check(&flat).unwrap() {
            Err(OddViolation::StdOutOfBand { observed }) => assert!(observed < 0.05),
            other => panic!("expected std violation, got {other:?}"),
        }
    }

    #[test]
    fn rejects_brightness_shift_via_mean_band() {
        let inputs = training_inputs(100);
        let env = OddEnvelope::fit(&inputs, 0.3, 0.5).unwrap();
        // Brightness +0.9 keeps relative structure (std) but moves the
        // mean far out; allow generous per-pixel budget so the mean check
        // is the one that fires.
        let bright: Vec<f32> = inputs[0].iter().map(|v| v + 0.9).collect();
        let result = env.check(&bright).unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let inputs = training_inputs(20);
        let env = OddEnvelope::fit(&inputs, 0.1, 0.0).unwrap();
        let mut x = inputs[0].clone();
        x[0] = f32::NAN;
        assert_eq!(env.check(&x).unwrap(), Err(OddViolation::NonFinite));
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_violation() {
        let inputs = training_inputs(20);
        let env = OddEnvelope::fit(&inputs, 0.1, 0.0).unwrap();
        assert!(env.check(&[0.0; 4]).is_err());
    }

    #[test]
    fn fit_validation() {
        assert!(OddEnvelope::fit(&[], 0.1, 0.0).is_err());
        assert!(OddEnvelope::fit(&[vec![]], 0.1, 0.0).is_err());
        assert!(OddEnvelope::fit(&[vec![1.0], vec![1.0, 2.0]], 0.1, 0.0).is_err());
        assert!(OddEnvelope::fit(&[vec![f32::NAN]], 0.1, 0.0).is_err());
        assert!(OddEnvelope::fit(&[vec![1.0]], -0.1, 0.0).is_err());
        assert!(OddEnvelope::fit(&[vec![1.0]], 0.1, 1.0).is_err());
    }

    #[test]
    fn margin_widens_acceptance() {
        let inputs = training_inputs(50);
        let tight = OddEnvelope::fit(&inputs, 0.0, 0.0).unwrap();
        let loose = OddEnvelope::fit(&inputs, 0.5, 0.0).unwrap();
        // A point slightly outside the observed range.
        let mut x = inputs[0].clone();
        x[0] = 1.05;
        assert!(!tight.contains(&x).unwrap());
        assert!(loose.contains(&x).unwrap());
    }
}
