#![forbid(unsafe_code)]
//! Shared workload construction for the SAFEXPLAIN benchmark harness.
//!
//! Each `benches/eN_*.rs` target regenerates one experiment from
//! `DESIGN.md`'s index: it prints the experiment's table/series (so
//! `cargo bench` reproduces the numbers recorded in `EXPERIMENTS.md`) and
//! then times the operations that experiment stresses.

use std::sync::OnceLock;

use safex_nn::{Engine, Model};
use safex_scenarios::automotive::{self, AutomotiveConfig};
use safex_scenarios::Dataset;
use safex_tensor::DetRng;

/// The shared automotive workload: `(train, test, trained model A,
/// trained model B)`. Built once per process.
pub fn workload() -> &'static (Dataset, Dataset, Model, Model) {
    static W: OnceLock<(Dataset, Dataset, Model, Model)> = OnceLock::new();
    W.get_or_init(|| {
        let mut rng = DetRng::new(9001);
        let data = automotive::generate(
            &AutomotiveConfig {
                samples_per_class: 60,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("generate");
        let (train, test) = data.split(0.7, &mut rng).expect("split");
        let a = safexplain::demo::train_mlp(&train, 60, 17).expect("train a");
        let b = safexplain::demo::train_mlp(&train, 60, 18).expect("train b");
        (train, test, a, b)
    })
}

/// Test-set accuracy of the shared model A (for table headers).
pub fn model_a_accuracy() -> f64 {
    let (_, test, a, _) = workload();
    let mut engine = Engine::new(a.clone());
    safexplain::demo::accuracy(&mut engine, test).expect("accuracy")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_once_and_is_learnable() {
        let (train, test, a, b) = workload();
        assert!(train.len() > test.len());
        assert_ne!(a.digest(), b.digest());
        assert!(model_a_accuracy() > 0.6);
    }
}
