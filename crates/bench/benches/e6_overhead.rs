//! Experiment E6: criticality ladder — decision cost per SIL.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_core::assemble::{self, AssemblySpec};
use safex_patterns::Sil;

fn pipeline_for(sil: Sil) -> safex_core::SafePipeline {
    let (train, _, model_a, model_b) = workload();
    let spec = AssemblySpec {
        sil,
        fallback_class: 0,
        confidence_floor: 0.4,
        input_range: (-1.0, 2.0),
        ..Default::default()
    };
    assemble::for_sil(
        &format!("bench-{sil}"),
        &spec,
        &[model_a.clone(), model_b.clone()],
        &train.inputs_owned(),
        &train.labels(),
    )
    .expect("assemble")
}

fn print_table() {
    let (_, test, _, _) = workload();
    println!("\n=== E6: per-SIL decision cost (channel + monitor evals) ===");
    println!(
        "{:<5} {:<17} {:>10} {:>13}",
        "SIL", "pattern", "cost/dec", "conservative"
    );
    for sil in Sil::ALL {
        let mut pipeline = pipeline_for(sil);
        let mut cost = 0u64;
        for s in test.samples() {
            let d = pipeline.decide(&s.input).expect("decide");
            cost += u64::from(d.total_cost());
        }
        println!(
            "{:<5} {:<17} {:>10.2} {:>12.1}%",
            sil.to_string(),
            pipeline.pattern_name(),
            cost as f64 / pipeline.decision_count() as f64,
            pipeline.conservative_rate() * 100.0
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, test, _, _) = workload();
    let inputs: Vec<&[f32]> = test.samples().iter().map(|s| s.input.as_slice()).collect();
    let mut group = c.benchmark_group("e6_pipeline_decide");
    group.sample_size(30);
    for sil in Sil::ALL {
        let mut pipeline = pipeline_for(sil);
        group.bench_function(format!("{sil}_{}", pipeline.pattern_name()), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let input = inputs[i % inputs.len()];
                i += 1;
                std::hint::black_box(pipeline.decide(input).expect("decide"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
