//! Experiment E3: safety-pattern behaviour under fault injection +
//! per-decision cost.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::{Engine, QEngine, QModel};
use safex_patterns::channel::{ModelChannel, QuantChannel};
use safex_patterns::fault::{FaultModel, FaultyChannel};
use safex_patterns::pattern::{Bare, MonitorActuator, SafetyPattern, TwoOutOfThree};
use safex_tensor::DetRng;

const FAULT: FaultModel = FaultModel {
    wrong_class: 0.06,
    stuck: 0.02,
    crash: 0.02,
    erratic: 0.0,
};

fn faulty_primary(seed: u64) -> FaultyChannel {
    let (_, _, model_a, _) = workload();
    let inner = ModelChannel::new("primary", Engine::new(model_a.clone()));
    FaultyChannel::new(inner, FAULT, 4, DetRng::new(seed)).expect("fault model")
}

fn build_patterns() -> Vec<(&'static str, Box<dyn SafetyPattern>)> {
    let (_, _, model_a, model_b) = workload();
    // Reference row: the bare model with NO fault injection, so the
    // fault-induced increase in wrong acts is readable from the table.
    let clean = Bare::new(ModelChannel::new("clean", Engine::new(model_a.clone())));
    let bare = Bare::new(faulty_primary(1));
    let monitor = MonitorActuator::new(faulty_primary(2), 0.6, 0).expect("config");
    let qtwin = QuantChannel::new(
        "quant",
        QEngine::new(QModel::quantize(model_a).expect("quantize")),
    );
    let diverse = ModelChannel::new("diverse", Engine::new(model_b.clone()));
    let voter = TwoOutOfThree::new(faulty_primary(3), qtwin, diverse).expect("voter");
    vec![
        ("bare (no faults)", Box::new(clean)),
        ("bare", Box::new(bare)),
        ("monitor_actuator", Box::new(monitor)),
        ("two_out_of_three", Box::new(voter)),
    ]
}

fn print_table() {
    let (_, test, _, _) = workload();
    println!(
        "\n=== E3: patterns under {:.0}% fault injection ===",
        FAULT.total() * 100.0
    );
    println!(
        "{:<18} {:>13} {:>13} {:>9}",
        "pattern", "wrong-acts", "conservative", "cost/dec"
    );
    for (name, mut pattern) in build_patterns() {
        let mut wrong = 0u64;
        let mut conservative = 0u64;
        let mut cost = 0u64;
        let mut decisions = 0u64;
        for _ in 0..10 {
            for s in test.samples() {
                let d = pattern.decide(&s.input).expect("decide");
                decisions += 1;
                cost += u64::from(d.total_cost());
                if d.action.is_conservative() {
                    conservative += 1;
                } else if d.action.class() != Some(s.label) {
                    wrong += 1;
                }
            }
        }
        println!(
            "{:<18} {:>12.1}% {:>12.1}% {:>9.2}",
            name,
            100.0 * wrong as f64 / decisions as f64,
            100.0 * conservative as f64 / decisions as f64,
            cost as f64 / decisions as f64
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, test, _, _) = workload();
    let inputs: Vec<&[f32]> = test.samples().iter().map(|s| s.input.as_slice()).collect();
    let mut group = c.benchmark_group("e3_pattern_decide");
    group.sample_size(30);
    for (name, mut pattern) in build_patterns() {
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let input = inputs[i % inputs.len()];
                i += 1;
                std::hint::black_box(pattern.decide(input).expect("decide"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
