//! Experiment E5: determinism table (jitter, reproducibility, quantisation
//! cost) + float vs fixed-point inference throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::{Engine, QEngine, QModel};
use safex_tensor::fixed::Q16_16;

fn print_table() {
    let (_, test, model_a, _) = workload();
    let mut fe = Engine::new(model_a.clone());
    let qmodel = QModel::quantize(model_a).expect("quantize");
    let mut qe = QEngine::new(qmodel);

    // Bit-exact repetition check over the whole test set.
    let mut float_identical = true;
    let mut quant_identical = true;
    let mut agreement = 0usize;
    let mut max_dev = 0.0f32;
    for s in test.samples() {
        let f1 = fe.infer(&s.input).expect("infer").to_vec();
        let f2 = fe.infer(&s.input).expect("infer").to_vec();
        float_identical &= f1 == f2;

        let q: Vec<Q16_16> = s.input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let q1: Vec<Q16_16> = qe.infer(&q).expect("infer").to_vec();
        let q2: Vec<Q16_16> = qe.infer(&q).expect("infer").to_vec();
        quant_identical &= q1 == q2;

        let fc = argmax(&f1);
        let qc = argmax(&q1.iter().map(|v| v.to_f32()).collect::<Vec<_>>());
        if fc == qc {
            agreement += 1;
        }
        for (f, qv) in f1.iter().zip(&q1) {
            max_dev = max_dev.max((f - qv.to_f32()).abs());
        }
    }
    println!("\n=== E5: determinism and quantisation ===");
    println!(
        "float engine bit-identical across runs: {}",
        if float_identical { "yes" } else { "NO" }
    );
    println!(
        "fixed-point engine bit-identical across runs: {}",
        if quant_identical { "yes" } else { "NO" }
    );
    println!(
        "float/quant class agreement: {:.1}% ({} frames)",
        100.0 * agreement as f64 / test.len() as f64,
        test.len()
    );
    println!("max output probability deviation: {max_dev:.4}");
    println!();
}

fn argmax(v: &[f32]) -> usize {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, &x) in v.iter().enumerate() {
        if x > best.1 {
            best = (i, x);
        }
    }
    best.0
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, test, model_a, _) = workload();
    let mut fe = Engine::new(model_a.clone());
    let mut qe = QEngine::new(QModel::quantize(model_a).expect("quantize"));
    let input = test.samples()[0].input.clone();
    let qinput: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f32(v)).collect();

    let mut group = c.benchmark_group("e5_inference");
    group.bench_function("float_engine", |b| {
        b.iter(|| std::hint::black_box(fe.infer(&input).expect("infer")[0]))
    });
    group.bench_function("fixed_point_engine", |b| {
        b.iter(|| std::hint::black_box(qe.infer(&qinput).expect("infer")[0]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
