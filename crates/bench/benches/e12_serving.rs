//! Experiment E12: the deterministic micro-batching inference server.
//!
//! Three questions, in certification order:
//!
//! 1. **Throughput** — does deadline-aware batching raise the offered
//!    load the server sustains at a fixed deadline, versus batch=1?
//!    (Simulated clock; the wall-clock calibration below ties ticks to
//!    measured per-item cost.)
//! 2. **Fail-operational behaviour** — under persistent weight
//!    corruption mid-traffic, does the server walk Nominal → Degraded →
//!    SafeStop with *zero* silent data corruption (every non-nominal
//!    outcome typed Shed/Timeout/SafeStop)?
//! 3. **Reproducibility** — does the same trace replay byte-for-byte,
//!    for any pool worker count?

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_core::health::{HealthConfig, HealthState};
use safex_nn::{Engine, HardenConfig, HardenedEngine};
use safex_serve::{
    Backend, BatchPolicy, Fleet, ModelId, Outcome, PoolBackend, Server, ServerConfig, ServiceModel,
    Tier, TrafficConfig,
};

fn inputs() -> Vec<Vec<f32>> {
    let (_, test, _, _) = workload();
    test.samples().iter().map(|s| s.input.clone()).collect()
}

fn hardened() -> HardenedEngine {
    let (_, _, model, _) = workload();
    let stream = inputs();
    let mut engine = HardenedEngine::new(model.clone(), HardenConfig::default()).expect("harden");
    engine.calibrate(&stream).expect("calibrate");
    engine
}

/// The tick cost model used throughout E12: heavy per-dispatch overhead
/// (checksum sweep + fan-out), light marginal cost — the regime where
/// batching pays.
const SERVICE: ServiceModel = ServiceModel {
    batch_overhead: 16,
    per_item: 1,
};

fn server_config(max_batch: usize) -> ServerConfig {
    ServerConfig::default()
        .with_policy(
            BatchPolicy::default()
                .with_max_batch(max_batch)
                .with_queue_cap(64)
                .with_flush_slack(40)
                .with_max_linger(24),
        )
        .with_service(SERVICE)
}

fn print_tables() {
    let engine = hardened();
    let stream = inputs();

    // ---- 1. Offered-load sweep: batch=1 vs batch=16. --------------------
    println!("\n=== E12: serving throughput, batch=1 vs batch=16 ===");
    println!(
        "service model: {} ticks/dispatch + {} ticks/item; deadline 300 ticks",
        SERVICE.batch_overhead, SERVICE.per_item
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "load (gap ticks)", "complete", "shed", "timeout", "p50", "p95", "p99", "peak_q"
    );
    for mean_gap in [20.0, 8.0, 4.0, 2.0] {
        for max_batch in [1usize, 16] {
            let trace = TrafficConfig {
                seed: 0xE12,
                requests: 400,
                mean_interarrival: mean_gap,
                deadline: 300,
                ..TrafficConfig::default()
            }
            .synthesize(&stream)
            .expect("trace");
            let backend = PoolBackend::new(&engine, 2).expect("pool");
            let mut server = Server::single(server_config(max_batch), backend).expect("server");
            let report = server.run_trace(&trace).expect("run");
            let s = &report.snapshot;
            println!(
                "gap {:>4} batch {:>2} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
                mean_gap,
                max_batch,
                s.total_completed(),
                s.total_shed(),
                s.timeout.iter().sum::<u64>(),
                s.latency_p50,
                s.latency_p95,
                s.latency_p99,
                s.peak_queue_depth,
            );
        }
    }
    println!(
        "(batch=16 sustains ~{}x the per-item rate of batch=1 at this overhead ratio)",
        (SERVICE.batch_overhead + SERVICE.per_item)
            / ((SERVICE.batch_overhead + 16 * SERVICE.per_item) / 16).max(1)
    );

    // ---- Wall-clock calibration for the tick model. ----------------------
    // Single-CPU-host caveat (as recorded for E10): with one hardware
    // thread the pool cannot overlap batch items, so the *measured*
    // amortisation here comes from per-dispatch bookkeeping, not core
    // scaling; on multi-core targets the batch=16 column improves further.
    println!(
        "host parallelism: {:?}",
        std::thread::available_parallelism()
    );
    let mut backend = PoolBackend::new(&engine, 2).expect("pool");
    for batch in [1usize, 16] {
        let items: Vec<&[f32]> = (0..batch).map(|i| stream[i].as_slice()).collect();
        let reps = 2048 / batch;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(backend.serve(&items).expect("serve").len());
        }
        let per_item_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * batch) as f64;
        println!("measured dispatch cost, batch={batch:>2}: {per_item_us:>7.2} us/item");
    }

    // ---- 2. Degradation walk under mid-traffic weight strike. ------------
    println!("\n=== E12b: persistent weight fault at request 200 (600 requests) ===");
    let trace = TrafficConfig {
        seed: 0xFA0175,
        requests: 600,
        mean_interarrival: 6.0,
        deadline: 400,
        tier_weights: [2, 1, 1],
    }
    .synthesize(&stream)
    .expect("trace");
    let faulted_config = server_config(16).with_health(HealthConfig {
        window: 16,
        degrade_events: 2,
        stop_events: 8,
        recover_after: 32,
        resume_after: 0,
        warn_budget: 3,
    });
    let strike = |request: &safex_serve::Request, fleet: &mut Fleet<PoolBackend>| {
        if request.id == 200 {
            fleet
                .backend_mut(ModelId::new(0))
                .expect("member")
                .strike_weights(0xDEAD_BEEF, 1, 2)
                .expect("strike");
        }
    };
    let mut reference_report = None;
    for workers in [1usize, 2, 4, 8] {
        let backend = PoolBackend::new(&engine, workers).expect("pool");
        let mut server = Server::single(faulted_config.clone(), backend).expect("server");
        let report = server.run_trace_with(&trace, strike).expect("run");
        match &reference_report {
            None => {
                for t in &report.transitions {
                    println!(
                        "  service level {} -> {} at tick {} (after request {})",
                        t.from, t.to, t.at_tick, t.after_request
                    );
                }
                let walk: Vec<_> = report.transitions.iter().map(|t| (t.from, t.to)).collect();
                assert_eq!(
                    walk,
                    vec![
                        (HealthState::Nominal, HealthState::Degraded),
                        (HealthState::Degraded, HealthState::SafeStop),
                    ],
                    "expected a clean two-rung walk"
                );
                // Zero silent corruption: completed responses either
                // match the pristine reference or carry flagged=true.
                let (_, _, model, _) = workload();
                let mut pristine = Engine::new(model.clone());
                let mut silent = 0u64;
                let s = &report.snapshot;
                for r in &report.responses {
                    if let Outcome::Completed { class, flagged, .. } = &r.outcome {
                        let truth = pristine
                            .classify(&trace.arrivals()[r.id as usize].request.input)
                            .expect("classify")
                            .class;
                        if *class != truth && !flagged {
                            silent += 1;
                        }
                    }
                }
                println!(
                    "  outcomes: {} completed, {} shed, {} timeout, {} safe-stopped; silent corruption: {}",
                    s.total_completed(),
                    s.total_shed(),
                    s.timeout.iter().sum::<u64>(),
                    s.safe_stop.iter().sum::<u64>(),
                    silent,
                );
                assert_eq!(silent, 0, "silent corruption must be zero");
                assert!(
                    s.safe_stop.iter().sum::<u64>() > 0,
                    "post-stop traffic must fail safe"
                );
                assert!(
                    s.shed_degraded[Tier::Low.index()] > 0,
                    "degraded mode must shed best-effort work first"
                );
                reference_report = Some(report);
            }
            Some(reference) => {
                assert_eq!(
                    &report, reference,
                    "faulted replay with {workers} workers diverged"
                );
            }
        }
    }
    let reference = reference_report.expect("reference report");
    println!(
        "  replay check: byte-identical reports for workers 1/2/4/8 ({} bytes of JSON)",
        reference.to_json().to_string_compact().len()
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let engine = hardened();
    let stream = inputs();

    let mut group = c.benchmark_group("e12_serving");
    group.sample_size(10);
    let trace = TrafficConfig {
        seed: 0xE12,
        requests: 200,
        mean_interarrival: 6.0,
        deadline: 300,
        ..TrafficConfig::default()
    }
    .synthesize(&stream)
    .expect("trace");
    for max_batch in [1usize, 16] {
        let backend = PoolBackend::new(&engine, 2).expect("pool");
        let mut server = Server::single(server_config(max_batch), backend).expect("server");
        group.bench_function(format!("replay_200_requests_batch{max_batch}"), |b| {
            b.iter(|| std::hint::black_box(server.run_trace(&trace).expect("run").responses.len()))
        });
    }
    let mut backend = PoolBackend::new(&engine, 2).expect("pool");
    let items: Vec<&[f32]> = (0..16).map(|i| stream[i].as_slice()).collect();
    group.bench_function("pool_dispatch_batch16", |b| {
        b.iter(|| std::hint::black_box(backend.serve(&items).expect("serve").len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
