//! Experiment E17: adversarial scenario search (falsification).
//!
//! Three questions, in certification order:
//!
//! 1. **Search efficiency** — how many pipeline evaluations does the
//!    falsifier spend before the first counterexample in each scenario
//!    domain, and how much of the search budget lands in violating
//!    regions after refinement?
//! 2. **Region geometry** — what fraction of each scenario space does
//!    the reported counterexample region cover? (A tiny region means a
//!    needle the fixed-dataset experiments would have missed.)
//! 3. **Evaluation economics** — what does one falsification evaluation
//!    cost: a single-shot classification run vs a full temporal
//!    trajectory episode where steering errors compound for 40 steps?
//!
//! Besides criterion timings, this bench appends `e17_falsify/stats/*`
//! JSON lines (iterations to first counterexample, violation counts and
//! margins, region-volume fractions) to `SAFEX_BENCH_JSON` for
//! `BENCH_pr9.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_falsify::{
    BackendKind, ClassificationRunner, ConfidentMisclass, CounterexampleCell, Domain, Falsifier,
    FalsifyConfig, FalsifyReport, ParamDomain, ScenarioRunner, Specification, SupervisorMisGate,
    TemporalErrorBound, TrajectoryRunner,
};

const TRAIN_SEED: u64 = 11;

/// Appends one `{"id":..., "value":...}` stat line next to the criterion
/// timing lines, so `scripts/bench.sh` collects experiment numbers and
/// timings in the same artefact.
fn emit_stat(id: &str, value: f64) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("SAFEX_BENCH_JSON") {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = writeln!(file, "{{\"id\":\"{id}\",\"value\":{value}}}");
            }
            Err(e) => eprintln!("warning: could not append to {path:?}: {e}"),
        }
    }
}

fn search_config() -> FalsifyConfig {
    FalsifyConfig {
        workers: 4,
        ..FalsifyConfig::default()
    }
}

fn class_specs() -> Vec<Box<dyn Specification>> {
    vec![
        Box::new(SupervisorMisGate),
        Box::new(ConfidentMisclass::new(0.7).expect("floor")),
    ]
}

/// Fraction of the scenario space's volume the counterexample region
/// covers: the product over dimensions of the violating interval's share
/// of its domain (discrete dimensions count levels inclusively).
fn volume_fraction(runner: &dyn ScenarioRunner, cell: &CounterexampleCell) -> f64 {
    runner
        .space()
        .params()
        .iter()
        .zip(&cell.region)
        .map(|(param, range)| match param.domain {
            ParamDomain::Continuous { lo, hi } => (range.hi - range.lo) / (hi - lo),
            ParamDomain::Discrete { levels } => (range.hi - range.lo + 1.0) / levels as f64,
        })
        .product()
}

fn report_domain(label: &str, runner: &dyn ScenarioRunner, report: &FalsifyReport, expect: &str) {
    let first = report.first_violation_eval.map_or(-1.0, |e| e as f64);
    println!(
        "  {label}: {} evaluations, first counterexample at eval {first}",
        report.evaluations
    );
    emit_stat(
        &format!("e17_falsify/stats/{label}/evaluations"),
        report.evaluations as f64,
    );
    emit_stat(
        &format!("e17_falsify/stats/{label}/first_violation_eval"),
        first,
    );
    let cell = report
        .cell(expect)
        .unwrap_or_else(|| panic!("{label} must falsify {expect:?}"));
    let volume = volume_fraction(runner, cell);
    println!(
        "    {}: {} violations, worst margin {:.3}, region volume {:.4} of the space",
        cell.spec, cell.violations, cell.margin, volume
    );
    emit_stat(
        &format!("e17_falsify/stats/{label}/violations"),
        cell.violations as f64,
    );
    emit_stat(
        &format!("e17_falsify/stats/{label}/worst_margin"),
        cell.margin,
    );
    emit_stat(
        &format!("e17_falsify/stats/{label}/region_volume_frac"),
        volume,
    );
}

fn print_tables() {
    println!("\n=== E17: falsification — counterexamples per scenario domain ===");
    let driver = Falsifier::new(search_config()).expect("config");
    for (label, domain) in [
        ("automotive", Domain::Automotive),
        ("railway", Domain::Railway),
        ("space", Domain::Space),
    ] {
        let runner =
            ClassificationRunner::new(domain, BackendKind::F32, TRAIN_SEED).expect("runner");
        let report = driver.falsify(&runner, &class_specs()).expect("search");
        report_domain(label, &runner, &report, "confident_misclass");
    }

    let runner = TrajectoryRunner::new(BackendKind::F32, TRAIN_SEED).expect("runner");
    let specs: Vec<Box<dyn Specification>> = vec![
        Box::new(SupervisorMisGate),
        Box::new(TemporalErrorBound::new(3.0).expect("bound")),
    ];
    let report = driver.falsify(&runner, &specs).expect("search");
    report_domain("trajectory", &runner, &report, "temporal_error_bound");
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();

    let auto = ClassificationRunner::new(Domain::Automotive, BackendKind::F32, TRAIN_SEED)
        .expect("runner");
    let taxi = TrajectoryRunner::new(BackendKind::F32, TRAIN_SEED).expect("runner");
    let auto_point = auto.space().grid(1).expect("grid").remove(0);
    let taxi_point = taxi.space().grid(1).expect("grid").remove(0);

    let mut group = c.benchmark_group("e17_falsify");
    group.sample_size(10);
    // One single-shot classification evaluation: dataset synthesis, shift
    // application, and the supervised pipeline over every sample.
    group.bench_function("classification_eval", |b| {
        b.iter(|| {
            let outcome = auto.run(&auto_point, 7).expect("eval");
            std::hint::black_box(outcome.witness_digest)
        })
    });
    // One temporal episode: 40 closed-loop steps where each frame is
    // rendered from the cte the model's previous decision produced.
    group.bench_function("trajectory_episode", |b| {
        b.iter(|| {
            let outcome = taxi.run(&taxi_point, 7).expect("eval");
            std::hint::black_box(outcome.witness_digest)
        })
    });
    // A bounded end-to-end search: coarse grid plus one refinement round
    // on the trajectory task.
    let small = Falsifier::new(FalsifyConfig {
        grid: 2,
        rounds: 1,
        samples_per_round: 8,
        elite: 3,
        workers: 4,
        ..FalsifyConfig::default()
    })
    .expect("config");
    let specs: Vec<Box<dyn Specification>> =
        vec![Box::new(TemporalErrorBound::new(3.0).expect("bound"))];
    group.bench_function("search_trajectory_grid2", |b| {
        b.iter(|| {
            let report = small.falsify(&taxi, &specs).expect("search");
            std::hint::black_box(report.evaluations)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
