//! Experiment E4: explanation fidelity table + explainer cost.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::Engine;
use safex_xai::fidelity;
use safex_xai::saliency::{gradient_saliency, occlusion_saliency, OcclusionConfig};

fn print_table() {
    let (_, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let subjects: Vec<_> = test
        .samples()
        .iter()
        .filter(|s| s.salient.is_some())
        .take(25)
        .collect();

    let mut occ_pairs = Vec::new();
    let mut grad_pairs = Vec::new();
    for s in &subjects {
        let truth = s.salient.expect("filtered");
        occ_pairs.push((
            occlusion_saliency(&mut engine, &s.input, s.label, &OcclusionConfig::default())
                .expect("occlusion"),
            truth,
        ));
        grad_pairs.push((
            gradient_saliency(&mut engine, &s.input, s.label, 0.05).expect("gradient"),
            truth,
        ));
    }
    println!(
        "\n=== E4: explanation fidelity (model acc {:.2}, {} subjects) ===",
        safex_bench::model_a_accuracy(),
        subjects.len()
    );
    println!(
        "{:<11} {:>14} {:>8} {:>8}",
        "explainer", "pointing-game", "IoU", "mass"
    );
    for (name, pairs) in [("occlusion", &occ_pairs), ("gradient", &grad_pairs)] {
        let r = fidelity::evaluate_batch(pairs).expect("evaluate");
        println!(
            "{:<11} {:>13.0}% {:>8.2} {:>8.2}",
            name,
            r.pointing_game * 100.0,
            r.mean_iou,
            r.mean_mass
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let sample = test
        .samples()
        .iter()
        .find(|s| s.salient.is_some())
        .expect("object sample")
        .clone();

    let mut group = c.benchmark_group("e4_explainers");
    group.sample_size(20);
    group.bench_function("occlusion_16x16", |b| {
        b.iter(|| {
            std::hint::black_box(
                occlusion_saliency(
                    &mut engine,
                    &sample.input,
                    sample.label,
                    &OcclusionConfig::default(),
                )
                .expect("occlusion"),
            )
        })
    });
    group.bench_function("gradient_16x16", |b| {
        b.iter(|| {
            std::hint::black_box(
                gradient_saliency(&mut engine, &sample.input, sample.label, 0.05)
                    .expect("gradient"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
