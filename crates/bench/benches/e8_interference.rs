//! Experiment E8: co-runner interference — slowdown and pWCET inflation
//! vs contending cores, shared vs partitioned L2.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_platform::platform::{Platform, PlatformConfig};
use safex_platform::TraceProgram;
use safex_tensor::DetRng;
use safex_timing::mbpta::{analyze, MbptaConfig};

fn program() -> TraceProgram {
    let (_, _, model_a, _) = workload();
    TraceProgram::from_model(model_a, 256)
}

fn print_table(program: &TraceProgram) {
    println!("\n=== E8: co-runner interference ===");
    println!(
        "{:<13} {:<12} {:>10} {:>10} {:>12} {:>10}",
        "co-runners", "L2", "mean", "HWM", "pWCET@1e-9", "slowdown"
    );
    let mut baseline_mean = 0.0f64;
    for &co in &[0usize, 1, 2, 3] {
        for (l2, partitioned) in [("shared", false), ("partitioned", true)] {
            if co == 0 && partitioned {
                continue; // identical to shared with no contenders
            }
            let mut config = PlatformConfig::time_randomized().with_co_runners(co);
            if partitioned {
                config = config.partitioned();
            }
            let platform = Platform::new(config).expect("platform");
            let samples = platform
                .measure(program, 300, &mut DetRng::new(11))
                .expect("measure");
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let hwm = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if co == 0 {
                baseline_mean = mean;
            }
            let bound = analyze(&samples, &MbptaConfig::default())
                .ok()
                .and_then(|r| r.pwcet.bound_at(1e-9).ok());
            println!(
                "{:<13} {:<12} {:>10.0} {:>10.0} {:>12} {:>9.2}x",
                co,
                l2,
                mean,
                hwm,
                bound.map_or("n/a".to_string(), |b| format!("{b:.0}")),
                mean / baseline_mean
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let program = program();
    print_table(&program);

    let mut group = c.benchmark_group("e8_measure");
    group.sample_size(10);
    for (name, config) in [
        ("alone", PlatformConfig::time_randomized()),
        (
            "contended_shared",
            PlatformConfig::time_randomized().with_co_runners(3),
        ),
        (
            "contended_partitioned",
            PlatformConfig::time_randomized()
                .with_co_runners(3)
                .partitioned(),
        ),
    ] {
        let platform = Platform::new(config).expect("platform");
        group.bench_function(name, |b| {
            let mut rng = DetRng::new(2);
            b.iter(|| std::hint::black_box(platform.run(&program, &mut rng).expect("run").cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
