//! Experiment E10: batch-inference throughput — single engine vs a
//! deterministic engine pool, plus the determinism cross-check that makes
//! the speedup admissible (pooled outputs are bit-identical to
//! single-threaded outputs for every worker count).

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::{Engine, EnginePool};

const BATCH_SIZES: [usize; 3] = [64, 256, 1024];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Builds a batch by cycling the test set up to `n` inputs.
fn batch(n: usize) -> Vec<Vec<f32>> {
    let (_, test, _, _) = workload();
    (0..n)
        .map(|i| test.samples()[i % test.len()].input.clone())
        .collect()
}

fn print_table() {
    let (_, _, model_a, _) = workload();
    println!("\n=== E10: batch throughput, single engine vs pool ===");
    println!(
        "host parallelism: {:?}",
        std::thread::available_parallelism()
    );

    // Admissibility first: pooled outputs must be bit-identical to the
    // sequential reference for every worker count, or the speedup column
    // is meaningless for a safety argument.
    let inputs = batch(256);
    let mut reference_engine = Engine::new(model_a.clone());
    let reference: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| reference_engine.infer(x).expect("infer").to_vec())
        .collect();
    for workers in WORKER_COUNTS {
        let mut pool = EnginePool::new(model_a.clone(), workers).expect("pool");
        let outputs = pool.infer_batch(&inputs).expect("batch");
        assert_eq!(
            outputs, reference,
            "pool with {workers} workers must be bit-identical to sequential"
        );
    }
    println!("bit-exactness vs sequential (batch 256, workers 1/2/4): yes");

    // Throughput table: mean wall-clock per batch over `reps` runs.
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>10}",
        "batch", "1 engine", "pool(2)", "pool(4)", "speedup(4)"
    );
    for n in BATCH_SIZES {
        let inputs = batch(n);
        let reps = (2048 / n).max(3);
        let mut times_us = Vec::new();
        // Single engine, sequential loop.
        let mut engine = Engine::new(model_a.clone());
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            for x in &inputs {
                std::hint::black_box(engine.infer(x).expect("infer")[0]);
            }
        }
        times_us.push(t0.elapsed().as_secs_f64() * 1e6 / reps as f64);
        for workers in [2usize, 4] {
            let mut pool = EnginePool::new(model_a.clone(), workers).expect("pool");
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                std::hint::black_box(pool.infer_batch(&inputs).expect("batch").len());
            }
            times_us.push(t0.elapsed().as_secs_f64() * 1e6 / reps as f64);
        }
        println!(
            "{:<12} {:>12.0}us {:>12.0}us {:>12.0}us {:>9.2}x",
            n,
            times_us[0],
            times_us[1],
            times_us[2],
            times_us[0] / times_us[2]
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, _, model_a, _) = workload();
    let inputs = batch(256);

    let mut group = c.benchmark_group("e10_batch_256");
    group.sample_size(20);
    let mut engine = Engine::new(model_a.clone());
    group.bench_function("single_engine", |b| {
        b.iter(|| {
            let mut last = 0.0f32;
            for x in &inputs {
                last = engine.infer(x).expect("infer")[0];
            }
            std::hint::black_box(last)
        })
    });
    for workers in WORKER_COUNTS {
        let mut pool = EnginePool::new(model_a.clone(), workers).expect("pool");
        group.bench_function(format!("pool_{workers}_workers"), |b| {
            b.iter(|| std::hint::black_box(pool.infer_batch(&inputs).expect("batch").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
