//! Experiment E7: calibration table (ECE/Brier before vs after
//! temperature scaling) + fitting cost.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::Engine;
use safex_supervision::observation::observe;
use safex_xai::calibration::{brier_score, expected_calibration_error, TemperatureScaling};

fn logits_and_labels() -> (Vec<Vec<f32>>, Vec<usize>) {
    let (_, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let mut logits = Vec::new();
    let mut labels = Vec::new();
    for s in test.samples() {
        let obs = observe(&mut engine, &s.input).expect("observe");
        logits.push(obs.logits);
        labels.push(s.label);
    }
    (logits, labels)
}

fn print_table(logits: &[Vec<f32>], labels: &[usize]) -> TemperatureScaling {
    let ts = TemperatureScaling::fit(logits, labels).expect("fit");
    println!(
        "\n=== E7: calibration (fitted T = {:.3}) ===",
        ts.temperature()
    );
    println!("{:<22} {:>8} {:>8}", "transform", "ECE", "Brier");
    for (name, t) in [
        ("identity (T=1)", TemperatureScaling::identity()),
        ("temperature-scaled", ts),
    ] {
        let probs: Vec<Vec<f32>> = logits.iter().map(|z| t.apply(z)).collect();
        println!(
            "{:<22} {:>8.3} {:>8.3}",
            name,
            expected_calibration_error(&probs, labels, 10).expect("ece"),
            brier_score(&probs, labels).expect("brier")
        );
    }
    println!();
    ts
}

fn bench(c: &mut Criterion) {
    let (logits, labels) = logits_and_labels();
    let ts = print_table(&logits, &labels);

    let mut group = c.benchmark_group("e7_calibration");
    group.sample_size(20);
    group.bench_function("temperature_fit", |b| {
        b.iter(|| std::hint::black_box(TemperatureScaling::fit(&logits, &labels).expect("fit")))
    });
    group.bench_function("temperature_apply_batch", |b| {
        b.iter(|| {
            let probs: Vec<Vec<f32>> = logits.iter().map(|z| ts.apply(z)).collect();
            std::hint::black_box(probs)
        })
    });
    group.bench_function("ece_10bins", |b| {
        let probs: Vec<Vec<f32>> = logits.iter().map(|z| ts.apply(z)).collect();
        b.iter(|| {
            std::hint::black_box(expected_calibration_error(&probs, &labels, 10).expect("ece"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
