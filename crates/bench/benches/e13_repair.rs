//! Experiment E13: detect-and-correct weight memory.
//!
//! Re-runs the single-bit weight-SEU campaign with the ECC sidecar
//! enabled and prints the with/without-repair comparison: diagnostic
//! coverage, silent-data-corruption rate, in-place corrections, repair
//! latency, time spent outside Nominal, and the sidecar memory cost —
//! then times the per-decision overhead repair adds on the clean path.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_core::campaign::{self, CampaignConfig, CampaignPattern, FaultClass};
use safex_core::health::HealthConfig;
use safex_nn::{CrcStrategy, EccConfig, HardenConfig, HardenedEngine};

fn inputs() -> Vec<Vec<f32>> {
    let (_, test, _, _) = workload();
    test.samples().iter().map(|s| s.input.clone()).collect()
}

fn campaign_config(repair: bool) -> CampaignConfig {
    CampaignConfig {
        seed: 0xE13,
        decisions: 400,
        classes: vec![FaultClass::WeightBitFlip, FaultClass::WeightMultiBitFlip],
        rates: vec![0.05, 0.15],
        patterns: vec![CampaignPattern::MonitorActuator],
        harden: HardenConfig {
            repair: repair.then(EccConfig::default),
            ..HardenConfig::default()
        },
        health: HealthConfig {
            // Budget sized to the window: corrected faults are warnings
            // and never walk the ladder; uncorrectable damage still does.
            warn_budget: 8,
            resume_after: 8,
            ..HealthConfig::default()
        },
        ..CampaignConfig::default()
    }
}

fn print_table() {
    let (_, _, model, _) = workload();
    let stream = inputs();
    let baseline = campaign::run(&campaign_config(false), model, &stream).expect("campaign");
    let repaired = campaign::run(&campaign_config(true), model, &stream).expect("campaign");

    println!("\n=== E13: weight-SEU campaign, detect-only vs detect-and-correct ===");
    println!(
        "{:<22} {:>6} {:>7} {:<9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "fault class",
        "rate",
        "mode",
        "faulted",
        "coverage",
        "SDC",
        "corrected",
        "rep.lat",
        "degraded",
        "stopped"
    );
    for (mode, report) in [("detect", &baseline), ("repair", &repaired)] {
        for cell in &report.cells {
            println!(
                "{:<22} {:>6.2} {:>7} {:<9} {:>7.1}% {:>8.2}% {:>9} {:>9} {:>9} {:>9}",
                cell.class.tag(),
                cell.rate,
                mode,
                cell.faulted,
                cell.diagnostic_coverage() * 100.0,
                cell.sdc_rate() * 100.0,
                cell.corrected,
                cell.repair_latency.map_or("-".into(), |l| l.to_string()),
                cell.time_degraded,
                cell.time_stopped,
            );
        }
    }
    let overhead = repaired
        .cells
        .first()
        .map_or(0.0, |c| c.sidecar_overhead_pct);
    println!(
        "sidecar memory overhead {overhead:.2}% of protected parameter bits \
         (block = {} words)",
        EccConfig::default().block_words
    );
    // The headline claim: with repair on, single-bit weight SEUs cause
    // zero silent corruption AND zero time outside Nominal.
    for cell in &repaired.cells {
        if cell.class == FaultClass::WeightBitFlip {
            assert_eq!(
                cell.silent, 0,
                "repair must not introduce silent corruption"
            );
            assert_eq!(cell.corrected, cell.faulted, "every single-bit SEU repairs");
            assert_eq!(cell.time_degraded, 0, "corrected faults must not degrade");
            assert_eq!(cell.time_stopped, 0, "corrected faults must not stop");
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, _, model, _) = workload();
    let stream = inputs();

    // Clean-path cost of carrying the sidecar: same CRC settings, repair
    // off vs on. No faults are injected, so the delta is pure
    // bookkeeping (sidecar residency + catch-up accounting).
    let mut group = c.benchmark_group("e13_repair_overhead");
    group.sample_size(40);
    for (name, repair) in [("detect_only", false), ("detect_and_correct", true)] {
        let mut engine = HardenedEngine::new(
            model.clone(),
            HardenConfig {
                crc_cadence: 1,
                crc_strategy: CrcStrategy::Full,
                repair: repair.then(EccConfig::default),
                ..HardenConfig::default()
            },
        )
        .expect("harden");
        engine.calibrate(&stream).expect("calibrate");
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &stream[i % stream.len()];
                i += 1;
                std::hint::black_box(engine.classify(x).expect("classify"))
            })
        });
    }
    group.finish();

    // One full repair campaign cell, end to end.
    let mut group = c.benchmark_group("e13_repair_cell");
    group.sample_size(10);
    group.bench_function("weight_bit_flip_100_decisions_with_repair", |b| {
        let config = CampaignConfig {
            decisions: 100,
            classes: vec![FaultClass::WeightBitFlip],
            rates: vec![0.05],
            ..campaign_config(true)
        };
        b.iter(|| std::hint::black_box(campaign::run(&config, model, &stream).expect("campaign")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
