//! Experiment E15: soak runtime — atomic hot swap, snapshot/restore
//! fidelity, and the layered watchdog under a seeded fault campaign.
//!
//! Three questions, in certification order:
//!
//! 1. **Hot swap cost** — when a fleet member's model is replaced
//!    mid-traffic (quiesce → re-golden → digest gate → commit), how many
//!    ticks does the drain take, and does the rest of the fleet keep
//!    serving throughout?
//! 2. **Restore fidelity** — a run snapshotted mid-traffic and resumed
//!    from the restored state must reproduce the uninterrupted run's
//!    replay artefact byte-for-byte; how expensive are the snapshot
//!    codec and the restore path?
//! 3. **Watchdog economics** — what does per-stage liveness tracking
//!    cost on a healthy pipeline, and how many heartbeats/proofs does a
//!    soak campaign record?
//!
//! Besides criterion timings, this bench appends `e15_soak/stats/*`
//! JSON lines (swap latency, watchdog kick counts, restore fidelity)
//! to `SAFEX_BENCH_JSON` for `BENCH_pr7.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_core::health::{HealthConfig, HealthState};
use safex_nn::model::ModelBuilder;
use safex_nn::{EccConfig, HardenConfig, HardenedEngine, Model};
use safex_serve::{
    ArrivalTrace, Backend, CacheConfig, Fleet, ModelId, OpsPlan, PoolBackend, Request, RoutingKind,
    Server, ServerConfig, ServerSnapshot, SimClock, SwapOp, TrafficConfig, WatchStage,
    WatchdogConfig,
};
use safex_tensor::{DetRng, Shape};
use safex_trace::RecordKind;

fn fixture(seed: u64) -> Model {
    let mut rng = DetRng::new(seed);
    ModelBuilder::new(Shape::vector(6))
        .dense(10, &mut rng)
        .unwrap()
        .relu()
        .dense(4, &mut rng)
        .unwrap()
        .softmax()
        .build()
        .unwrap()
}

/// A mostly-distinct input stream: the verified-result cache gets real
/// hits without starving the backends of fresh work.
fn wide_inputs() -> Vec<Vec<f32>> {
    let mut rng = DetRng::new(0xE15);
    (0..800)
        .map(|_| (0..6).map(|_| rng.next_f32()).collect())
        .collect()
}

fn hardened(model: &Model, inputs: &[Vec<f32>]) -> HardenedEngine {
    // ECC repair on: single-bit SEU strikes are corrected in place, which
    // is the fault model the soak injects.
    let config = HardenConfig {
        repair: Some(EccConfig::default()),
        ..HardenConfig::default()
    };
    let mut engine = HardenedEngine::new(model.clone(), config).expect("harden");
    engine.calibrate(inputs).expect("calibrate");
    engine
}

fn three_member_fleet(engine: &HardenedEngine) -> Fleet<PoolBackend> {
    let mut builder = Fleet::builder();
    for name in ["alpha", "beta", "gamma"] {
        builder = builder.register(name, PoolBackend::new(engine, 1).expect("pool"));
    }
    builder.build().expect("fleet")
}

fn soak_config() -> ServerConfig {
    ServerConfig::default()
        // Round-robin keeps routing work onto a Degraded member, so the
        // uncorrectable strike reliably walks the full ladder.
        .with_routing(RoutingKind::RoundRobin)
        .with_health(HealthConfig {
            window: 8,
            degrade_events: 2,
            stop_events: 6,
            recover_after: 16,
            resume_after: 0,
            warn_budget: 3,
        })
        .with_cache(CacheConfig::enabled(256))
        .with_watchdog(WatchdogConfig::enabled(1024).with_proof_cadence(1800))
        .with_campaign("bench-e15")
}

fn campaign_trace(inputs: &[Vec<f32>]) -> ArrivalTrace {
    TrafficConfig {
        seed: 0xE15_50AC,
        requests: 1200,
        mean_interarrival: 3.0,
        deadline: 600,
        ..TrafficConfig::default()
    }
    .synthesize(inputs)
    .expect("trace")
}

/// Appends one `{"id":..., "value":...}` stat line next to the criterion
/// timing lines, so `scripts/bench.sh` collects experiment numbers and
/// timings in the same artefact.
fn emit_stat(id: &str, value: f64) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("SAFEX_BENCH_JSON") {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = writeln!(file, "{{\"id\":\"{id}\",\"value\":{value}}}");
            }
            Err(e) => eprintln!("warning: could not append to {path:?}: {e}"),
        }
    }
}

fn strikes(request: &Request, fleet: &mut Fleet<PoolBackend>) {
    let alpha = ModelId::new(0);
    if request.id == 100 {
        // Single-bit SEU: repaired in place by the ECC sidecar.
        fleet
            .backend_mut(alpha)
            .expect("member")
            .strike_weights(0xA11CE, 1, 1)
            .expect("strike");
    }
    if request.id == 960 {
        // Double-bit SEU: uncorrectable; alpha walks its ladder down.
        fleet
            .backend_mut(alpha)
            .expect("member")
            .strike_weights(0xBAD5EED, 1, 2)
            .expect("strike");
    }
}

fn print_tables() -> Vec<u8> {
    let inputs = wide_inputs();
    let engine = hardened(&fixture(0xF1EE7), &inputs);
    let engine2 = hardened(&fixture(0xB0B2), &inputs);
    let good_digest = PoolBackend::new(&engine2, 1)
        .expect("pool")
        .swap_digest()
        .expect("digest");
    let trace = campaign_trace(&inputs);
    let beta = ModelId::new(1);

    // ---- 1. The soak campaign: faults, one committed swap, snapshot. -----
    println!("\n=== E15: soak campaign, SEU strikes on alpha, hot swap on beta ===");
    let plan = OpsPlan::none().with_snapshot_at(600).with_swap(SwapOp {
        at_request: 720,
        model: beta,
        incoming: PoolBackend::new(&engine2, 1).expect("pool"),
        expected_digest: Some(good_digest),
    });
    let mut server = Server::new(soak_config(), three_member_fleet(&engine)).expect("server");
    let base = server
        .run_soak_with(&trace, plan, &mut SimClock, strikes)
        .expect("soak");
    assert_eq!(base.report.responses.len(), trace.len(), "no silent drops");

    let swap = &base.report.soak.swaps[0];
    assert!(swap.committed && swap.model == beta, "swap must commit");
    assert_eq!(swap.digest, good_digest);
    println!(
        "  hot swap: {} drained {} ticks (requested t={}, committed t={}), digest {:016x}",
        swap.model,
        swap.latency(),
        swap.requested_at,
        swap.resolved_at,
        swap.digest
    );
    emit_stat("e15_soak/stats/swap_latency_ticks", swap.latency() as f64);
    emit_stat(
        "e15_soak/stats/swap_committed",
        u64::from(swap.committed) as f64,
    );

    for t in &base.report.transitions {
        println!(
            "  {} {} -> {} at tick {} (after request {})",
            t.model, t.from, t.to, t.at_tick, t.after_request
        );
    }
    // The uncorrectable strike walked alpha to SafeStop while the rest of
    // the fleet (including the freshly swapped member) kept serving.
    assert_eq!(
        server.model_state(ModelId::new(0)),
        Some(HealthState::SafeStop),
        "alpha must walk to SafeStop after the 2-bit strike"
    );
    assert_eq!(server.model_state(beta), Some(HealthState::Nominal));
    assert!(
        !server
            .evidence()
            .records_of_kind(RecordKind::FaultCorrected)
            .is_empty(),
        "the 1-bit strike must surface as repaired-fault evidence"
    );

    // ---- 3. Watchdog heartbeats on a healthy pipeline. -------------------
    let soak = &base.report.soak;
    println!(
        "  watchdog: kicks admission={} batcher={} backend={} release={}, alarms={}, proofs={}",
        soak.watchdog_kicks[WatchStage::Admission.index()],
        soak.watchdog_kicks[WatchStage::Batcher.index()],
        soak.watchdog_kicks[WatchStage::Backend.index()],
        soak.watchdog_kicks[WatchStage::Release.index()],
        soak.watchdog_alarms,
        soak.watchdog_proofs,
    );
    for stage in WatchStage::ALL {
        emit_stat(
            &format!("e15_soak/stats/watchdog/kicks_{}", stage.tag()),
            soak.watchdog_kicks[stage.index()] as f64,
        );
    }
    emit_stat(
        "e15_soak/stats/watchdog/alarms",
        soak.watchdog_alarms as f64,
    );
    emit_stat(
        "e15_soak/stats/watchdog/proofs",
        soak.watchdog_proofs as f64,
    );
    assert!(soak.watchdog_kicks.iter().all(|&k| k > 0));
    assert_eq!(soak.watchdog_alarms, 0, "healthy pipeline: no alarms");

    // ---- 2. Restore fidelity: resumed run == uninterrupted run. ----------
    let bytes = base.snapshot.clone().expect("plan captured a snapshot");
    let mut restored =
        Server::restore(soak_config(), three_member_fleet(&engine), &bytes).expect("restore");
    let plan = OpsPlan::none().with_snapshot_at(600).with_swap(SwapOp {
        at_request: 720,
        model: beta,
        incoming: PoolBackend::new(&engine2, 1).expect("pool"),
        expected_digest: Some(good_digest),
    });
    let resumed = restored
        .run_soak_with(&trace, plan, &mut SimClock, strikes)
        .expect("resume");
    let fidelity = u64::from(
        resumed.report.replay_json().to_string_compact()
            == base.report.replay_json().to_string_compact(),
    );
    let chain_delta = restored.evidence().len() as f64 - server.evidence().len() as f64;
    println!(
        "  restore: snapshot {} bytes, replay byte-identical={}, chain delta={} (the runtime_restored record)",
        bytes.len(),
        fidelity,
        chain_delta
    );
    assert_eq!(fidelity, 1, "restored continuation diverged from baseline");
    assert_eq!(resumed.report.replay_digest(), base.report.replay_digest());
    emit_stat("e15_soak/stats/restore_fidelity", fidelity as f64);
    emit_stat("e15_soak/stats/restore_chain_delta", chain_delta);
    emit_stat("e15_soak/stats/snapshot_bytes", bytes.len() as f64);
    println!();
    bytes
}

fn bench(c: &mut Criterion) {
    let bytes = print_tables();
    let inputs = wide_inputs();
    let engine = hardened(&fixture(0xF1EE7), &inputs);
    let trace = TrafficConfig {
        seed: 0xE15,
        requests: 300,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&inputs)
    .expect("trace");

    let mut group = c.benchmark_group("e15_soak");
    group.sample_size(10);
    // The watchdog's per-tick cost on a healthy pipeline: the same replay
    // loop with liveness tracking armed.
    let mut server = Server::new(soak_config(), three_member_fleet(&engine)).expect("server");
    group.bench_function("soak_replay_300_watchdog_on", |b| {
        b.iter(|| {
            let outcome = server
                .run_soak(&trace, OpsPlan::none(), &mut SimClock)
                .expect("run");
            std::hint::black_box(outcome.report.responses.len())
        })
    });
    // Snapshot codec: decode + re-encode of a captured mid-traffic state.
    group.bench_function("snapshot_codec_roundtrip", |b| {
        b.iter(|| {
            let snapshot = ServerSnapshot::decode(&bytes).expect("decode");
            std::hint::black_box(snapshot.encode().len())
        })
    });
    // Restore latency: decode, validate against config + fleet shape, and
    // stage the run state onto a fresh server.
    group.bench_function("restore_stage", |b| {
        b.iter(|| {
            let server = Server::restore(soak_config(), three_member_fleet(&engine), &bytes)
                .expect("restore");
            std::hint::black_box(server.pending_restore())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
