//! Experiment E1: supervisor OOD-detection quality table + scoring cost.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::Engine;
use safex_scenarios::shift::Shift;
use safex_supervision::observation::{observe, Observation};
use safex_supervision::roc;
use safex_supervision::supervisor::{
    LogitMargin, Mahalanobis, Reconstruction, SoftmaxThreshold, Supervisor,
};
use safex_tensor::DetRng;

fn observations(engine: &mut Engine, data: &safex_scenarios::Dataset) -> Vec<Observation> {
    data.samples()
        .iter()
        .map(|s| observe(engine, &s.input).expect("observe"))
        .collect()
}

fn print_table() -> (Vec<Box<dyn Supervisor>>, Vec<Observation>) {
    let (train, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let mut rng = DetRng::new(1);
    let ood = Shift::GaussianNoise(0.5)
        .apply(test, &mut rng)
        .expect("shift");

    let train_obs = observations(&mut engine, train);
    let id_obs = observations(&mut engine, test);
    let ood_obs = observations(&mut engine, &ood);

    let mut mahalanobis = Mahalanobis::new();
    mahalanobis.fit(&train_obs, &train.labels()).expect("fit");
    let mut reconstruction = Reconstruction::new(8).expect("new");
    reconstruction
        .fit(&train_obs, &train.labels())
        .expect("fit");

    let supervisors: Vec<Box<dyn Supervisor>> = vec![
        Box::new(SoftmaxThreshold::new()),
        Box::new(LogitMargin::new()),
        Box::new(mahalanobis),
        Box::new(reconstruction),
    ];

    println!(
        "\n=== E1: supervisor quality (model acc {:.2}) ===",
        safex_bench::model_a_accuracy()
    );
    println!(
        "{:<18} {:>7} {:>10} {:>11}",
        "supervisor", "AUROC", "TPR@FPR5%", "FPR@TPR95%"
    );
    for sup in &supervisors {
        let id: Vec<f64> = id_obs
            .iter()
            .map(|o| sup.score(o).expect("score"))
            .collect();
        let ood: Vec<f64> = ood_obs
            .iter()
            .map(|o| sup.score(o).expect("score"))
            .collect();
        let s = roc::summarize(&id, &ood).expect("roc");
        println!(
            "{:<18} {:>7.3} {:>10.3} {:>11.3}",
            sup.name(),
            s.auroc,
            s.tpr_at_fpr5,
            s.fpr_at_tpr95
        );
    }
    println!();
    (supervisors, id_obs)
}

fn bench(c: &mut Criterion) {
    let (supervisors, obs) = print_table();
    let mut group = c.benchmark_group("e1_supervisor_scoring");
    group.sample_size(30);
    for sup in &supervisors {
        group.bench_function(sup.name(), |b| {
            b.iter(|| {
                let mut total = 0.0f64;
                for o in &obs {
                    total += sup.score(o).expect("score");
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
