//! Experiment E9: evidence-chain tamper detection + chain throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_tensor::DetRng;
use safex_trace::record::{RecordKind, Value};
use safex_trace::EvidenceChain;

fn chain(n: usize) -> EvidenceChain {
    let mut c = EvidenceChain::new("e9");
    for i in 0..n {
        c.append(
            RecordKind::InferencePerformed,
            vec![
                ("frame".into(), Value::U64(i as u64)),
                ("class".into(), Value::U64((i % 4) as u64)),
                ("confidence".into(), Value::F64(0.9)),
            ],
        );
    }
    c
}

fn print_table() {
    println!("\n=== E9: tamper detection over 500 trials per depth ===");
    println!(
        "{:<12} {:>16} {:>22}",
        "chain-len", "naive tamper", "rehashed tamper*"
    );
    let mut rng = DetRng::new(3);
    for &n in &[10usize, 100, 1000] {
        let trials = 500;
        let mut naive_detected = 0usize;
        let mut rehash_detected = 0usize;
        for _ in 0..trials {
            let victim = rng.below_usize(n);
            let mut c = chain(n);
            c.simulate_tamper(victim, |r| {
                r.fields[1].1 = Value::U64(99);
            });
            if c.verify().is_err() {
                naive_detected += 1;
            }
            let mut c = chain(n);
            c.simulate_tamper(victim, |r| {
                r.fields[1].1 = Value::U64(99);
                r.hash = r.computed_hash();
            });
            // The external head anchor counts as detection for the head.
            let caught = c.verify().is_err() || c.head_hash() != chain(n).head_hash();
            if caught {
                rehash_detected += 1;
            }
        }
        println!(
            "{:<12} {:>15.1}% {:>21.1}%",
            n,
            100.0 * naive_detected as f64 / trials as f64,
            100.0 * rehash_detected as f64 / trials as f64
        );
    }
    println!("* with the chain head anchored externally");
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e9_chain");
    group.bench_function("append_1000", |b| {
        b.iter(|| std::hint::black_box(chain(1000).head_hash()))
    });
    let built = chain(1000);
    group.bench_function("verify_1000", |b| {
        b.iter(|| std::hint::black_box(built.verify().is_ok()))
    });
    group.bench_function("export_json_100", |b| {
        let small = chain(100);
        b.iter(|| {
            std::hint::black_box(safex_trace::json::chain_to_json(&small).to_string_compact())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
