//! Experiment E16: fused verify-on-read kernels and batch-major arenas.
//!
//! Measures what folding the CRC/parity sweep into the layer kernels
//! buys over the second-sweep strategies (E11's `crc_every_decision`
//! paid ~4.5x bare; fused rides the memory traffic inference already
//! pays), and where the batch-major activation arena puts the
//! batch=16 per-request cost relative to batch=1.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::{CrcStrategy, Engine, HardenConfig, HardenedEngine};

fn inputs() -> Vec<Vec<f32>> {
    let (_, test, _, _) = workload();
    test.samples().iter().map(|s| s.input.clone()).collect()
}

fn hardened(strategy: CrcStrategy, cadence: u64, stream: &[Vec<f32>]) -> HardenedEngine {
    let (_, _, model, _) = workload();
    let mut engine = HardenedEngine::new(
        model.clone(),
        HardenConfig {
            crc_cadence: cadence,
            crc_strategy: strategy,
            ..HardenConfig::default()
        },
    )
    .expect("harden");
    engine.calibrate(stream).expect("calibrate");
    engine
}

fn bench(c: &mut Criterion) {
    let (_, _, model, _) = workload();
    let stream = inputs();

    // Per-decision hardened inference cost: the fused strategy against
    // the bare engine and the second-sweep strategies it replaces.
    let mut group = c.benchmark_group("e16_fused");
    group.sample_size(40);
    let mut plain = Engine::new(model.clone());
    group.bench_function("bare_engine", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &stream[i % stream.len()];
            i += 1;
            std::hint::black_box(plain.classify(x).expect("classify"))
        })
    });
    for (name, strategy, cadence) in [
        ("full_every_decision", CrcStrategy::Full, 1u64),
        ("fused_every_decision", CrcStrategy::Fused, 1),
        ("fused_cadence_8", CrcStrategy::Fused, 8),
        ("rotating_cadence_8", CrcStrategy::Rotating, 8),
    ] {
        let mut engine = hardened(strategy, cadence, &stream);
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &stream[i % stream.len()];
                i += 1;
                std::hint::black_box(engine.classify(x).expect("classify"))
            })
        });
    }

    // Batch-major arena: 16 requests served one at a time vs as one
    // batch through the ping-pong slab (same engine, same answers —
    // the arena amortises allocation and streams each dense weight row
    // once per batch instead of once per item).
    let batch: Vec<&[f32]> = stream.iter().take(16).map(Vec::as_slice).collect();
    let mut single = Engine::new(model.clone());
    group.bench_function("requests16_batch1", |b| {
        b.iter(|| {
            for x in &batch {
                std::hint::black_box(single.classify(x).expect("classify"));
            }
        })
    });
    let mut batched = Engine::new(model.clone());
    // Warm the arena once so steady-state cost is measured, matching a
    // serving loop that reuses the engine across batches.
    batched.classify_batch(&batch).expect("classify");
    group.bench_function("requests16_batch16", |b| {
        b.iter(|| std::hint::black_box(batched.classify_batch(&batch).expect("classify")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
