//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * A1a — occlusion patch size vs explanation fidelity (E4 ablation);
//! * A1b — MBPTA block size vs pWCET bound (E2 ablation);
//! * A1c — monitor target FPR vs shift-rejection/availability trade (E1/E6
//!   ablation);
//! * A1d — explainer family comparison (occlusion vs gradient vs
//!   integrated gradients vs RISE) at equal fidelity budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_nn::Engine;
use safex_platform::platform::{Platform, PlatformConfig};
use safex_platform::TraceProgram;
use safex_scenarios::shift::Shift;
use safex_supervision::observation::observe;
use safex_supervision::supervisor::{Mahalanobis, Supervisor};
use safex_supervision::{CalibratedMonitor, Verdict};
use safex_tensor::DetRng;
use safex_timing::mbpta::{analyze, MbptaConfig};
use safex_xai::fidelity;
use safex_xai::saliency::{
    gradient_saliency, integrated_gradient_saliency, occlusion_saliency, rise_saliency,
    OcclusionConfig,
};

fn ablate_patch_size() {
    let (_, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let subjects: Vec<_> = test
        .samples()
        .iter()
        .filter(|s| s.salient.is_some())
        .take(20)
        .collect();
    println!("\n=== A1a: occlusion patch size vs fidelity ===");
    println!("{:<7} {:>14} {:>8}", "patch", "pointing-game", "IoU");
    for patch in [1usize, 2, 3, 5, 7] {
        let config = OcclusionConfig {
            patch,
            ..Default::default()
        };
        let pairs: Vec<_> = subjects
            .iter()
            .map(|s| {
                (
                    occlusion_saliency(&mut engine, &s.input, s.label, &config).expect("occlusion"),
                    s.salient.expect("filtered"),
                )
            })
            .collect();
        let r = fidelity::evaluate_batch(&pairs).expect("evaluate");
        println!(
            "{:<7} {:>13.0}% {:>8.2}",
            patch,
            r.pointing_game * 100.0,
            r.mean_iou
        );
    }
}

fn ablate_block_size() {
    let (_, _, model_a, _) = workload();
    let program = TraceProgram::from_model(model_a, 256);
    let platform = Platform::new(PlatformConfig::time_randomized()).expect("platform");
    let samples = platform
        .measure(&program, 1000, &mut DetRng::new(21))
        .expect("measure");
    println!("\n=== A1b: MBPTA block size vs pWCET bound ===");
    println!(
        "{:<7} {:>8} {:>12} {:>12}",
        "block", "blocks", "pWCET@1e-9", "pWCET@1e-12"
    );
    for block in [5usize, 10, 20, 50, 100] {
        let config = MbptaConfig {
            block_size: block,
            ..Default::default()
        };
        match analyze(&samples, &config) {
            Ok(result) => println!(
                "{:<7} {:>8} {:>12.0} {:>12.0}",
                block,
                result.blocks,
                result.pwcet.bound_at(1e-9).expect("bound"),
                result.pwcet.bound_at(1e-12).expect("bound")
            ),
            Err(e) => println!("{:<7} {e}", block),
        }
    }
    println!("(stable bounds across block sizes corroborate the Gumbel fit)");
}

fn ablate_target_fpr() {
    let (train, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let train_obs: Vec<_> = train
        .samples()
        .iter()
        .map(|s| observe(&mut engine, &s.input).expect("observe"))
        .collect();
    let mut supervisor = Mahalanobis::new();
    supervisor.fit(&train_obs, &train.labels()).expect("fit");
    let id_scores: Vec<f64> = train_obs
        .iter()
        .map(|o| supervisor.score(o).expect("score"))
        .collect();
    let mut rng = DetRng::new(5);
    let shifted = Shift::GaussianNoise(0.35)
        .apply(test, &mut rng)
        .expect("shift");

    println!("\n=== A1c: monitor target FPR vs rejection/availability ===");
    println!(
        "{:<12} {:>15} {:>16}",
        "target-FPR", "nominal-reject", "shift-reject"
    );
    for fpr in [0.01f64, 0.05, 0.10, 0.20] {
        let monitor = CalibratedMonitor::fit(
            Box::new({
                let mut s = Mahalanobis::new();
                s.fit(&train_obs, &train.labels()).expect("fit");
                s
            }),
            &id_scores,
            fpr,
        )
        .expect("calibrate");
        let mut reject_rate = |data: &safex_scenarios::Dataset| -> f64 {
            let mut rejects = 0usize;
            for s in data.samples() {
                let obs = observe(&mut engine, &s.input).expect("observe");
                if let (Verdict::Reject, _) = monitor.check(&obs).expect("check") {
                    rejects += 1;
                }
            }
            rejects as f64 / data.len() as f64
        };
        println!(
            "{:<12} {:>14.1}% {:>15.1}%",
            fpr,
            reject_rate(test) * 100.0,
            reject_rate(&shifted) * 100.0
        );
    }
    println!("(tighter FPR keeps availability; looser FPR catches milder shift)");
}

fn ablate_explainer_family() {
    let (_, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let subjects: Vec<_> = test
        .samples()
        .iter()
        .filter(|s| s.salient.is_some())
        .take(15)
        .collect();
    println!("\n=== A1d: explainer family comparison ===");
    println!("{:<22} {:>14} {:>8}", "explainer", "pointing-game", "IoU");
    let mut rows: Vec<(&str, Vec<(safex_xai::SaliencyMap, safex_scenarios::Region)>)> = Vec::new();
    let occ: Vec<_> = subjects
        .iter()
        .map(|s| {
            (
                occlusion_saliency(&mut engine, &s.input, s.label, &OcclusionConfig::default())
                    .expect("occ"),
                s.salient.expect("filtered"),
            )
        })
        .collect();
    rows.push(("occlusion", occ));
    let grad: Vec<_> = subjects
        .iter()
        .map(|s| {
            (
                gradient_saliency(&mut engine, &s.input, s.label, 0.05).expect("grad"),
                s.salient.expect("filtered"),
            )
        })
        .collect();
    rows.push(("gradient", grad));
    let ig: Vec<_> = subjects
        .iter()
        .map(|s| {
            (
                integrated_gradient_saliency(&mut engine, &s.input, s.label, 0.0, 4, 0.05)
                    .expect("ig"),
                s.salient.expect("filtered"),
            )
        })
        .collect();
    rows.push(("integrated-gradients", ig));
    let mut rng = DetRng::new(13);
    let rise: Vec<_> = subjects
        .iter()
        .map(|s| {
            (
                rise_saliency(&mut engine, &s.input, s.label, 500, 0.5, &mut rng).expect("rise"),
                s.salient.expect("filtered"),
            )
        })
        .collect();
    rows.push(("rise", rise));
    for (name, pairs) in rows {
        let r = fidelity::evaluate_batch(&pairs).expect("evaluate");
        println!(
            "{:<22} {:>13.0}% {:>8.2}",
            name,
            r.pointing_game * 100.0,
            r.mean_iou
        );
    }
}

fn bench(c: &mut Criterion) {
    ablate_patch_size();
    ablate_block_size();
    ablate_target_fpr();
    ablate_explainer_family();

    // Time the two new explainers for the cost comparison.
    let (_, test, model_a, _) = workload();
    let mut engine = Engine::new(model_a.clone());
    let sample = test
        .samples()
        .iter()
        .find(|s| s.salient.is_some())
        .expect("object")
        .clone();
    let mut group = c.benchmark_group("a1_explainer_cost");
    group.sample_size(10);
    group.bench_function("integrated_gradients_4steps", |b| {
        b.iter(|| {
            std::hint::black_box(
                integrated_gradient_saliency(
                    &mut engine,
                    &sample.input,
                    sample.label,
                    0.0,
                    4,
                    0.05,
                )
                .expect("ig"),
            )
        })
    });
    group.bench_function("rise_500masks", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            std::hint::black_box(
                rise_saliency(&mut engine, &sample.input, sample.label, 500, 0.5, &mut rng)
                    .expect("rise"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
