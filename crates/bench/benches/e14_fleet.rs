//! Experiment E14: fleet serving — multi-model routing, admission
//! fairness, and the verified-result cache.
//!
//! Three questions, in certification order:
//!
//! 1. **Fail-operational fleet** — when one of three independently
//!    hardened members takes a persistent weight strike mid-traffic,
//!    does *that member alone* walk Nominal → Degraded → SafeStop while
//!    the fleet keeps every high-criticality answer (in-flight work
//!    failing over to healthy peers)?
//! 2. **Cache economics** — what fraction of a repeating input stream is
//!    answered from the verified-result cache, with every hit on the
//!    evidence chain?
//! 3. **Fairness** — under a low-tier flood, how much best-effort work
//!    do aging + reserved slots recover versus strict tier order, and
//!    what does it cost the high-tier p99?
//!
//! Besides criterion timings, this bench appends `e14_fleet/stats/*`
//! JSON lines (cache hit-rate, per-model time-in-state, fairness
//! spread) to `SAFEX_BENCH_JSON` for `BENCH_pr6.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_core::health::{HealthConfig, HealthState};
use safex_nn::{HardenConfig, HardenedEngine};
use safex_serve::{
    Arrival, ArrivalTrace, BatchPolicy, CacheConfig, FairnessPolicy, Fleet, ModelId, Outcome,
    PoolBackend, Request, Server, ServerConfig, Tier, TrafficConfig,
};
use safex_tensor::DetRng;

/// A mostly-distinct input stream: each base test sample plus small
/// deterministic jitter, 400 variants total. The tail of a 600-request
/// trace revisits them, so the cache gets real hits without starving the
/// backends of fresh work.
fn many_inputs() -> Vec<Vec<f32>> {
    let (_, test, _, _) = workload();
    let base: Vec<Vec<f32>> = test.samples().iter().map(|s| s.input.clone()).collect();
    let mut rng = DetRng::new(0xE14);
    (0..400)
        .map(|i| {
            base[i % base.len()]
                .iter()
                .map(|x| x + (rng.next_f32() - 0.5) * 0.01)
                .collect()
        })
        .collect()
}

fn hardened(stream: &[Vec<f32>]) -> HardenedEngine {
    let (_, _, model, _) = workload();
    let mut engine = HardenedEngine::new(model.clone(), HardenConfig::default()).expect("harden");
    engine.calibrate(stream).expect("calibrate");
    engine
}

fn three_member_fleet(engine: &HardenedEngine, workers: usize) -> Fleet<PoolBackend> {
    let mut builder = Fleet::builder();
    for name in ["alpha", "beta", "gamma"] {
        builder = builder.register(name, PoolBackend::new(engine, workers).expect("pool"));
    }
    builder.build().expect("fleet")
}

fn fleet_config() -> ServerConfig {
    ServerConfig::default()
        .with_health(HealthConfig {
            window: 16,
            degrade_events: 2,
            stop_events: 8,
            recover_after: 32,
            resume_after: 0,
            warn_budget: 3,
        })
        .with_cache(CacheConfig::enabled(512))
}

/// Appends one `{"id":..., "value":...}` stat line next to the criterion
/// timing lines, so `scripts/bench.sh` collects experiment numbers and
/// timings in the same artefact.
fn emit_stat(id: &str, value: f64) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("SAFEX_BENCH_JSON") {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = writeln!(file, "{{\"id\":\"{id}\",\"value\":{value}}}");
            }
            Err(e) => eprintln!("warning: could not append to {path:?}: {e}"),
        }
    }
}

fn print_tables() {
    let stream = many_inputs();
    let engine = hardened(&stream);

    // ---- 1+2. Struck member, healthy fleet, warm cache. ------------------
    println!("\n=== E14: 3-member fleet, persistent weight strike on beta at request 200 ===");
    let trace = TrafficConfig {
        seed: 0xE14,
        requests: 600,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&stream)
    .expect("trace");
    let mut server = Server::new(fleet_config(), three_member_fleet(&engine, 2)).expect("server");
    let report = server
        .run_trace_with(
            &trace,
            |request: &Request, fleet: &mut Fleet<PoolBackend>| {
                if request.id == 200 {
                    fleet
                        .backend_mut(ModelId::new(1))
                        .expect("member")
                        .strike_weights(0xDEAD_BEEF, 1, 2)
                        .expect("strike");
                }
            },
        )
        .expect("run");

    for t in &report.transitions {
        println!(
            "  {} {} -> {} at tick {} (after request {})",
            t.model, t.from, t.to, t.at_tick, t.after_request
        );
    }
    println!(
        "  {:<8} {:<10} {:>9} {:>9} {:>8} {:>8} {:>7} {:>9}",
        "member", "final", "nominal", "degraded", "stopped", "batches", "items", "completed"
    );
    for m in &report.models {
        let usage = &report.snapshot.models[m.model.index()];
        println!(
            "  {:<8} {:<10} {:>9} {:>9} {:>8} {:>8} {:>7} {:>9}",
            m.name,
            m.final_state,
            m.time_nominal,
            m.time_degraded,
            m.time_stopped,
            usage.batches,
            usage.items,
            usage.completed,
        );
        for (state, ticks) in [
            ("nominal", m.time_nominal),
            ("degraded", m.time_degraded),
            ("stopped", m.time_stopped),
        ] {
            emit_stat(
                &format!("e14_fleet/stats/time_in_state/{}_{state}", m.name),
                ticks as f64,
            );
        }
    }
    let s = &report.snapshot;
    let hit_rate = s.cache_hit_rate();
    println!(
        "  cache: {} lookups, {} hits ({:.1}% hit-rate), all on the evidence chain",
        s.cache_lookups,
        s.cache_hits,
        hit_rate * 100.0
    );
    emit_stat("e14_fleet/stats/cache_hit_rate", hit_rate);

    // The certification claims, re-checked on the recorded numbers.
    let walk: Vec<_> = report
        .transitions
        .iter()
        .map(|t| (t.model, t.from, t.to))
        .collect();
    let beta = ModelId::new(1);
    assert_eq!(
        walk,
        vec![
            (beta, HealthState::Nominal, HealthState::Degraded),
            (beta, HealthState::Degraded, HealthState::SafeStop),
        ],
        "only the struck member may move: {walk:?}"
    );
    assert_eq!(report.responses.len(), trace.len(), "no silent drops");
    for r in &report.responses {
        if r.tier == Tier::High {
            assert!(
                matches!(r.outcome, Outcome::Completed { .. }),
                "high-criticality request {} not served: {:?}",
                r.id,
                r.outcome
            );
        }
    }
    assert!(s.cache_hits > 0, "the repeating tail must hit the cache");
    assert_eq!(
        server
            .evidence()
            .records_of_kind(safex_trace::RecordKind::CacheHit)
            .len() as u64,
        s.cache_hits,
        "every cache hit must be on the evidence chain"
    );
    assert!(server.evidence().verify().is_ok());

    // ---- 3. Fairness: low-tier flood, aging+reserved vs strict. ----------
    println!("\n=== E14b: low-tier flood, fairness aging+reserved vs strict tier order ===");
    let mut arrivals = Vec::new();
    let mut id = 0u64;
    for at in (0..1600u64).step_by(2) {
        arrivals.push(Arrival {
            at: at + 1,
            request: Request::new(
                id,
                stream[id as usize % stream.len()].clone(),
                Tier::Low,
                at + 301,
            ),
        });
        id += 1;
        if at % 8 == 0 {
            arrivals.push(Arrival {
                at: at + 1,
                request: Request::new(
                    id,
                    stream[id as usize % stream.len()].clone(),
                    Tier::High,
                    at + 301,
                ),
            });
            id += 1;
        }
    }
    let flood = ArrivalTrace::from_arrivals(arrivals).expect("flood");
    let flood_config = |fairness: FairnessPolicy| {
        ServerConfig::default()
            .with_policy(
                BatchPolicy::default()
                    .with_max_batch(4)
                    .with_queue_cap(64)
                    .with_max_linger(16),
            )
            .with_fairness(fairness)
    };
    println!(
        "  {:<8} {:>9} {:>9} {:>9} {:>9}",
        "mode", "low_done", "low_shed", "high_p99", "high_done"
    );
    let mut low_done = [0u64; 2];
    let mut high_p99 = [0u64; 2];
    for (slot, (mode, fairness)) in [
        ("fair", FairnessPolicy::default()),
        ("strict", FairnessPolicy::strict()),
    ]
    .into_iter()
    .enumerate()
    {
        let mut builder = Fleet::builder();
        for name in ["alpha", "beta"] {
            builder = builder.register(name, PoolBackend::new(&engine, 1).expect("pool"));
        }
        let fleet = builder.build().expect("fleet");
        let mut server = Server::new(flood_config(fairness), fleet).expect("server");
        let report = server.run_trace(&flood).expect("run");
        let s = &report.snapshot;
        low_done[slot] = s.completed[Tier::Low.index()];
        high_p99[slot] = s.tier_latency[Tier::High.index()].p99;
        println!(
            "  {:<8} {:>9} {:>9} {:>9} {:>9}",
            mode,
            s.completed[Tier::Low.index()],
            s.total_shed() + s.timeout.iter().sum::<u64>(),
            s.tier_latency[Tier::High.index()].p99,
            s.completed[Tier::High.index()],
        );
        assert_eq!(
            s.timeout[Tier::High.index()] + s.safe_stop[Tier::High.index()],
            0,
            "{mode}: the flood must never cost high-tier answers"
        );
        emit_stat(
            &format!("e14_fleet/stats/fairness/low_completed_{mode}"),
            low_done[slot] as f64,
        );
        emit_stat(
            &format!("e14_fleet/stats/fairness/high_p99_{mode}"),
            high_p99[slot] as f64,
        );
    }
    assert!(
        low_done[0] > low_done[1],
        "aging + reserved slots must recover best-effort work over strict order"
    );
    let spread = low_done[0] - low_done[1];
    println!(
        "  fairness spread: +{spread} low-tier completions for {} -> {} ticks high-tier p99",
        high_p99[1], high_p99[0]
    );
    emit_stat(
        "e14_fleet/stats/fairness/spread_low_completions",
        spread as f64,
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_tables();
    let stream = many_inputs();
    let engine = hardened(&stream);
    let trace = TrafficConfig {
        seed: 0xE14,
        requests: 300,
        mean_interarrival: 3.0,
        deadline: 400,
        ..TrafficConfig::default()
    }
    .synthesize(&stream)
    .expect("trace");

    let mut group = c.benchmark_group("e14_fleet");
    group.sample_size(10);
    // Cold path: routing + batching + per-member ladders, no cache.
    let mut server =
        Server::new(ServerConfig::default(), three_member_fleet(&engine, 2)).expect("server");
    group.bench_function("fleet_replay_300_cache_off", |b| {
        b.iter(|| std::hint::black_box(server.run_trace(&trace).expect("run").responses.len()))
    });
    // Warm path: the same trace answered mostly from the verified cache.
    let mut server = Server::new(fleet_config(), three_member_fleet(&engine, 2)).expect("server");
    server.run_trace(&trace).expect("warm");
    group.bench_function("fleet_replay_300_cache_warm", |b| {
        b.iter(|| std::hint::black_box(server.run_trace(&trace).expect("run").responses.len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
