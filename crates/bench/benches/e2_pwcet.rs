//! Experiment E2: pWCET curves per platform configuration + analysis cost.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_platform::platform::{Platform, PlatformConfig};
use safex_platform::TraceProgram;
use safex_tensor::DetRng;
use safex_timing::mbpta::{analyze, MbptaConfig};

fn program() -> TraceProgram {
    let (_, _, model_a, _) = workload();
    TraceProgram::from_model(model_a, 256)
}

fn print_table(program: &TraceProgram) -> Vec<f64> {
    println!("\n=== E2: pWCET per platform configuration ===");
    println!(
        "{:<36} {:>10} {:>10} {:>6} {:>12}",
        "platform", "mean", "HWM", "iid", "pWCET@1e-12"
    );
    let configs: Vec<(&str, PlatformConfig)> = vec![
        ("deterministic-lru", PlatformConfig::deterministic()),
        ("time-randomized", PlatformConfig::time_randomized()),
        (
            "randomized+3corunners",
            PlatformConfig::time_randomized().with_co_runners(3),
        ),
        (
            "randomized+3corunners-partitioned",
            PlatformConfig::time_randomized()
                .with_co_runners(3)
                .partitioned(),
        ),
    ];
    let mut samples_for_bench = Vec::new();
    for (name, config) in configs {
        let platform = Platform::new(config).expect("platform");
        let samples = platform
            .measure(program, 400, &mut DetRng::new(12))
            .expect("measure");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let hwm = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        match analyze(&samples, &MbptaConfig::default()) {
            Ok(result) => {
                println!(
                    "{:<36} {:>10.0} {:>10.0} {:>6} {:>12.0}",
                    name,
                    mean,
                    hwm,
                    if result.admissible() { "pass" } else { "FAIL" },
                    result.pwcet.bound_at(1e-12).expect("bound")
                );
                if samples_for_bench.is_empty() {
                    samples_for_bench = samples;
                }
            }
            Err(_) => {
                println!(
                    "{:<36} {:>10.0} {:>10.0} {:>6} {:>12}",
                    name, mean, hwm, "n/a", "=HWM (no variance)"
                );
            }
        }
    }
    println!();
    samples_for_bench
}

fn bench(c: &mut Criterion) {
    let program = program();
    let samples = print_table(&program);
    let platform = Platform::new(PlatformConfig::time_randomized()).expect("platform");

    let mut group = c.benchmark_group("e2_timing");
    group.sample_size(20);
    group.bench_function("platform_single_run", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| std::hint::black_box(platform.run(&program, &mut rng).expect("run").cycles))
    });
    group.bench_function("mbpta_analyze_400_samples", |b| {
        b.iter(|| std::hint::black_box(analyze(&samples, &MbptaConfig::default()).expect("ok")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
