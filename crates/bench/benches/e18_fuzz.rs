//! Experiment E18: structure-aware fuzzing & differential oracles.
//!
//! Two questions, in CI-economics order:
//!
//! 1. **Smoke-tier cost** — what does the bounded `--fuzz-smoke` gate
//!    cost end to end (wall time for the full default budget across all
//!    surfaces), and how is that budget split between the byte decoders,
//!    the state machines, and the differential oracles?
//! 2. **Per-case economics** — how expensive is one fuzzing case on each
//!    surface: a typed mutation plus a fail-closed decode probe vs a
//!    whole admission-queue command sequence checked against the
//!    reference model?
//!
//! Besides criterion timings, this bench runs one full-budget smoke
//! (scaled down under `SAFEX_BENCH_QUICK`) and appends
//! `e18_fuzz/stats/*` JSON lines — wall time, total and per-surface
//! case counts, finding count — to `SAFEX_BENCH_JSON` for
//! `BENCH_pr10.json`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safex_fuzz::{
    fuzz_queue, gen, mutate, probe_model, probe_snapshot, run_smoke, ContainerLayout, SmokeConfig,
};
use safex_tensor::DetRng;

/// Appends one `{"id":..., "value":...}` stat line next to the criterion
/// timing lines, so `scripts/bench.sh` collects experiment numbers and
/// timings in the same artefact.
fn emit_stat(id: &str, value: f64) {
    use std::io::Write;
    if let Some(path) = std::env::var_os("SAFEX_BENCH_JSON") {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = writeln!(file, "{{\"id\":\"{id}\",\"value\":{value}}}");
            }
            Err(e) => eprintln!("warning: could not append to {path:?}: {e}"),
        }
    }
}

fn quick() -> bool {
    std::env::var_os("SAFEX_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

const FRAMED: ContainerLayout = ContainerLayout {
    payload_start: 16,
    length_field: Some(8),
    crc_trailer: true,
};

/// One full smoke run at the budget the `--fuzz-smoke` gate uses (a
/// proportionally scaled-down budget in quick mode), timed wall to wall.
fn report_smoke() {
    let config = if quick() {
        SmokeConfig::default().scaled_to(1_500)
    } else {
        SmokeConfig::default()
    };
    let started = Instant::now();
    let report = run_smoke(&config, true);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    println!("\n=== E18: fuzz smoke — cases per surface, one full budget ===");
    for (surface, cases) in &report.cases {
        println!("  {surface}: {cases} cases");
        emit_stat(&format!("e18_fuzz/stats/cases/{surface}"), *cases as f64);
    }
    println!(
        "  total: {} cases, {} findings, {wall_ms:.1} ms wall",
        report.total_cases(),
        report.findings.len()
    );
    emit_stat("e18_fuzz/stats/smoke_wall_ms", wall_ms);
    emit_stat("e18_fuzz/stats/smoke_cases", report.total_cases() as f64);
    emit_stat(
        "e18_fuzz/stats/smoke_findings",
        report.findings.len() as f64,
    );
    assert!(
        report.findings.is_empty(),
        "fuzz smoke found regressions during bench: {:?}",
        report.findings
    );
    println!();
}

fn bench(c: &mut Criterion) {
    // The probes intentionally trip panics to classify them; their
    // backtraces would drown the timing output.
    std::panic::set_hook(Box::new(|_| {}));
    report_smoke();

    // Per-case economics on the byte surfaces: one typed mutation plus
    // one fail-closed probe, over the grammar-aware base pool.
    let snapshot_base = gen::snapshot_bytes(0);
    let snapshot_other = gen::snapshot_bytes(1);
    let model_base = gen::model_bytes(0);
    let model_other = gen::model_bytes(3);

    let mut seed = 0u64;
    c.bench_function("e18_fuzz/mutate_probe_snapshot", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut rng = DetRng::new(seed);
            let (mutated, _) = mutate(&snapshot_base, &snapshot_other, FRAMED, &mut rng);
            black_box(probe_snapshot(&mutated))
        })
    });

    let mut seed = 0u64;
    c.bench_function("e18_fuzz/mutate_probe_model", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut rng = DetRng::new(seed);
            let (mutated, _) = mutate(
                &model_base,
                &model_other,
                ContainerLayout::opaque(),
                &mut rng,
            );
            black_box(probe_model(&mutated))
        })
    });

    // One whole admission-queue command sequence, mirrored against the
    // reference model after every operation.
    let mut seed = 0u64;
    c.bench_function("e18_fuzz/queue_sequence", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(fuzz_queue(seed, 1))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
