//! Experiment E11: fault-injection campaigns over the hardened runtime.
//!
//! Sweeps the SEU-style fault classes through a hardened pipeline and
//! reports IEC 61508-style diagnostic coverage, silent-data-corruption
//! rate, detection latency, and time spent degraded — then times the
//! per-decision overhead the hardening layer costs.

use criterion::{criterion_group, criterion_main, Criterion};
use safex_bench::workload;
use safex_core::campaign::{self, CampaignConfig, CampaignPattern, FaultClass, InputSupervision};
use safex_nn::{CrcStrategy, DenseKernel, Engine, HardenConfig, HardenedEngine};

fn inputs() -> Vec<Vec<f32>> {
    let (_, test, _, _) = workload();
    test.samples().iter().map(|s| s.input.clone()).collect()
}

fn print_table() {
    let (_, _, model, _) = workload();
    let stream = inputs();
    let config = CampaignConfig {
        seed: 0xE11,
        decisions: 400,
        classes: FaultClass::all().to_vec(),
        rates: vec![0.02, 0.10],
        patterns: vec![CampaignPattern::MonitorActuator],
        ..CampaignConfig::default()
    };
    let report = campaign::run(&config, model, &stream).expect("campaign");
    println!("\n=== E11: fault campaign (400 decisions/cell, monitor_actuator) ===");
    println!(
        "{:<22} {:>6} {:>8} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "fault class", "rate", "faulted", "coverage", "SDC", "latency", "degraded", "stopped"
    );
    for cell in &report.cells {
        println!(
            "{:<22} {:>6.2} {:>8} {:>8.1}% {:>7.2}% {:>8} {:>9} {:>9}",
            cell.class.tag(),
            cell.rate,
            cell.faulted,
            cell.diagnostic_coverage() * 100.0,
            cell.sdc_rate() * 100.0,
            cell.detection_latency.map_or("-".into(), |l| l.to_string()),
            cell.time_degraded,
            cell.time_stopped,
        );
    }
    println!(
        "worst coverage {:.1}%, worst SDC {:.2}%",
        report.worst_coverage() * 100.0,
        report.worst_sdc() * 100.0
    );

    // Re-measure the in-range input-fault cells with the pillar-1 ODD
    // envelope screening every (faulted) input — the gap E11 originally
    // recorded came almost entirely from input faults the engine-level
    // diagnostics cannot see.
    let supervised_config = CampaignConfig {
        supervision: Some(InputSupervision::default()),
        classes: vec![
            FaultClass::InputNoise,
            FaultClass::InputStuck,
            FaultClass::InputDropout,
        ],
        ..config.clone()
    };
    let supervised = campaign::run(&supervised_config, model, &stream).expect("campaign");
    println!("\n=== E11b: input faults with ODD-envelope supervision ===");
    println!(
        "{:<22} {:>6} {:>8} {:>14} {:>14} {:>9} {:>9}",
        "fault class", "rate", "faulted", "coverage", "SDC", "latency", "alarms"
    );
    for cell in &supervised.cells {
        let baseline = report
            .cell(CampaignPattern::MonitorActuator, cell.class, cell.rate)
            .expect("baseline cell");
        println!(
            "{:<22} {:>6.2} {:>8} {:>5.1}% ({:>5.1}%) {:>6.2}% ({:>4.2}%) {:>9} {:>9}",
            cell.class.tag(),
            cell.rate,
            cell.faulted,
            cell.diagnostic_coverage() * 100.0,
            baseline.diagnostic_coverage() * 100.0,
            cell.sdc_rate() * 100.0,
            baseline.sdc_rate() * 100.0,
            cell.detection_latency.map_or("-".into(), |l| l.to_string()),
            cell.false_alarms,
        );
    }
    println!("(parenthesised figures: same cell without supervision)");

    // Diverse 2oo3: independent SEU streams strike both the f32 and the
    // Q16.16 hardened replicas; the voter masks single-channel upsets.
    let diverse_config = CampaignConfig {
        patterns: vec![CampaignPattern::DiverseTwoOutOfThree],
        classes: vec![FaultClass::WeightBitFlip, FaultClass::WeightMultiBitFlip],
        ..config.clone()
    };
    let diverse = campaign::run(&diverse_config, model, &stream).expect("campaign");
    println!("\n=== E11c: diverse 2oo3 (f32 + Q16.16 hardened replicas) ===");
    for cell in &diverse.cells {
        println!(
            "{:<22} rate {:>4.2}: faulted {:>3}, coverage {:>5.1}%, SDC {:>5.2}%, silent {}",
            cell.class.tag(),
            cell.rate,
            cell.faulted,
            cell.diagnostic_coverage() * 100.0,
            cell.sdc_rate() * 100.0,
            cell.silent,
        );
    }

    // Parallel campaign: byte-identical reports, wall-clock comparison.
    let par_config = CampaignConfig {
        decisions: 100,
        ..config
    };
    let t0 = std::time::Instant::now();
    let sequential = campaign::run(&par_config, model, &stream).expect("campaign");
    let seq_elapsed = t0.elapsed();
    println!("\ncampaign workers sweep (12 cells, 100 decisions/cell):");
    println!(
        "  workers=1  {:>10.1} ms (reference)",
        seq_elapsed.as_secs_f64() * 1e3
    );
    for workers in [2usize, 4, 8] {
        let cfg = CampaignConfig {
            workers,
            ..par_config.clone()
        };
        let t0 = std::time::Instant::now();
        let parallel = campaign::run(&cfg, model, &stream).expect("campaign");
        let elapsed = t0.elapsed();
        assert_eq!(parallel, sequential, "parallel campaign diverged");
        println!(
            "  workers={workers}  {:>10.1} ms (speedup {:.2}x, report byte-identical)",
            elapsed.as_secs_f64() * 1e3,
            seq_elapsed.as_secs_f64() / elapsed.as_secs_f64(),
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let (_, _, model, _) = workload();
    let stream = inputs();

    // Per-decision cost of the hardening layer, by detection setting.
    let mut group = c.benchmark_group("e11_hardened_inference");
    group.sample_size(40);
    let mut plain = Engine::new(model.clone());
    group.bench_function("plain_engine", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &stream[i % stream.len()];
            i += 1;
            std::hint::black_box(plain.classify(x).expect("classify"))
        })
    });
    for (name, cadence, strategy) in [
        ("crc_every_decision", 1u64, CrcStrategy::Full),
        ("crc_cadence_8", 8, CrcStrategy::Full),
        ("crc_rotating_every_decision", 1, CrcStrategy::Rotating),
        ("crc_rotating_cadence_8", 8, CrcStrategy::Rotating),
        ("guards_only", 0, CrcStrategy::Full),
    ] {
        let mut engine = HardenedEngine::new(
            model.clone(),
            HardenConfig {
                crc_cadence: cadence,
                crc_strategy: strategy,
                ..HardenConfig::default()
            },
        )
        .expect("harden");
        engine.calibrate(&stream).expect("calibrate");
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &stream[i % stream.len()];
                i += 1;
                std::hint::black_box(engine.classify(x).expect("classify"))
            })
        });
    }
    // The opt-in autovectorised dense kernel under full hardening: kernel
    // tuning and CRC strategy compose.
    let mut rotating_chunked = HardenedEngine::new(
        model.clone(),
        HardenConfig {
            crc_cadence: 1,
            crc_strategy: CrcStrategy::Rotating,
            ..HardenConfig::default()
        },
    )
    .expect("harden");
    rotating_chunked.set_kernel(DenseKernel::Chunked);
    rotating_chunked.calibrate(&stream).expect("calibrate");
    group.bench_function("crc_rotating_chunked_kernel", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &stream[i % stream.len()];
            i += 1;
            std::hint::black_box(rotating_chunked.classify(x).expect("classify"))
        })
    });
    group.finish();

    // One full weight-flip campaign cell, end to end.
    let mut group = c.benchmark_group("e11_campaign_cell");
    group.sample_size(10);
    group.bench_function("weight_bit_flip_100_decisions", |b| {
        let config = CampaignConfig {
            seed: 0xE11,
            decisions: 100,
            classes: vec![FaultClass::WeightBitFlip],
            rates: vec![0.05],
            patterns: vec![CampaignPattern::MonitorActuator],
            ..CampaignConfig::default()
        };
        b.iter(|| std::hint::black_box(campaign::run(&config, model, &stream).expect("campaign")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
