//! Error type for the safety-pattern crate.

use std::error::Error;
use std::fmt;

use safex_nn::NnError;
use safex_supervision::SupervisionError;

/// Errors produced by channels and safety patterns.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PatternError {
    /// A channel's underlying inference failed.
    Nn(NnError),
    /// A supervisor/monitor failed.
    Supervision(SupervisionError),
    /// A pattern was constructed with invalid parameters.
    BadConfig(String),
    /// A channel produced structurally invalid output (NaN confidence,
    /// out-of-range class); the channel is considered faulted.
    ChannelFault(String),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Nn(e) => write!(f, "channel inference error: {e}"),
            PatternError::Supervision(e) => write!(f, "monitor error: {e}"),
            PatternError::BadConfig(msg) => write!(f, "bad pattern config: {msg}"),
            PatternError::ChannelFault(msg) => write!(f, "channel fault: {msg}"),
        }
    }
}

impl Error for PatternError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PatternError::Nn(e) => Some(e),
            PatternError::Supervision(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for PatternError {
    fn from(e: NnError) -> Self {
        PatternError::Nn(e)
    }
}

impl From<SupervisionError> for PatternError {
    fn from(e: SupervisionError) -> Self {
        PatternError::Supervision(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PatternError::BadConfig("quorum".into());
        assert!(e.to_string().contains("quorum"));
        assert!(e.source().is_none());
        let e = PatternError::from(NnError::EmptyModel);
        assert!(e.source().is_some());
    }
}
