#![forbid(unsafe_code)]
//! # safex-patterns
//!
//! Safety design patterns for DL inference: pillar 2 of the SAFEXPLAIN
//! paper — *"alternative and increasingly sophisticated design safety
//! patterns for DL with varying criticality and fault tolerance
//! requirements"*.
//!
//! The crate provides a ladder of architectures, each trading more
//! redundancy/latency for more hazard coverage:
//!
//! | pattern | mechanism | typical criticality |
//! |---------|-----------|---------------------|
//! | [`pattern::Bare`] | DL channel alone | QM / SIL 0 (baseline) |
//! | [`pattern::MonitorActuator`] | output-envelope monitor + safe state | SIL 1 |
//! | [`pattern::Simplex`] | OOD supervisor gates DL; fallback channel on reject | SIL 2 |
//! | [`pattern::SafetyBag`] | independent rule-based checker can veto any action | SIL 3 |
//! | [`pattern::RecoveryBlock`] | acceptance test + diverse alternate channel | SIL 3 |
//! | [`pattern::TwoOutOfThree`] | 3 diverse channels, majority vote | SIL 3-4 |
//! | [`pattern::Cascade`] | degraded-mode ladder with hysteresis | system level |
//!
//! All patterns implement [`pattern::SafetyPattern`] and produce a
//! [`decision::Decision`] that records the action, the reason for any
//! fallback, and the channel-evaluation cost (consumed by experiments E3
//! and E6). [`fault::FaultyChannel`] injects controlled channel faults for
//! coverage measurements.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_patterns::channel::{Channel, RuleChannel};
//! use safex_patterns::pattern::{SafetyPattern, TwoOutOfThree};
//!
//! // Three diverse "channels" (here: trivial rules for illustration).
//! let c1 = RuleChannel::new("a", |x: &[f32]| usize::from(x[0] > 0.5));
//! let c2 = RuleChannel::new("b", |x: &[f32]| usize::from(x[0] > 0.4));
//! let c3 = RuleChannel::new("c", |x: &[f32]| usize::from(x[0] > 0.6));
//! let mut voter = TwoOutOfThree::new(c1, c2, c3)?;
//! let decision = voter.decide(&[0.55])?;
//! assert!(decision.action.is_proceed());
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod criticality;
pub mod decision;
pub mod error;
pub mod fault;
pub mod pattern;

pub use criticality::Sil;
pub use decision::{Action, Decision, FallbackReason};
pub use error::PatternError;
pub use pattern::ParallelPolicy;
