//! Decision channels: the building blocks patterns compose.

use std::sync::{Arc, Mutex};

use safex_nn::{Engine, HardenedEngine, HardenedQEngine, QEngine};
use safex_tensor::fixed::Q16_16;

use crate::error::PatternError;

/// One channel's output for one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelVerdict {
    /// Predicted class.
    pub class: usize,
    /// Confidence/score in the prediction (softmax probability for
    /// classifier channels; 1.0 for rule channels).
    pub confidence: f32,
}

/// A decision-producing component a safety pattern can compose.
///
/// Channels validate their own output: a NaN confidence or an
/// out-of-range class is a *channel fault* ([`PatternError::ChannelFault`])
/// that patterns translate into fallback behaviour rather than propagate
/// as a crash.
///
/// `Send` is a supertrait so redundant channels can be evaluated on
/// scoped worker threads (see
/// [`ParallelPolicy`](crate::pattern::ParallelPolicy)); channels hold
/// their own engines and buffers, so they have no shared mutable state.
pub trait Channel: Send {
    /// Stable channel name for evidence records.
    fn name(&self) -> &str;

    /// Produces a verdict for one input.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::ChannelFault`] when the channel detects its
    /// own output is invalid, or other variants for infrastructure
    /// failures.
    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError>;
}

/// A DL channel wrapping a float inference engine.
#[derive(Debug)]
pub struct ModelChannel {
    name: String,
    engine: Engine,
}

impl ModelChannel {
    /// Wraps an engine as a channel.
    pub fn new(name: impl Into<String>, engine: Engine) -> Self {
        ModelChannel {
            name: name.into(),
            engine,
        }
    }

    /// Immutable access to the wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the wrapped engine (e.g. for fault injection on
    /// weights).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

impl Channel for ModelChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        let out = self.engine.infer(input)?;
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, &v) in out.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        if !best.1.is_finite() {
            return Err(PatternError::ChannelFault(format!(
                "channel {} produced non-finite confidence",
                self.name
            )));
        }
        Ok(ChannelVerdict {
            class: best.0,
            confidence: best.1,
        })
    }
}

/// A DL channel wrapping a [`HardenedEngine`]: inference plus runtime
/// fault detection (weight checksums, activation guards) and, in campaign
/// use, fault injection via an attached
/// [`FaultPlan`](safex_nn::FaultPlan).
///
/// The engine sits behind an `Arc<Mutex<_>>` so the campaign driver that
/// built the channel can keep a [`HardenedChannel::handle`] — e.g. to
/// flip weights mid-run or rebaseline checksums — while the pattern owns
/// the channel. Health events flow through whatever
/// [`HealthSink`](safex_nn::HealthSink) was attached to the engine before
/// wrapping.
#[derive(Debug)]
pub struct HardenedChannel {
    name: String,
    engine: Arc<Mutex<HardenedEngine>>,
}

impl HardenedChannel {
    /// Wraps a hardened engine as a channel.
    pub fn new(name: impl Into<String>, engine: HardenedEngine) -> Self {
        HardenedChannel {
            name: name.into(),
            engine: Arc::new(Mutex::new(engine)),
        }
    }

    /// A shared handle to the wrapped engine (for mid-run weight
    /// injection, rebaselining, or reading counters).
    pub fn handle(&self) -> Arc<Mutex<HardenedEngine>> {
        Arc::clone(&self.engine)
    }

    /// Worst-case decisions between a corrupting weight write and its
    /// detection under the wrapped engine's CRC configuration; `None`
    /// when checksum verification is disabled. Mirrors
    /// [`HardenedEngine::staleness_bound`].
    pub fn staleness_bound(&self) -> Option<u64> {
        self.engine
            .lock()
            .expect("hardened engine poisoned")
            .staleness_bound()
    }

    /// ECC sidecar memory as a fraction of the protected parameter bits;
    /// `None` when repair is disabled. Mirrors
    /// [`HardenedEngine::sidecar_overhead`].
    pub fn sidecar_overhead(&self) -> Option<f64> {
        self.engine
            .lock()
            .expect("hardened engine poisoned")
            .sidecar_overhead()
    }
}

impl Channel for HardenedChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        let c = self
            .engine
            .lock()
            .expect("hardened engine poisoned")
            .classify(input)?;
        if !c.confidence.is_finite() {
            return Err(PatternError::ChannelFault(format!(
                "channel {} produced non-finite confidence",
                self.name
            )));
        }
        Ok(ChannelVerdict {
            class: c.class,
            confidence: c.confidence,
        })
    }
}

/// A DL channel wrapping the quantised (Q16.16) inference engine —
/// a *diverse implementation* of the same model, which is exactly what
/// 2-out-of-3 patterns want as a second opinion.
#[derive(Debug)]
pub struct QuantChannel {
    name: String,
    engine: QEngine,
}

impl QuantChannel {
    /// Wraps a quantised engine as a channel.
    pub fn new(name: impl Into<String>, engine: QEngine) -> Self {
        QuantChannel {
            name: name.into(),
            engine,
        }
    }
}

impl Channel for QuantChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        let q: Vec<Q16_16> = input.iter().map(|&v| Q16_16::from_f32(v)).collect();
        let c = self.engine.classify(&q)?;
        Ok(ChannelVerdict {
            class: c.class,
            confidence: c.confidence,
        })
    }
}

/// A DL channel wrapping the *hardened* quantised engine: the diverse
/// second opinion of [`QuantChannel`] with its own armed diagnostics
/// (Q16.16 weight checksums and fixed-point range guards).
///
/// Pairing this with a [`HardenedChannel`] in a 2-out-of-3 pattern gives
/// diverse redundancy where *both* implementations can be struck by a
/// fault campaign and both raise typed health events — the configuration
/// the diverse-redundancy campaign cells
/// (`safex_core::campaign::CampaignPattern::DiverseTwoOutOfThree`)
/// deploy. Like [`HardenedChannel`], the engine sits behind an
/// `Arc<Mutex<_>>` so the campaign driver keeps a
/// [`HardenedQuantChannel::handle`] for mid-run weight strikes and
/// restores.
#[derive(Debug)]
pub struct HardenedQuantChannel {
    name: String,
    engine: Arc<Mutex<HardenedQEngine>>,
}

impl HardenedQuantChannel {
    /// Wraps a hardened quantised engine as a channel.
    pub fn new(name: impl Into<String>, engine: HardenedQEngine) -> Self {
        HardenedQuantChannel {
            name: name.into(),
            engine: Arc::new(Mutex::new(engine)),
        }
    }

    /// A shared handle to the wrapped engine (for mid-run weight
    /// injection, rebaselining, or reading counters).
    pub fn handle(&self) -> Arc<Mutex<HardenedQEngine>> {
        Arc::clone(&self.engine)
    }

    /// Worst-case decisions between a corrupting weight write and its
    /// detection under the wrapped engine's CRC configuration; `None`
    /// when checksum verification is disabled.
    pub fn staleness_bound(&self) -> Option<u64> {
        self.engine
            .lock()
            .expect("hardened quantised engine poisoned")
            .staleness_bound()
    }

    /// ECC sidecar memory as a fraction of the protected parameter bits;
    /// `None` when repair is disabled.
    pub fn sidecar_overhead(&self) -> Option<f64> {
        self.engine
            .lock()
            .expect("hardened quantised engine poisoned")
            .sidecar_overhead()
    }
}

impl Channel for HardenedQuantChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        let c = self
            .engine
            .lock()
            .expect("hardened quantised engine poisoned")
            .classify_f32(input)?;
        if !c.confidence.is_finite() {
            return Err(PatternError::ChannelFault(format!(
                "channel {} produced non-finite confidence",
                self.name
            )));
        }
        Ok(ChannelVerdict {
            class: c.class,
            confidence: c.confidence,
        })
    }
}

/// A deterministic rule-based channel (conservative heuristics, lookup
/// tables, classical CV) — the kind of independently-developed component
/// FUSA standards accept as a fallback or checker.
pub struct RuleChannel<F> {
    name: String,
    rule: F,
}

impl<F: FnMut(&[f32]) -> usize + Send> RuleChannel<F> {
    /// Creates a rule channel from a closure mapping input to class.
    pub fn new(name: impl Into<String>, rule: F) -> Self {
        RuleChannel {
            name: name.into(),
            rule,
        }
    }
}

impl<F> std::fmt::Debug for RuleChannel<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleChannel")
            .field("name", &self.name)
            .finish()
    }
}

impl<F: FnMut(&[f32]) -> usize + Send> Channel for RuleChannel<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        Ok(ChannelVerdict {
            class: (self.rule)(input),
            confidence: 1.0,
        })
    }
}

/// A channel that always returns a fixed class — the canonical "safe
/// action" fallback (e.g. *brake*, *stop*, *abort landing*).
#[derive(Debug, Clone)]
pub struct ConstantChannel {
    name: String,
    class: usize,
}

impl ConstantChannel {
    /// Creates a constant channel.
    pub fn new(name: impl Into<String>, class: usize) -> Self {
        ConstantChannel {
            name: name.into(),
            class,
        }
    }
}

impl Channel for ConstantChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, _input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        Ok(ChannelVerdict {
            class: self.class,
            confidence: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_nn::model::ModelBuilder;
    use safex_nn::QModel;
    use safex_tensor::{DetRng, Shape};

    fn engine(seed: u64) -> Engine {
        let mut rng = DetRng::new(seed);
        Engine::new(
            ModelBuilder::new(Shape::vector(3))
                .dense(4, &mut rng)
                .unwrap()
                .relu()
                .dense(2, &mut rng)
                .unwrap()
                .softmax()
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn model_channel_decides() {
        let mut ch = ModelChannel::new("primary", engine(1));
        let v = ch.decide(&[0.1, 0.2, 0.3]).unwrap();
        assert!(v.class < 2);
        assert!((0.0..=1.0).contains(&v.confidence));
        assert_eq!(ch.name(), "primary");
    }

    #[test]
    fn model_channel_propagates_input_errors() {
        let mut ch = ModelChannel::new("primary", engine(1));
        assert!(matches!(ch.decide(&[0.1]), Err(PatternError::Nn(_))));
    }

    #[test]
    fn quant_channel_agrees_with_float() {
        let e = engine(2);
        let model = e.model().clone();
        let mut fc = ModelChannel::new("float", e);
        let mut qc = QuantChannel::new("quant", QEngine::new(QModel::quantize(&model).unwrap()));
        for i in 0..10 {
            let x = [i as f32 * 0.1, 0.5 - i as f32 * 0.05, 0.2];
            let fv = fc.decide(&x).unwrap();
            let qv = qc.decide(&x).unwrap();
            assert_eq!(fv.class, qv.class, "diverse channels should agree on {x:?}");
        }
    }

    #[test]
    fn hardened_quant_channel_agrees_with_quant_and_flags_strikes() {
        let e = engine(4);
        let model = e.model().clone();
        let qmodel = QModel::quantize(&model).unwrap();
        let mut qc = QuantChannel::new("quant", QEngine::new(qmodel.clone()));
        let mut hq = HardenedQuantChannel::new(
            "hardened_q16",
            HardenedQEngine::new(qmodel, safex_nn::HardenConfig::default()).unwrap(),
        );
        assert_eq!(hq.name(), "hardened_q16");
        assert_eq!(hq.staleness_bound(), Some(1));
        for i in 0..10 {
            let x = [i as f32 * 0.1, 0.5 - i as f32 * 0.05, 0.2];
            let qv = qc.decide(&x).unwrap();
            let hv = hq.decide(&x).unwrap();
            assert_eq!(qv.class, hv.class, "hardening must not change verdicts");
            assert_eq!(qv.confidence, hv.confidence);
        }
        // A weight strike through the shared handle raises a health event
        // on the very next decision (CRC cadence 1).
        let handle = hq.handle();
        {
            let mut engine = handle.lock().unwrap();
            let mut injector = safex_nn::FaultInjector::new(0xC0FFEE);
            injector
                .flip_qweight_bits(engine.model_mut(), 1, 1)
                .unwrap();
        }
        hq.decide(&[0.1, 0.2, 0.3]).unwrap();
        let engine = handle.lock().unwrap();
        assert!(
            engine
                .last_events()
                .iter()
                .any(|e| e.kind() == "checksum_mismatch"),
            "strike through the handle should be caught by the CRC"
        );
    }

    #[test]
    fn rule_and_constant_channels() {
        let mut rule = RuleChannel::new("bright", |x: &[f32]| usize::from(x[0] > 0.5));
        assert_eq!(rule.decide(&[0.9]).unwrap().class, 1);
        assert_eq!(rule.decide(&[0.1]).unwrap().class, 0);
        let mut safe = ConstantChannel::new("brake", 3);
        assert_eq!(safe.decide(&[0.0]).unwrap().class, 3);
        assert_eq!(safe.decide(&[9.9]).unwrap().class, 3);
        assert!(format!("{rule:?}").contains("bright"));
    }

    #[test]
    fn nan_weights_surface_as_channel_fault() {
        let mut e = engine(3);
        // Poison the final dense layer so the softmax output goes NaN
        // (an earlier layer's NaN could be masked by ReLU).
        if let safex_nn::layer::Layer::Dense(d) = &mut e.model_mut().layers_mut()[2] {
            d.bias_mut()[0] = f32::NAN;
        }
        let mut ch = ModelChannel::new("poisoned", e);
        assert!(matches!(
            ch.decide(&[1.0, 1.0, 1.0]),
            Err(PatternError::ChannelFault(_))
        ));
    }
}
