//! Controlled channel-fault injection for coverage experiments.

use safex_tensor::DetRng;

use crate::channel::{Channel, ChannelVerdict};
use crate::error::PatternError;

/// The fault classes a [`FaultyChannel`] can inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability of a *silent wrong answer*: class replaced by a random
    /// different one, confidence kept high. The most dangerous fault.
    pub wrong_class: f64,
    /// Probability of a *stuck-at* fault: the channel repeats its previous
    /// answer regardless of input.
    pub stuck: f64,
    /// Probability of a *detectable crash*: the channel reports a fault.
    pub crash: f64,
    /// Probability of an *erratic confidence* fault: the class is kept but
    /// the confidence is jittered. Lets supervisor-detection experiments
    /// distinguish confidence faults from class faults.
    pub erratic: f64,
}

impl FaultModel {
    /// A model that never faults.
    pub fn none() -> Self {
        FaultModel {
            wrong_class: 0.0,
            stuck: 0.0,
            crash: 0.0,
            erratic: 0.0,
        }
    }

    /// Validates that probabilities are in `[0, 1]` and sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BadConfig`] otherwise.
    pub fn validate(&self) -> Result<(), PatternError> {
        let ps = [self.wrong_class, self.stuck, self.crash, self.erratic];
        if ps
            .iter()
            .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
        {
            return Err(PatternError::BadConfig(
                "fault probabilities must be in [0, 1]".into(),
            ));
        }
        if ps.iter().sum::<f64>() > 1.0 {
            return Err(PatternError::BadConfig(
                "fault probabilities must sum to at most 1".into(),
            ));
        }
        Ok(())
    }

    /// Total fault probability per decision.
    pub fn total(&self) -> f64 {
        self.wrong_class + self.stuck + self.crash + self.erratic
    }
}

/// What the injector actually did on the last decision (exposed so
/// experiments can compute ground-truth coverage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedFault {
    /// No fault this decision.
    None,
    /// Silent wrong class.
    WrongClass,
    /// Stuck at the previous output.
    Stuck,
    /// Detectable crash.
    Crash,
    /// Confidence jittered, class unchanged.
    Erratic,
}

/// Wraps a channel and injects faults per a [`FaultModel`].
///
/// Fault draws come from an explicit [`DetRng`], so an experiment's fault
/// sequence is reproducible from its seed.
pub struct FaultyChannel {
    inner: Box<dyn Channel>,
    model: FaultModel,
    classes: usize,
    rng: DetRng,
    last_verdict: Option<ChannelVerdict>,
    last_fault: InjectedFault,
    injected_count: u64,
    decision_count: u64,
}

impl FaultyChannel {
    /// Wraps `inner` (boxed internally), injecting faults per `model`.
    /// `classes` is the label-space size used to pick wrong classes.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BadConfig`] for an invalid fault model or
    /// `classes < 2` (a wrong class must exist).
    pub fn new(
        inner: impl Channel + 'static,
        model: FaultModel,
        classes: usize,
        rng: DetRng,
    ) -> Result<Self, PatternError> {
        model.validate()?;
        if classes < 2 {
            return Err(PatternError::BadConfig(
                "fault injection needs at least 2 classes".into(),
            ));
        }
        Ok(FaultyChannel {
            inner: Box::new(inner),
            model,
            classes,
            rng,
            last_verdict: None,
            last_fault: InjectedFault::None,
            injected_count: 0,
            decision_count: 0,
        })
    }

    /// The fault injected on the most recent decision.
    pub fn last_fault(&self) -> InjectedFault {
        self.last_fault
    }

    /// `(faulted decisions, total decisions)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.injected_count, self.decision_count)
    }
}

impl Channel for FaultyChannel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn decide(&mut self, input: &[f32]) -> Result<ChannelVerdict, PatternError> {
        self.decision_count += 1;
        let draw = self.rng.next_f64();
        let m = &self.model;
        if draw < m.crash {
            self.last_fault = InjectedFault::Crash;
            self.injected_count += 1;
            return Err(PatternError::ChannelFault("injected crash".into()));
        }
        if draw < m.crash + m.stuck {
            // A stuck draw needs a previous verdict to be stuck at. On the
            // very first decision there is none, so the draw explicitly
            // resolves to `InjectedFault::None` (normal operation, not
            // counted against the stuck budget) rather than silently
            // falling through.
            return match self.last_verdict {
                Some(prev) => {
                    self.last_fault = InjectedFault::Stuck;
                    self.injected_count += 1;
                    // Re-record the replayed verdict so consecutive stuck
                    // faults keep repeating the same output.
                    self.last_verdict = Some(prev);
                    Ok(prev)
                }
                None => {
                    let verdict = self.inner.decide(input)?;
                    self.last_fault = InjectedFault::None;
                    self.last_verdict = Some(verdict);
                    Ok(verdict)
                }
            };
        }
        let verdict = self.inner.decide(input)?;
        if draw < m.crash + m.stuck + m.wrong_class {
            // Silent wrong answer: different class, confident.
            let offset = 1 + self.rng.below_usize(self.classes - 1);
            let wrong = ChannelVerdict {
                class: (verdict.class + offset) % self.classes,
                confidence: verdict.confidence.max(0.9),
            };
            self.last_fault = InjectedFault::WrongClass;
            self.injected_count += 1;
            self.last_verdict = Some(wrong);
            return Ok(wrong);
        }
        if draw < m.crash + m.stuck + m.wrong_class + m.erratic {
            // Confidence jitter, class unchanged: uniform offset in
            // [-0.5, 0.5) clamped back into [0, 1].
            let jitter = self.rng.range_f64(-0.5, 0.5);
            let erratic = ChannelVerdict {
                class: verdict.class,
                confidence: (f64::from(verdict.confidence) + jitter).clamp(0.0, 1.0) as f32,
            };
            self.last_fault = InjectedFault::Erratic;
            self.injected_count += 1;
            self.last_verdict = Some(erratic);
            return Ok(erratic);
        }
        self.last_fault = InjectedFault::None;
        self.last_verdict = Some(verdict);
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ConstantChannel;

    fn wrapped(model: FaultModel, seed: u64) -> FaultyChannel {
        FaultyChannel::new(
            ConstantChannel::new("truth", 0),
            model,
            4,
            DetRng::new(seed),
        )
        .unwrap()
    }

    #[test]
    fn no_faults_passthrough() {
        let mut ch = wrapped(FaultModel::none(), 1);
        for _ in 0..50 {
            let v = ch.decide(&[0.0]).unwrap();
            assert_eq!(v.class, 0);
            assert_eq!(ch.last_fault(), InjectedFault::None);
        }
        assert_eq!(ch.stats(), (0, 50));
    }

    #[test]
    fn wrong_class_rate_approximates_probability() {
        let mut ch = wrapped(
            FaultModel {
                wrong_class: 0.3,
                stuck: 0.0,
                crash: 0.0,
                erratic: 0.0,
            },
            2,
        );
        let mut wrong = 0;
        let n = 2000;
        for _ in 0..n {
            let v = ch.decide(&[0.0]).unwrap();
            if v.class != 0 {
                wrong += 1;
                assert_eq!(ch.last_fault(), InjectedFault::WrongClass);
                assert!(v.confidence >= 0.9);
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn crash_faults_surface_as_channel_fault() {
        let mut ch = wrapped(
            FaultModel {
                wrong_class: 0.0,
                stuck: 0.0,
                crash: 1.0,
                erratic: 0.0,
            },
            3,
        );
        assert!(matches!(
            ch.decide(&[0.0]),
            Err(PatternError::ChannelFault(_))
        ));
        assert_eq!(ch.last_fault(), InjectedFault::Crash);
    }

    #[test]
    fn stuck_repeats_previous_output() {
        let mut flip = 0usize;
        let inner = crate::channel::RuleChannel::new("flip", move |_: &[f32]| {
            flip += 1;
            flip % 2
        });
        let mut ch = FaultyChannel::new(
            inner,
            FaultModel {
                wrong_class: 0.0,
                stuck: 1.0,
                crash: 0.0,
                erratic: 0.0,
            },
            2,
            DetRng::new(4),
        )
        .unwrap();
        // First decision: nothing to be stuck at -> real output, and the
        // draw explicitly resolves to a non-fault.
        let first = ch.decide(&[0.0]).unwrap();
        assert_eq!(ch.last_fault(), InjectedFault::None);
        assert_eq!(ch.stats(), (0, 1), "first-decision stuck is not injected");
        // All subsequent decisions repeat it.
        for _ in 0..10 {
            assert_eq!(ch.decide(&[0.0]).unwrap(), first);
            assert_eq!(ch.last_fault(), InjectedFault::Stuck);
        }
        assert_eq!(ch.stats(), (10, 11));
    }

    #[test]
    fn erratic_jitters_confidence_but_keeps_class() {
        let mut ch = wrapped(
            FaultModel {
                wrong_class: 0.0,
                stuck: 0.0,
                crash: 0.0,
                erratic: 1.0,
            },
            5,
        );
        let mut jittered = 0;
        for _ in 0..50 {
            let v = ch.decide(&[0.0]).unwrap();
            assert_eq!(v.class, 0, "erratic faults never change the class");
            assert_eq!(ch.last_fault(), InjectedFault::Erratic);
            assert!((0.0..=1.0).contains(&v.confidence));
            if (v.confidence - 1.0).abs() > 1e-6 {
                jittered += 1;
            }
        }
        // The inner channel reports confidence 1.0, so only negative
        // jitter (about half the draws) moves it after clamping.
        assert!(jittered > 15, "jitter should regularly move the confidence");
        assert_eq!(ch.stats(), (50, 50));
    }

    #[test]
    fn validation() {
        assert!(FaultModel {
            wrong_class: 0.6,
            stuck: 0.6,
            crash: 0.0,
            erratic: 0.0,
        }
        .validate()
        .is_err());
        assert!(FaultModel {
            wrong_class: -0.1,
            stuck: 0.0,
            crash: 0.0,
            erratic: 0.0,
        }
        .validate()
        .is_err());
        assert!(FaultModel {
            wrong_class: 0.4,
            stuck: 0.3,
            crash: 0.2,
            erratic: 0.2,
        }
        .validate()
        .is_err());
        assert!(FaultyChannel::new(
            ConstantChannel::new("c", 0),
            FaultModel::none(),
            1,
            DetRng::new(0),
        )
        .is_err());
    }

    #[test]
    fn deterministic_fault_sequence() {
        let run = |seed: u64| {
            let mut ch = wrapped(
                FaultModel {
                    wrong_class: 0.2,
                    stuck: 0.1,
                    crash: 0.1,
                    erratic: 0.1,
                },
                seed,
            );
            (0..100)
                .map(|_| match ch.decide(&[0.0]) {
                    Ok(v) => v.class as i64,
                    Err(_) => -1,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
