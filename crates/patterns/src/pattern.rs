//! The safety patterns: bare, monitor-actuator, simplex, safety bag,
//! 2-out-of-3, degraded-mode cascade.

use safex_supervision::{CalibratedMonitor, Verdict};

use crate::channel::{Channel, ChannelVerdict};
use crate::decision::{Decision, FallbackReason};
use crate::error::PatternError;

/// How a pattern evaluates its redundant channels.
///
/// Redundant channels (the three voters of [`TwoOutOfThree`], the
/// primary/monitor pair of [`MonitorActuator`]) are independent by
/// construction, so they *may* run concurrently — but SIL configurations
/// that forbid intra-decision concurrency (single-core certification
/// targets, WCET arguments built on sequential execution) can pin the
/// pattern to sequential evaluation.
///
/// Both modes produce identical [`Decision`]s on the fault-free path:
/// each channel is evaluated exactly once per decision against the same
/// input, and votes are tallied in declared channel order regardless of
/// completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelPolicy {
    /// Evaluate channels one after another on the calling thread
    /// (default; matches the certification-friendly baseline).
    #[default]
    Sequential,
    /// Evaluate channels concurrently on scoped worker threads.
    Parallel,
}

/// Evaluates every channel once against `input`, honouring `policy`.
///
/// Results are returned in declared channel order for both policies, so
/// downstream voting is scheduling-independent.
fn decide_all<'c>(
    channels: impl IntoIterator<Item = &'c mut (dyn Channel + 'static)>,
    input: &[f32],
    policy: ParallelPolicy,
) -> Vec<Result<ChannelVerdict, PatternError>> {
    match policy {
        ParallelPolicy::Sequential => channels.into_iter().map(|c| c.decide(input)).collect(),
        ParallelPolicy::Parallel => std::thread::scope(|scope| {
            let handles: Vec<_> = channels
                .into_iter()
                .map(|c| scope.spawn(move || c.decide(input)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(verdict) => verdict,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        }),
    }
}

/// A composed safety architecture that turns inputs into [`Decision`]s.
///
/// All patterns are object-safe so pipelines and cascades can hold
/// heterogeneous `Box<dyn SafetyPattern>` ladders.
pub trait SafetyPattern {
    /// Stable pattern name for evidence records.
    fn name(&self) -> &'static str;

    /// Decides an action for one input.
    ///
    /// Channel faults are *handled* (they produce conservative decisions),
    /// not propagated; only infrastructure failures (wrong input size,
    /// unfitted monitors) surface as errors.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError`] for infrastructure failures.
    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError>;

    /// Decides a batch of inputs in order, returning one decision per
    /// input.
    ///
    /// The default drives [`SafetyPattern::decide`] sequentially: patterns
    /// are stateful (temporal consistency, cascade hysteresis), so batch
    /// semantics must equal feeding the inputs one at a time. Parallelism
    /// belongs *inside* a decision (redundant channels, engine pools),
    /// never across decisions, or state updates would become
    /// scheduling-dependent.
    ///
    /// # Errors
    ///
    /// Returns the first infrastructure failure; decisions already made
    /// are discarded (no partial batches).
    fn decide_batch(&mut self, inputs: &[&[f32]]) -> Result<Vec<Decision>, PatternError> {
        inputs.iter().map(|input| self.decide(input)).collect()
    }
}

/// The unprotected baseline: one DL channel, its word is final.
///
/// Exists so experiments can quantify what the other patterns buy.
pub struct Bare {
    channel: Box<dyn Channel>,
}

impl Bare {
    /// Wraps a single channel (boxed internally).
    pub fn new(channel: impl Channel + 'static) -> Self {
        Bare {
            channel: Box::new(channel),
        }
    }
}

impl SafetyPattern for Bare {
    fn name(&self) -> &'static str {
        "bare"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        match self.channel.decide(input) {
            Ok(v) => Ok(Decision::proceed(v.class, v.confidence, 1, 0)),
            Err(PatternError::ChannelFault(_)) => {
                // Even the bare pattern cannot act on garbage; emergency stop.
                Ok(Decision::safe_stop(FallbackReason::ChannelFault, 1, 0))
            }
            Err(e) => Err(e),
        }
    }
}

/// Monitor-actuator: the channel's *output* must satisfy a plausibility
/// envelope (confidence floor + temporal consistency) or the actuator is
/// sent to the safe state.
///
/// The monitor here is intentionally non-ML: it is the independent, simple,
/// verifiable component the pattern's safety argument rests on. An
/// optional *monitor channel* ([`Self::with_monitor_channel`]) adds a
/// second, independently developed channel whose class must agree with
/// the primary's; because the two are independent, they can be evaluated
/// concurrently under [`ParallelPolicy::Parallel`].
pub struct MonitorActuator {
    channel: Box<dyn Channel>,
    monitor: Option<Box<dyn Channel>>,
    policy: ParallelPolicy,
    confidence_floor: f32,
    /// A new class must persist this many consecutive frames before it is
    /// acted on (0 = no temporal filtering).
    consistency_frames: u32,
    last_class: Option<usize>,
    streak: u32,
}

impl MonitorActuator {
    /// Creates the pattern (channel boxed internally, no monitor channel,
    /// sequential evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BadConfig`] if `confidence_floor` is not in
    /// `[0, 1]`.
    pub fn new(
        channel: impl Channel + 'static,
        confidence_floor: f32,
        consistency_frames: u32,
    ) -> Result<Self, PatternError> {
        if !(0.0..=1.0).contains(&confidence_floor) || !confidence_floor.is_finite() {
            return Err(PatternError::BadConfig(format!(
                "confidence floor {confidence_floor} outside [0, 1]"
            )));
        }
        Ok(MonitorActuator {
            channel: Box::new(channel),
            monitor: None,
            policy: ParallelPolicy::Sequential,
            confidence_floor,
            consistency_frames,
            last_class: None,
            streak: 0,
        })
    }

    /// Adds an independent monitor channel that must agree with the
    /// primary's class, or the actuator is sent to the safe state.
    #[must_use]
    pub fn with_monitor_channel(mut self, monitor: impl Channel + 'static) -> Self {
        self.monitor = Some(Box::new(monitor));
        self
    }

    /// Sets how the primary and monitor channels are evaluated (only
    /// observable in latency: decisions are identical either way).
    #[must_use]
    pub fn with_policy(mut self, policy: ParallelPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl SafetyPattern for MonitorActuator {
    fn name(&self) -> &'static str {
        "monitor_actuator"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        let has_monitor = self.monitor.is_some();
        let (evals, checks) = if has_monitor { (2, 2) } else { (1, 1) };
        let mut outcomes = decide_all(
            std::iter::once(self.channel.as_mut()).chain(self.monitor.as_mut().map(|m| m.as_mut())),
            input,
            self.policy,
        );
        let monitor_outcome = if has_monitor { outcomes.pop() } else { None };
        let verdict = match outcomes.pop().expect("primary outcome present") {
            Ok(v) => v,
            Err(PatternError::ChannelFault(_)) => {
                return Ok(Decision::safe_stop(
                    FallbackReason::ChannelFault,
                    evals,
                    checks,
                ));
            }
            Err(e) => return Err(e),
        };
        if let Some(outcome) = monitor_outcome {
            // A dead monitor voids the safety argument just as surely as a
            // dead primary; a disagreeing one flags an implausible output.
            let monitor_verdict = match outcome {
                Ok(v) => v,
                Err(PatternError::ChannelFault(_)) => {
                    return Ok(Decision::safe_stop(
                        FallbackReason::ChannelFault,
                        evals,
                        checks,
                    ));
                }
                Err(e) => return Err(e),
            };
            if monitor_verdict.class != verdict.class {
                return Ok(Decision::safe_stop(
                    FallbackReason::ImplausibleOutput,
                    evals,
                    checks,
                ));
            }
        }
        if verdict.confidence < self.confidence_floor {
            return Ok(Decision::safe_stop(
                FallbackReason::ImplausibleOutput,
                evals,
                checks,
            ));
        }
        // Temporal consistency: require the class to persist.
        if self.consistency_frames > 0 {
            match self.last_class {
                Some(last) if last == verdict.class => {
                    self.streak = self.streak.saturating_add(1);
                }
                _ => {
                    self.last_class = Some(verdict.class);
                    self.streak = 1;
                }
            }
            if self.streak < self.consistency_frames {
                return Ok(Decision::safe_stop(
                    FallbackReason::ImplausibleOutput,
                    evals,
                    checks,
                ));
            }
        }
        Ok(Decision::proceed(
            verdict.class,
            verdict.confidence,
            evals,
            checks,
        ))
    }
}

/// Simplex / supervised channel: an OOD supervisor gates the DL channel;
/// rejected inputs are handled by an independently developed fallback
/// channel.
///
/// This is the pattern the SAFEXPLAIN abstract's "strategies to reach (and
/// prove) correct operation" most directly names: the complex component is
/// allowed to be complex because a simple component bounds it.
pub struct Simplex {
    primary: safex_nn::Engine,
    monitor: CalibratedMonitor,
    fallback: Box<dyn Channel>,
}

impl Simplex {
    /// Creates the pattern from a primary engine, a calibrated monitor,
    /// and a fallback channel (boxed internally).
    pub fn new(
        primary: safex_nn::Engine,
        monitor: CalibratedMonitor,
        fallback: impl Channel + 'static,
    ) -> Self {
        Simplex {
            primary,
            monitor,
            fallback: Box::new(fallback),
        }
    }
}

impl SafetyPattern for Simplex {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        let obs = match safex_supervision::observe(&mut self.primary, input) {
            Ok(o) => o,
            Err(safex_supervision::SupervisionError::Nn(e)) => return Err(PatternError::Nn(e)),
            Err(e) => return Err(PatternError::Supervision(e)),
        };
        // A non-finite observation is a channel fault, not a monitor call.
        if obs.validate().is_err() {
            let fb = self.fallback.decide(input)?;
            return Ok(Decision::fallback(
                fb.class,
                FallbackReason::ChannelFault,
                2,
                0,
            ));
        }
        let (verdict, _score) = self.monitor.check(&obs)?;
        match verdict {
            Verdict::Accept => Ok(Decision::proceed(
                obs.predicted_class(),
                obs.confidence(),
                1,
                1,
            )),
            Verdict::Reject => {
                let fb = self.fallback.decide(input)?;
                Ok(Decision::fallback(
                    fb.class,
                    FallbackReason::MonitorReject,
                    2,
                    1,
                ))
            }
        }
    }
}

/// Boxed veto rule for [`SafetyBag`]:
/// `check(input, proposed_class) -> permitted?`.
pub type VetoRule = Box<dyn FnMut(&[f32], usize) -> bool>;

/// Boxed acceptance test for [`RecoveryBlock`]:
/// `accept(input, proposed_class, confidence) -> acceptable?`.
pub type AcceptanceTest = Box<dyn FnMut(&[f32], usize, f32) -> bool>;

/// Safety bag: the DL channel proposes, an independent rule-based checker
/// can veto. A vetoed proposal becomes a safe stop.
pub struct SafetyBag {
    proposer: Box<dyn Channel>,
    checker: VetoRule,
}

impl SafetyBag {
    /// Creates the pattern from a proposing channel and a veto rule (both
    /// boxed internally).
    pub fn new(
        proposer: impl Channel + 'static,
        checker: impl FnMut(&[f32], usize) -> bool + 'static,
    ) -> Self {
        SafetyBag {
            proposer: Box::new(proposer),
            checker: Box::new(checker),
        }
    }
}

impl SafetyPattern for SafetyBag {
    fn name(&self) -> &'static str {
        "safety_bag"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        let verdict = match self.proposer.decide(input) {
            Ok(v) => v,
            Err(PatternError::ChannelFault(_)) => {
                return Ok(Decision::safe_stop(FallbackReason::ChannelFault, 1, 1));
            }
            Err(e) => return Err(e),
        };
        if (self.checker)(input, verdict.class) {
            Ok(Decision::proceed(verdict.class, verdict.confidence, 1, 1))
        } else {
            Ok(Decision::safe_stop(FallbackReason::EnvelopeViolation, 1, 1))
        }
    }
}

/// Recovery block (Randell's classic): the primary channel proposes; an
/// acceptance test judges the proposal; on rejection the *alternate*
/// channel proposes, subject to the same test; if both fail, safe stop.
///
/// Differs from [`SafetyBag`] (which stops on veto) by retrying with a
/// diverse alternate before giving up — buying availability at the price
/// of a second evaluation on the failure path.
pub struct RecoveryBlock {
    primary: Box<dyn Channel>,
    alternate: Box<dyn Channel>,
    acceptance: AcceptanceTest,
}

impl RecoveryBlock {
    /// Creates the pattern from primary, alternate, and acceptance test
    /// (all boxed internally).
    pub fn new(
        primary: impl Channel + 'static,
        alternate: impl Channel + 'static,
        acceptance: impl FnMut(&[f32], usize, f32) -> bool + 'static,
    ) -> Self {
        RecoveryBlock {
            primary: Box::new(primary),
            alternate: Box::new(alternate),
            acceptance: Box::new(acceptance),
        }
    }
}

impl SafetyPattern for RecoveryBlock {
    fn name(&self) -> &'static str {
        "recovery_block"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        let mut evals = 0u32;
        let mut checks = 0u32;
        // Try primary, then alternate.
        for (which, channel) in [&mut self.primary, &mut self.alternate]
            .into_iter()
            .enumerate()
        {
            evals += 1;
            let verdict = match channel.decide(input) {
                Ok(v) => v,
                Err(PatternError::ChannelFault(_)) => continue,
                Err(e) => return Err(e),
            };
            checks += 1;
            if (self.acceptance)(input, verdict.class, verdict.confidence) {
                return Ok(if which == 0 {
                    Decision::proceed(verdict.class, verdict.confidence, evals, checks)
                } else {
                    Decision::fallback(
                        verdict.class,
                        FallbackReason::ImplausibleOutput,
                        evals,
                        checks,
                    )
                });
            }
        }
        Ok(Decision::safe_stop(
            FallbackReason::ImplausibleOutput,
            evals,
            checks,
        ))
    }
}

/// 2-out-of-3 diverse redundancy: three channels vote; a majority class
/// proceeds, full disagreement stops.
///
/// Diversity is the caller's job (different seeds, float vs quantised
/// builds, DL vs classical) — the voter only assumes failure
/// independence.
pub struct TwoOutOfThree {
    channels: [Box<dyn Channel>; 3],
    policy: ParallelPolicy,
}

impl TwoOutOfThree {
    /// Creates the voter (channels boxed internally, sequential
    /// evaluation).
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps room for diversity checks
    /// without breaking the signature.
    pub fn new(
        a: impl Channel + 'static,
        b: impl Channel + 'static,
        c: impl Channel + 'static,
    ) -> Result<Self, PatternError> {
        Ok(TwoOutOfThree {
            channels: [Box::new(a), Box::new(b), Box::new(c)],
            policy: ParallelPolicy::Sequential,
        })
    }

    /// Sets how the three voters are evaluated (only observable in
    /// latency: votes are tallied in declared order either way).
    #[must_use]
    pub fn with_policy(mut self, policy: ParallelPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl SafetyPattern for TwoOutOfThree {
    fn name(&self) -> &'static str {
        "two_out_of_three"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        let mut verdicts = Vec::with_capacity(3);
        let mut faults = 0u32;
        let outcomes = decide_all(
            self.channels
                .iter_mut()
                .map(|c| c.as_mut() as &mut dyn Channel),
            input,
            self.policy,
        );
        for outcome in outcomes {
            match outcome {
                Ok(v) => verdicts.push(v),
                Err(PatternError::ChannelFault(_)) => faults += 1,
                Err(e) => return Err(e),
            }
        }
        // Majority among the surviving channels.
        let mut best: Option<(usize, u32, f32)> = None; // class, votes, conf sum
        for v in &verdicts {
            let votes = verdicts.iter().filter(|o| o.class == v.class).count() as u32;
            let conf: f32 = verdicts
                .iter()
                .filter(|o| o.class == v.class)
                .map(|o| o.confidence)
                .sum();
            match best {
                None => best = Some((v.class, votes, conf)),
                Some((_, bv, _)) if votes > bv => best = Some((v.class, votes, conf)),
                _ => {}
            }
        }
        match best {
            Some((class, votes, conf_sum)) if votes >= 2 => {
                Ok(Decision::proceed(class, conf_sum / votes as f32, 3, 0))
            }
            _ => {
                // No majority (disagreement) or too many faults.
                let reason = if faults > 0 {
                    FallbackReason::ChannelFault
                } else {
                    FallbackReason::ChannelDisagreement
                };
                Ok(Decision::safe_stop(reason, 3, 0))
            }
        }
    }
}

/// Degraded-mode cascade: an ordered ladder of patterns, most capable
/// first. Repeated conservative decisions trip the system one rung down;
/// a long healthy streak recovers one rung up.
pub struct Cascade {
    levels: Vec<Box<dyn SafetyPattern>>,
    current: usize,
    trip_threshold: u32,
    recover_threshold: u32,
    conservative_streak: u32,
    healthy_streak: u32,
}

impl Cascade {
    /// Creates a cascade.
    ///
    /// `trip_threshold` consecutive conservative decisions demote one
    /// level; `recover_threshold` consecutive proceeds promote one level.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BadConfig`] for an empty ladder or zero
    /// thresholds.
    pub fn new(
        levels: Vec<Box<dyn SafetyPattern>>,
        trip_threshold: u32,
        recover_threshold: u32,
    ) -> Result<Self, PatternError> {
        if levels.is_empty() {
            return Err(PatternError::BadConfig("cascade needs levels".into()));
        }
        if trip_threshold == 0 || recover_threshold == 0 {
            return Err(PatternError::BadConfig(
                "cascade thresholds must be non-zero".into(),
            ));
        }
        Ok(Cascade {
            levels,
            current: 0,
            trip_threshold,
            recover_threshold,
            conservative_streak: 0,
            healthy_streak: 0,
        })
    }

    /// The active level (0 = most capable).
    pub fn current_level(&self) -> usize {
        self.current
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

impl SafetyPattern for Cascade {
    fn name(&self) -> &'static str {
        "cascade"
    }

    fn decide(&mut self, input: &[f32]) -> Result<Decision, PatternError> {
        let decision = self.levels[self.current].decide(input)?;
        if decision.action.is_conservative() {
            self.conservative_streak += 1;
            self.healthy_streak = 0;
            if self.conservative_streak >= self.trip_threshold
                && self.current + 1 < self.levels.len()
            {
                self.current += 1;
                self.conservative_streak = 0;
            }
        } else {
            self.healthy_streak += 1;
            self.conservative_streak = 0;
            if self.healthy_streak >= self.recover_threshold && self.current > 0 {
                self.current -= 1;
                self.healthy_streak = 0;
            }
        }
        Ok(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelVerdict, ConstantChannel, RuleChannel};

    /// A channel scripted to return a fixed sequence of outcomes.
    struct Scripted {
        outcomes: Vec<Result<ChannelVerdict, ()>>,
        pos: usize,
    }

    impl Scripted {
        fn new(outcomes: Vec<Result<ChannelVerdict, ()>>) -> Self {
            Scripted { outcomes, pos: 0 }
        }

        fn ok(class: usize, confidence: f32) -> Result<ChannelVerdict, ()> {
            Ok(ChannelVerdict { class, confidence })
        }
    }

    impl Channel for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }

        fn decide(&mut self, _input: &[f32]) -> Result<ChannelVerdict, PatternError> {
            let out = self.outcomes[self.pos % self.outcomes.len()];
            self.pos += 1;
            out.map_err(|()| PatternError::ChannelFault("scripted fault".into()))
        }
    }

    #[test]
    fn bare_passes_through_and_stops_on_fault() {
        let mut p = Bare::new(Scripted::new(vec![Scripted::ok(1, 0.9), Err(())]));
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), Some(1));
        assert!(d.action.is_proceed());
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::ChannelFault));
    }

    #[test]
    fn monitor_actuator_enforces_confidence_floor() {
        let mut p = MonitorActuator::new(
            Scripted::new(vec![Scripted::ok(0, 0.95), Scripted::ok(0, 0.3)]),
            0.5,
            0,
        )
        .unwrap();
        assert!(p.decide(&[0.0]).unwrap().action.is_proceed());
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::ImplausibleOutput));
    }

    #[test]
    fn monitor_actuator_temporal_consistency() {
        // New class must persist 2 frames.
        let mut p = MonitorActuator::new(
            Scripted::new(vec![
                Scripted::ok(0, 0.9),
                Scripted::ok(0, 0.9),
                Scripted::ok(1, 0.9), // class change: held back
                Scripted::ok(1, 0.9), // second frame: accepted
            ]),
            0.5,
            2,
        )
        .unwrap();
        assert!(!p.decide(&[0.0]).unwrap().action.is_proceed()); // streak 1
        assert!(p.decide(&[0.0]).unwrap().action.is_proceed()); // streak 2
        assert!(!p.decide(&[0.0]).unwrap().action.is_proceed()); // new class, streak 1
        assert!(p.decide(&[0.0]).unwrap().action.is_proceed()); // streak 2
    }

    #[test]
    fn monitor_actuator_config_validation() {
        let ch = ConstantChannel::new("c", 0);
        assert!(MonitorActuator::new(ch, 1.5, 0).is_err());
    }

    #[test]
    fn safety_bag_vetoes() {
        let proposer = Scripted::new(vec![Scripted::ok(1, 0.9), Scripted::ok(2, 0.9)]);
        // Veto class 2 regardless of input.
        let mut p = SafetyBag::new(proposer, |_x: &[f32], class| class != 2);
        assert!(p.decide(&[0.0]).unwrap().action.is_proceed());
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::EnvelopeViolation));
    }

    #[test]
    fn two_out_of_three_majority() {
        let mk = |class: usize| ConstantChannel::new("c", class);
        let mut p = TwoOutOfThree::new(mk(1), mk(1), mk(0)).unwrap();
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), Some(1));
        assert_eq!(d.channel_evals, 3);
    }

    #[test]
    fn two_out_of_three_disagreement_stops() {
        let mk = |class: usize| ConstantChannel::new("c", class);
        let mut p = TwoOutOfThree::new(mk(0), mk(1), mk(2)).unwrap();
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::ChannelDisagreement));
    }

    #[test]
    fn two_out_of_three_survives_one_fault() {
        let faulty = Scripted::new(vec![Err(())]);
        let mk = |class: usize| ConstantChannel::new("c", class);
        let mut p = TwoOutOfThree::new(faulty, mk(1), mk(1)).unwrap();
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), Some(1));
        assert!(d.action.is_proceed());
    }

    #[test]
    fn two_out_of_three_two_faults_stop() {
        let mut p = TwoOutOfThree::new(
            Scripted::new(vec![Err(())]),
            Scripted::new(vec![Err(())]),
            ConstantChannel::new("c", 1),
        )
        .unwrap();
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::ChannelFault));
    }

    #[test]
    fn cascade_trips_and_recovers() {
        // Level 0 always stops; level 1 always proceeds. With
        // trip_threshold 2 the cascade demotes after two stops, then the
        // healthy streak promotes it back after 3 proceeds — where it
        // starts tripping again.
        let stopper = Bare::new(Scripted::new(vec![Err(())]));
        let procer = Bare::new(ConstantChannel::new("ok", 0));
        let mut c = Cascade::new(vec![Box::new(stopper), Box::new(procer)], 2, 3).unwrap();
        assert_eq!(c.current_level(), 0);
        c.decide(&[0.0]).unwrap();
        assert_eq!(c.current_level(), 0);
        c.decide(&[0.0]).unwrap();
        assert_eq!(c.current_level(), 1, "tripped after 2 conservative");
        for _ in 0..2 {
            assert!(c.decide(&[0.0]).unwrap().action.is_proceed());
        }
        assert_eq!(c.current_level(), 1);
        c.decide(&[0.0]).unwrap(); // third healthy decision
        assert_eq!(c.current_level(), 0, "recovered after 3 healthy");
    }

    #[test]
    fn cascade_validation() {
        assert!(Cascade::new(vec![], 1, 1).is_err());
        let p = Bare::new(ConstantChannel::new("c", 0));
        assert!(Cascade::new(vec![Box::new(p)], 0, 1).is_err());
    }

    #[test]
    fn rule_channel_in_safety_bag() {
        // End-to-end: rule proposer + envelope over raw input.
        let proposer = RuleChannel::new("r", |x: &[f32]| usize::from(x[0] > 0.5));
        let mut bag = SafetyBag::new(proposer, |x: &[f32], _class| {
            x.iter().all(|v| v.is_finite())
        });
        assert!(bag.decide(&[0.7]).unwrap().action.is_proceed());
        let d = bag.decide(&[f32::NAN]).unwrap();
        assert!(d.action.is_conservative());
    }

    #[test]
    fn recovery_block_accepts_primary() {
        let mut rb = RecoveryBlock::new(
            ConstantChannel::new("primary", 1),
            ConstantChannel::new("alternate", 2),
            |_x: &[f32], _class, conf| conf >= 0.5,
        );
        let d = rb.decide(&[0.0]).unwrap();
        assert!(d.action.is_proceed());
        assert_eq!(d.action.class(), Some(1));
        assert_eq!(d.channel_evals, 1);
    }

    #[test]
    fn recovery_block_falls_to_alternate() {
        // Acceptance rejects class 1 (primary) but accepts class 2.
        let mut rb = RecoveryBlock::new(
            ConstantChannel::new("primary", 1),
            ConstantChannel::new("alternate", 2),
            |_x: &[f32], class, _conf| class != 1,
        );
        let d = rb.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), Some(2));
        assert!(d.action.is_conservative());
        assert_eq!(d.channel_evals, 2);
    }

    #[test]
    fn recovery_block_stops_when_both_rejected() {
        let mut rb = RecoveryBlock::new(
            ConstantChannel::new("primary", 1),
            ConstantChannel::new("alternate", 2),
            |_x: &[f32], _class, _conf| false,
        );
        let d = rb.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), None);
        assert_eq!(d.action.reason(), Some(FallbackReason::ImplausibleOutput));
    }

    #[test]
    fn parallel_policy_matches_sequential_for_two_out_of_three() {
        // Same channels, both policies, many inputs: identical decisions.
        let build = |policy: ParallelPolicy| {
            TwoOutOfThree::new(
                RuleChannel::new("a", |x: &[f32]| usize::from(x[0] > 0.5)),
                RuleChannel::new("b", |x: &[f32]| usize::from(x[0] > 0.4)),
                RuleChannel::new("c", |x: &[f32]| usize::from(x[0] > 0.6)),
            )
            .unwrap()
            .with_policy(policy)
        };
        let mut seq = build(ParallelPolicy::Sequential);
        let mut par = build(ParallelPolicy::Parallel);
        for i in 0..50 {
            let x = [i as f32 / 50.0];
            assert_eq!(seq.decide(&x).unwrap(), par.decide(&x).unwrap());
        }
    }

    #[test]
    fn parallel_two_out_of_three_handles_faults() {
        let mut p = TwoOutOfThree::new(
            Scripted::new(vec![Err(())]),
            ConstantChannel::new("b", 1),
            ConstantChannel::new("c", 1),
        )
        .unwrap()
        .with_policy(ParallelPolicy::Parallel);
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), Some(1));
    }

    #[test]
    fn monitor_channel_agreement_proceeds() {
        for policy in [ParallelPolicy::Sequential, ParallelPolicy::Parallel] {
            let mut p = MonitorActuator::new(ConstantChannel::new("primary", 1), 0.5, 0)
                .unwrap()
                .with_monitor_channel(ConstantChannel::new("monitor", 1))
                .with_policy(policy);
            let d = p.decide(&[0.0]).unwrap();
            assert!(d.action.is_proceed(), "policy {policy:?}");
            assert_eq!(d.channel_evals, 2);
        }
    }

    #[test]
    fn monitor_channel_disagreement_stops() {
        let mut p = MonitorActuator::new(ConstantChannel::new("primary", 1), 0.5, 0)
            .unwrap()
            .with_monitor_channel(ConstantChannel::new("monitor", 2));
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::ImplausibleOutput));
    }

    #[test]
    fn monitor_channel_fault_stops() {
        let mut p = MonitorActuator::new(ConstantChannel::new("primary", 1), 0.5, 0)
            .unwrap()
            .with_monitor_channel(Scripted::new(vec![Err(())]));
        let d = p.decide(&[0.0]).unwrap();
        assert_eq!(d.action.reason(), Some(FallbackReason::ChannelFault));
    }

    #[test]
    fn decide_batch_matches_sequential_decides() {
        // Stateful pattern (temporal consistency): batch must replay the
        // same state trajectory as one-at-a-time decides.
        let script = vec![
            Scripted::ok(0, 0.9),
            Scripted::ok(0, 0.9),
            Scripted::ok(1, 0.9),
            Scripted::ok(1, 0.9),
        ];
        let mut one = MonitorActuator::new(Scripted::new(script.clone()), 0.5, 2).unwrap();
        let mut batch = MonitorActuator::new(Scripted::new(script), 0.5, 2).unwrap();
        let inputs: Vec<&[f32]> = vec![&[0.0]; 4];
        let batched = batch.decide_batch(&inputs).unwrap();
        for (i, d) in batched.iter().enumerate() {
            assert_eq!(*d, one.decide(inputs[i]).unwrap(), "input {i}");
        }
    }

    #[test]
    fn recovery_block_survives_primary_crash() {
        let mut rb = RecoveryBlock::new(
            Scripted::new(vec![Err(())]),
            ConstantChannel::new("alternate", 3),
            |_x: &[f32], _class, _conf| true,
        );
        let d = rb.decide(&[0.0]).unwrap();
        assert_eq!(d.action.class(), Some(3));
    }
}
