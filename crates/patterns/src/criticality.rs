//! Criticality levels and pattern recommendations.
//!
//! The paper's pillar 2 promises patterns "*with varying criticality and
//! fault tolerance requirements*". This module encodes the mapping: a
//! generic four-level safety-integrity scale (covering ASIL A-D, SIL 1-4,
//! DAL terminology differences) and, per level, the minimum pattern
//! sophistication the architecture should deploy.

use std::fmt;

/// A generic safety-integrity level (1 = lowest, 4 = highest).
///
/// Maps onto ISO 26262 ASIL A-D, IEC 61508 SIL 1-4, and (roughly) DO-178C
/// DAL D-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sil {
    /// Lowest integrity (ASIL A / SIL 1).
    Sil1,
    /// ASIL B / SIL 2.
    Sil2,
    /// ASIL C / SIL 3.
    Sil3,
    /// Highest integrity (ASIL D / SIL 4).
    Sil4,
}

impl Sil {
    /// All levels in ascending order.
    pub const ALL: [Sil; 4] = [Sil::Sil1, Sil::Sil2, Sil::Sil3, Sil::Sil4];

    /// Numeric level, 1-4.
    pub fn level(self) -> u8 {
        match self {
            Sil::Sil1 => 1,
            Sil::Sil2 => 2,
            Sil::Sil3 => 3,
            Sil::Sil4 => 4,
        }
    }

    /// Parses a numeric level.
    ///
    /// Returns `None` outside 1-4.
    pub fn from_level(level: u8) -> Option<Sil> {
        match level {
            1 => Some(Sil::Sil1),
            2 => Some(Sil::Sil2),
            3 => Some(Sil::Sil3),
            4 => Some(Sil::Sil4),
            _ => None,
        }
    }

    /// The minimum pattern sophistication recommended at this level.
    pub fn recommended_pattern(self) -> PatternKind {
        match self {
            Sil::Sil1 => PatternKind::MonitorActuator,
            Sil::Sil2 => PatternKind::Simplex,
            Sil::Sil3 => PatternKind::SafetyBag,
            Sil::Sil4 => PatternKind::TwoOutOfThree,
        }
    }

    /// Maximum tolerable residual dangerous-failure rate per decision for
    /// experiments that grade coverage (loosely modelled on IEC 61508
    /// per-hour bands, rescaled to per-decision for the simulation).
    pub fn max_residual_failure_rate(self) -> f64 {
        match self {
            Sil::Sil1 => 1e-2,
            Sil::Sil2 => 1e-3,
            Sil::Sil3 => 1e-4,
            Sil::Sil4 => 1e-5,
        }
    }
}

impl fmt::Display for Sil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIL{}", self.level())
    }
}

/// The pattern families this crate provides, in ascending sophistication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum PatternKind {
    /// No protection.
    Bare,
    /// Output-envelope monitor.
    MonitorActuator,
    /// Supervisor-gated channel with fallback.
    Simplex,
    /// Rule-based veto over DL proposals.
    SafetyBag,
    /// Primary + acceptance test + diverse alternate (Randell).
    RecoveryBlock,
    /// Triple diverse redundancy.
    TwoOutOfThree,
    /// Degraded-mode ladder.
    Cascade,
}

impl PatternKind {
    /// Stable name matching `SafetyPattern::name` of the corresponding
    /// implementation.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::Bare => "bare",
            PatternKind::MonitorActuator => "monitor_actuator",
            PatternKind::Simplex => "simplex",
            PatternKind::SafetyBag => "safety_bag",
            PatternKind::RecoveryBlock => "recovery_block",
            PatternKind::TwoOutOfThree => "two_out_of_three",
            PatternKind::Cascade => "cascade",
        }
    }

    /// Nominal channel evaluations per decision (the latency proxy used
    /// by experiment E6 before platform-accurate timing).
    pub fn nominal_cost(self) -> u32 {
        match self {
            PatternKind::Bare => 1,
            PatternKind::MonitorActuator => 2,
            PatternKind::Simplex => 2,
            PatternKind::SafetyBag => 2,
            PatternKind::RecoveryBlock => 2,
            PatternKind::TwoOutOfThree => 3,
            PatternKind::Cascade => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_round_trip() {
        for sil in Sil::ALL {
            assert_eq!(Sil::from_level(sil.level()), Some(sil));
        }
        assert_eq!(Sil::from_level(0), None);
        assert_eq!(Sil::from_level(5), None);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Sil::Sil1 < Sil::Sil4);
        assert_eq!(Sil::Sil3.to_string(), "SIL3");
    }

    #[test]
    fn recommendations_escalate() {
        let kinds: Vec<PatternKind> = Sil::ALL.iter().map(|s| s.recommended_pattern()).collect();
        for pair in kinds.windows(2) {
            assert!(pair[0] <= pair[1], "recommendations must not de-escalate");
        }
        assert_eq!(Sil::Sil4.recommended_pattern(), PatternKind::TwoOutOfThree);
    }

    #[test]
    fn residual_rates_tighten() {
        let rates: Vec<f64> = Sil::ALL
            .iter()
            .map(|s| s.max_residual_failure_rate())
            .collect();
        for pair in rates.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn kind_names_and_costs() {
        assert_eq!(PatternKind::Simplex.name(), "simplex");
        assert!(PatternKind::TwoOutOfThree.nominal_cost() > PatternKind::Bare.nominal_cost());
    }
}
