//! Decision types shared by all safety patterns.

use std::fmt;

/// Why a pattern abandoned the nominal DL output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FallbackReason {
    /// A runtime supervisor rejected the input as out-of-distribution.
    MonitorReject,
    /// Redundant channels failed to reach the required agreement.
    ChannelDisagreement,
    /// A channel produced structurally invalid output.
    ChannelFault,
    /// The rule-based safety envelope vetoed the proposed action.
    EnvelopeViolation,
    /// The system is operating in a degraded mode after repeated trips.
    Degraded,
    /// Output failed the plausibility envelope (confidence floor,
    /// temporal consistency).
    ImplausibleOutput,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FallbackReason::MonitorReject => "monitor reject",
            FallbackReason::ChannelDisagreement => "channel disagreement",
            FallbackReason::ChannelFault => "channel fault",
            FallbackReason::EnvelopeViolation => "envelope violation",
            FallbackReason::Degraded => "degraded mode",
            FallbackReason::ImplausibleOutput => "implausible output",
        };
        f.write_str(s)
    }
}

/// The action a safety pattern selects for one input.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Action {
    /// Use the DL prediction as-is.
    Proceed {
        /// Predicted class.
        class: usize,
        /// Prediction confidence in `[0, 1]` (or raw score for headless
        /// models).
        confidence: f32,
    },
    /// Use a conservative fallback channel's output.
    Fallback {
        /// The fallback channel's class.
        class: usize,
        /// Why the nominal output was abandoned.
        reason: FallbackReason,
    },
    /// Transition to the safe state (stop / hand over / abort).
    SafeStop {
        /// Why the safe state was commanded.
        reason: FallbackReason,
    },
}

impl Action {
    /// Whether the nominal DL output was used.
    pub fn is_proceed(&self) -> bool {
        matches!(self, Action::Proceed { .. })
    }

    /// Whether the system went conservative (fallback or safe stop).
    pub fn is_conservative(&self) -> bool {
        !self.is_proceed()
    }

    /// The acting class, if any (safe stop has none).
    pub fn class(&self) -> Option<usize> {
        match self {
            Action::Proceed { class, .. } | Action::Fallback { class, .. } => Some(*class),
            Action::SafeStop { .. } => None,
        }
    }

    /// The fallback reason, if the action is conservative.
    pub fn reason(&self) -> Option<FallbackReason> {
        match self {
            Action::Proceed { .. } => None,
            Action::Fallback { reason, .. } | Action::SafeStop { reason } => Some(*reason),
        }
    }
}

/// One safety-pattern decision with its cost accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The selected action.
    pub action: Action,
    /// Number of DL channel evaluations this decision consumed (the
    /// latency/compute proxy experiments E3/E6 report).
    pub channel_evals: u32,
    /// Number of monitor/checker evaluations.
    pub monitor_evals: u32,
}

impl Decision {
    /// Creates a proceed decision.
    pub fn proceed(class: usize, confidence: f32, channel_evals: u32, monitor_evals: u32) -> Self {
        Decision {
            action: Action::Proceed { class, confidence },
            channel_evals,
            monitor_evals,
        }
    }

    /// Creates a fallback decision.
    pub fn fallback(
        class: usize,
        reason: FallbackReason,
        channel_evals: u32,
        monitor_evals: u32,
    ) -> Self {
        Decision {
            action: Action::Fallback { class, reason },
            channel_evals,
            monitor_evals,
        }
    }

    /// Creates a safe-stop decision.
    pub fn safe_stop(reason: FallbackReason, channel_evals: u32, monitor_evals: u32) -> Self {
        Decision {
            action: Action::SafeStop { reason },
            channel_evals,
            monitor_evals,
        }
    }

    /// Total evaluation cost (channels + monitors).
    pub fn total_cost(&self) -> u32 {
        self.channel_evals + self.monitor_evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_predicates() {
        let p = Action::Proceed {
            class: 2,
            confidence: 0.9,
        };
        assert!(p.is_proceed());
        assert!(!p.is_conservative());
        assert_eq!(p.class(), Some(2));
        assert_eq!(p.reason(), None);

        let f = Action::Fallback {
            class: 0,
            reason: FallbackReason::MonitorReject,
        };
        assert!(f.is_conservative());
        assert_eq!(f.class(), Some(0));
        assert_eq!(f.reason(), Some(FallbackReason::MonitorReject));

        let s = Action::SafeStop {
            reason: FallbackReason::ChannelDisagreement,
        };
        assert_eq!(s.class(), None);
        assert!(s.is_conservative());
    }

    #[test]
    fn decision_constructors_and_cost() {
        let d = Decision::proceed(1, 0.8, 3, 2);
        assert_eq!(d.total_cost(), 5);
        let d = Decision::fallback(0, FallbackReason::Degraded, 1, 1);
        assert_eq!(d.action.reason(), Some(FallbackReason::Degraded));
        let d = Decision::safe_stop(FallbackReason::EnvelopeViolation, 1, 1);
        assert!(d.action.is_conservative());
    }

    #[test]
    fn reason_display() {
        assert_eq!(FallbackReason::MonitorReject.to_string(), "monitor reject");
        assert_eq!(
            FallbackReason::ImplausibleOutput.to_string(),
            "implausible output"
        );
    }
}
