//! `SafetyPattern::decide_batch` under injected channel faults.
//!
//! A batch is semantically a sequential replay: for the same fault seed,
//! the batch path must reproduce the exact decision sequence of
//! one-at-a-time `decide` calls — including every injected fault — for
//! both `ParallelPolicy` settings. This pins down the contract campaigns
//! rely on when they sweep fault classes through the batch API.

use safex_patterns::channel::{ConstantChannel, RuleChannel};
use safex_patterns::fault::{FaultModel, FaultyChannel};
use safex_patterns::pattern::{MonitorActuator, ParallelPolicy, SafetyPattern, TwoOutOfThree};
use safex_patterns::Decision;
use safex_tensor::DetRng;

const CLASSES: usize = 4;
const FAULT: FaultModel = FaultModel {
    wrong_class: 0.15,
    stuck: 0.10,
    crash: 0.05,
    erratic: 0.10,
};

fn faulty(seed: u64) -> FaultyChannel {
    let inner = RuleChannel::new("rule", |x: &[f32]| {
        usize::from(x[0] > 0.25) + 2 * usize::from(x[0] > 0.75)
    });
    FaultyChannel::new(inner, FAULT, CLASSES, DetRng::new(seed)).expect("valid fault model")
}

fn inputs() -> Vec<Vec<f32>> {
    (0..64).map(|i| vec![i as f32 / 64.0]).collect()
}

/// Drives `pattern` one decision at a time — the reference sequence.
fn sequential(mut pattern: impl SafetyPattern, inputs: &[Vec<f32>]) -> Vec<Decision> {
    inputs
        .iter()
        .map(|x| pattern.decide(x).expect("decide"))
        .collect()
}

#[test]
fn two_out_of_three_batch_equals_sequential_fault_sequence() {
    let build = |policy: ParallelPolicy| {
        TwoOutOfThree::new(
            faulty(42),
            ConstantChannel::new("b", 1),
            ConstantChannel::new("c", 1),
        )
        .expect("voter")
        .with_policy(policy)
    };
    let input_vec = inputs();
    let slices: Vec<&[f32]> = input_vec.iter().map(Vec::as_slice).collect();
    let reference = sequential(build(ParallelPolicy::Sequential), &input_vec);
    for policy in [ParallelPolicy::Sequential, ParallelPolicy::Parallel] {
        let batched = build(policy).decide_batch(&slices).expect("batch");
        assert_eq!(
            batched, reference,
            "policy {policy:?} diverged from the sequential fault sequence"
        );
    }
}

#[test]
fn monitor_actuator_batch_equals_sequential_fault_sequence() {
    let build = |policy: ParallelPolicy| {
        MonitorActuator::new(faulty(7), 0.4, 0)
            .expect("pattern")
            .with_monitor_channel(ConstantChannel::new("monitor", 1))
            .with_policy(policy)
    };
    let input_vec = inputs();
    let slices: Vec<&[f32]> = input_vec.iter().map(Vec::as_slice).collect();
    let reference = sequential(build(ParallelPolicy::Sequential), &input_vec);
    for policy in [ParallelPolicy::Sequential, ParallelPolicy::Parallel] {
        let batched = build(policy).decide_batch(&slices).expect("batch");
        assert_eq!(
            batched, reference,
            "policy {policy:?} diverged from the sequential fault sequence"
        );
    }
}

#[test]
fn different_seeds_change_the_fault_sequence() {
    let input_vec = inputs();
    let run = |seed: u64| {
        sequential(
            TwoOutOfThree::new(
                faulty(seed),
                ConstantChannel::new("b", 1),
                ConstantChannel::new("c", 1),
            )
            .expect("voter"),
            &input_vec,
        )
    };
    assert_eq!(run(3), run(3), "same seed must replay identically");
    assert_ne!(run(3), run(4), "fault model must actually bite");
}
