//! Confidence calibration: temperature scaling, ECE, Brier score.
//!
//! A classifier whose "90 % confident" predictions are right 90 % of the
//! time is *calibrated*; certification arguments that consume confidence
//! values (the trust models in [`crate::trust`], the supervisors in
//! `safex-supervision`) are only sound on calibrated outputs. Temperature
//! scaling (Guo et al. 2017) is the standard single-parameter fix:
//! `softmax(z / T)` with `T` fitted on held-out data. The fit here uses
//! deterministic golden-section search on the NLL — no randomness, same
//! result every run.

use crate::error::XaiError;

/// A fitted temperature-scaling transform.
///
/// # Examples
///
/// ```
/// use safex_xai::calibration::TemperatureScaling;
///
/// // Overconfident logits: large margins, sometimes wrong.
/// let logits = vec![
///     vec![4.0, 0.0], vec![4.2, 0.0], vec![3.8, 0.0], vec![0.0, 4.0],
///     vec![4.0, 0.0], vec![0.1, 4.1], vec![4.0, 0.0], vec![3.9, 0.0],
/// ];
/// let labels = vec![0, 0, 1, 1, 0, 1, 1, 0]; // several high-margin mistakes
/// let ts = TemperatureScaling::fit(&logits, &labels).unwrap();
/// assert!(ts.temperature() > 1.0, "overconfident model needs T > 1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureScaling {
    temperature: f64,
}

impl TemperatureScaling {
    /// The identity transform (`T = 1`).
    pub fn identity() -> Self {
        TemperatureScaling { temperature: 1.0 }
    }

    /// Fits the temperature minimising NLL on validation logits.
    ///
    /// # Errors
    ///
    /// Returns [`XaiError::BadInput`] on empty data, length mismatch, or
    /// out-of-range labels.
    pub fn fit(logits: &[Vec<f32>], labels: &[usize]) -> Result<Self, XaiError> {
        validate(logits, labels)?;
        // Golden-section search for T in [0.05, 20] on NLL(T).
        let nll = |t: f64| -> f64 {
            let mut total = 0.0f64;
            for (z, &y) in logits.iter().zip(labels) {
                let p = softmax_at(z, t, y);
                total += -(p.max(1e-300)).ln();
            }
            total
        };
        let (mut a, mut b) = (0.05f64, 20.0f64);
        let phi = (5.0f64.sqrt() - 1.0) / 2.0;
        let mut c = b - phi * (b - a);
        let mut d = a + phi * (b - a);
        let mut fc = nll(c);
        let mut fd = nll(d);
        for _ in 0..80 {
            if fc < fd {
                b = d;
                d = c;
                fd = fc;
                c = b - phi * (b - a);
                fc = nll(c);
            } else {
                a = c;
                c = d;
                fc = fd;
                d = a + phi * (b - a);
                fd = nll(d);
            }
        }
        Ok(TemperatureScaling {
            temperature: (a + b) / 2.0,
        })
    }

    /// The fitted temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Applies the transform: `softmax(logits / T)`.
    pub fn apply(&self, logits: &[f32]) -> Vec<f32> {
        let t = self.temperature;
        let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) as f64;
        let exps: Vec<f64> = logits
            .iter()
            .map(|&z| ((z as f64 - max) / t).exp())
            .collect();
        let sum: f64 = exps.iter().sum();
        exps.iter().map(|e| (e / sum) as f32).collect()
    }
}

fn softmax_at(logits: &[f32], t: f64, index: usize) -> f64 {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) as f64;
    let mut sum = 0.0f64;
    let mut target = 0.0f64;
    for (i, &z) in logits.iter().enumerate() {
        let e = ((z as f64 - max) / t).exp();
        sum += e;
        if i == index {
            target = e;
        }
    }
    target / sum
}

/// Expected calibration error over equal-width confidence bins.
///
/// `ECE = Σ_b (n_b / n) * |acc_b - conf_b|` with `bins` bins over
/// `[0, 1]`.
///
/// # Errors
///
/// Returns [`XaiError::BadInput`] on empty/mismatched data or
/// [`XaiError::BadConfig`] for zero bins.
pub fn expected_calibration_error(
    probs: &[Vec<f32>],
    labels: &[usize],
    bins: usize,
) -> Result<f64, XaiError> {
    if bins == 0 {
        return Err(XaiError::BadConfig("bins must be non-zero".into()));
    }
    validate(probs, labels)?;
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_acc = vec![0.0f64; bins];
    let mut bin_count = vec![0usize; bins];
    for (p, &y) in probs.iter().zip(labels) {
        let (pred, conf) = argmax(p);
        let mut b = (conf as f64 * bins as f64) as usize;
        if b >= bins {
            b = bins - 1;
        }
        bin_conf[b] += conf as f64;
        bin_acc[b] += (pred == y) as u8 as f64;
        bin_count[b] += 1;
    }
    let n = probs.len() as f64;
    let mut ece = 0.0f64;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let c = bin_count[b] as f64;
        ece += (c / n) * ((bin_acc[b] / c) - (bin_conf[b] / c)).abs();
    }
    Ok(ece)
}

/// Multi-class Brier score: mean squared distance between the probability
/// vector and the one-hot label.
///
/// # Errors
///
/// Returns [`XaiError::BadInput`] on empty/mismatched data or a label out
/// of range.
pub fn brier_score(probs: &[Vec<f32>], labels: &[usize]) -> Result<f64, XaiError> {
    validate(probs, labels)?;
    let mut total = 0.0f64;
    for (p, &y) in probs.iter().zip(labels) {
        for (i, &pi) in p.iter().enumerate() {
            let target = (i == y) as u8 as f64;
            total += (pi as f64 - target).powi(2);
        }
    }
    Ok(total / probs.len() as f64)
}

fn validate(vectors: &[Vec<f32>], labels: &[usize]) -> Result<(), XaiError> {
    if vectors.is_empty() {
        return Err(XaiError::BadInput("empty calibration data".into()));
    }
    if vectors.len() != labels.len() {
        return Err(XaiError::BadInput(format!(
            "{} vectors but {} labels",
            vectors.len(),
            labels.len()
        )));
    }
    for (v, &y) in vectors.iter().zip(labels) {
        if y >= v.len() {
            return Err(XaiError::BadInput(format!(
                "label {y} out of range for {} classes",
                v.len()
            )));
        }
        if v.iter().any(|x| !x.is_finite()) {
            return Err(XaiError::BadInput("non-finite values".into()));
        }
    }
    Ok(())
}

fn argmax(v: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::NEG_INFINITY);
    for (i, &x) in v.iter().enumerate() {
        if x > best.1 {
            best = (i, x);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_preserves_softmax() {
        let ts = TemperatureScaling::identity();
        let probs = ts.apply(&[1.0, 2.0, 3.0]);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(probs[2] > probs[1]);
        assert_eq!(ts.temperature(), 1.0);
    }

    #[test]
    fn higher_temperature_softens() {
        let hot = TemperatureScaling { temperature: 5.0 };
        let cold = TemperatureScaling { temperature: 0.5 };
        let logits = [3.0f32, 0.0];
        let ph = hot.apply(&logits);
        let pc = cold.apply(&logits);
        assert!(ph[0] < pc[0], "hot {} vs cold {}", ph[0], pc[0]);
    }

    #[test]
    fn fit_recovers_large_t_for_overconfident_model() {
        // Model is right only 60 % of the time but logit margins are huge:
        // optimal T must be large.
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            logits.push(vec![8.0f32, 0.0]);
            labels.push(if i % 10 < 6 { 0 } else { 1 });
        }
        let ts = TemperatureScaling::fit(&logits, &labels).unwrap();
        assert!(ts.temperature() > 3.0, "T = {}", ts.temperature());
        // And calibration improves.
        let before: Vec<Vec<f32>> = logits
            .iter()
            .map(|z| TemperatureScaling::identity().apply(z))
            .collect();
        let after: Vec<Vec<f32>> = logits.iter().map(|z| ts.apply(z)).collect();
        let ece_before = expected_calibration_error(&before, &labels, 10).unwrap();
        let ece_after = expected_calibration_error(&after, &labels, 10).unwrap();
        assert!(
            ece_after < ece_before / 2.0,
            "ECE {ece_before} -> {ece_after}"
        );
    }

    #[test]
    fn fit_keeps_t_near_one_for_calibrated_model() {
        // Construct a perfectly calibrated source: logit margin m gives
        // p = sigmoid(m); choose labels to match those frequencies.
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            logits.push(vec![1.0f32, 0.0]); // p0 = sigmoid(1) = 0.731
            labels.push(if i < 146 { 0 } else { 1 }); // 73 % class 0
        }
        let ts = TemperatureScaling::fit(&logits, &labels).unwrap();
        assert!(
            (ts.temperature() - 1.0).abs() < 0.35,
            "T = {}",
            ts.temperature()
        );
    }

    #[test]
    fn ece_zero_for_perfect_predictions() {
        let probs = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let labels = vec![0, 1];
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!(ece < 1e-9);
    }

    #[test]
    fn ece_high_for_confident_wrong() {
        let probs = vec![vec![1.0f32, 0.0]; 10];
        let labels = vec![1; 10];
        let ece = expected_calibration_error(&probs, &labels, 10).unwrap();
        assert!((ece - 1.0).abs() < 1e-9);
    }

    #[test]
    fn brier_extremes() {
        let perfect = vec![vec![1.0f32, 0.0]];
        assert_eq!(brier_score(&perfect, &[0]).unwrap(), 0.0);
        let worst = vec![vec![1.0f32, 0.0]];
        assert_eq!(brier_score(&worst, &[1]).unwrap(), 2.0);
        let uniform = vec![vec![0.5f32, 0.5]];
        assert_eq!(brier_score(&uniform, &[0]).unwrap(), 0.5);
    }

    #[test]
    fn validation_errors() {
        assert!(TemperatureScaling::fit(&[], &[]).is_err());
        assert!(TemperatureScaling::fit(&[vec![1.0, 0.0]], &[2]).is_err());
        assert!(expected_calibration_error(&[vec![1.0, 0.0]], &[0], 0).is_err());
        assert!(brier_score(&[vec![1.0, 0.0]], &[0, 1]).is_err());
        assert!(brier_score(&[vec![f32::NAN, 0.0]], &[0]).is_err());
    }
}
