//! Error type for the explainability crate.

use std::error::Error;
use std::fmt;

use safex_nn::NnError;

/// Errors produced by explainers, calibration, and trust models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XaiError {
    /// The model input is not image-shaped (rank-3 CHW) where an image
    /// explainer requires it, or dimensions are otherwise unusable.
    BadInput(String),
    /// A configuration value is invalid.
    BadConfig(String),
    /// An underlying inference failure.
    Nn(NnError),
}

impl fmt::Display for XaiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XaiError::BadInput(msg) => write!(f, "bad explainer input: {msg}"),
            XaiError::BadConfig(msg) => write!(f, "bad explainer config: {msg}"),
            XaiError::Nn(e) => write!(f, "inference error: {e}"),
        }
    }
}

impl Error for XaiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            XaiError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for XaiError {
    fn from(e: NnError) -> Self {
        XaiError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(XaiError::BadInput("rank".into())
            .to_string()
            .contains("rank"));
        assert!(XaiError::from(NnError::EmptyModel).source().is_some());
        assert!(XaiError::BadConfig("x".into()).source().is_none());
    }
}
