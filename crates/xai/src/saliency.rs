//! Black-box saliency explainers.
//!
//! Both explainers only call [`Engine::infer`], so they work identically
//! on the float and (via a thin adapter) quantised deployment builds, and
//! they inherit the engine's determinism: the same input yields the same
//! explanation, which is what makes explanations *evidence* rather than
//! illustration.

use safex_nn::Engine;
use safex_scenarios::Region;
use safex_tensor::DetRng;

use crate::error::XaiError;

/// A per-pixel saliency map over an `h x w` image (channel-aggregated).
///
/// Higher values mean the pixel contributed more to the target class
/// score. Values are raw (not normalised); use
/// [`SaliencyMap::normalized`] for display.
#[derive(Debug, Clone, PartialEq)]
pub struct SaliencyMap {
    values: Vec<f64>,
    height: usize,
    width: usize,
    target_class: usize,
}

impl SaliencyMap {
    pub(crate) fn new(values: Vec<f64>, height: usize, width: usize, target_class: usize) -> Self {
        debug_assert_eq!(values.len(), height * width);
        SaliencyMap {
            values,
            height,
            width,
            target_class,
        }
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The class the explanation targets.
    pub fn target_class(&self) -> usize {
        self.target_class
    }

    /// Raw row-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Saliency at `(y, x)`, or `None` out of range.
    pub fn at(&self, y: usize, x: usize) -> Option<f64> {
        if y >= self.height || x >= self.width {
            return None;
        }
        Some(self.values[y * self.width + x])
    }

    /// Location of the maximum-saliency pixel (first occurrence wins).
    pub fn peak(&self) -> (usize, usize) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, &v) in self.values.iter().enumerate() {
            if v > best.1 {
                best = (i, v);
            }
        }
        (best.0 / self.width, best.0 % self.width)
    }

    /// The `h x w` window with the largest total saliency (brute force;
    /// fine for the small embedded-scale images this stack uses).
    ///
    /// # Errors
    ///
    /// Returns [`XaiError::BadConfig`] if the window does not fit.
    pub fn best_window(&self, h: usize, w: usize) -> Result<Region, XaiError> {
        if h == 0 || w == 0 || h > self.height || w > self.width {
            return Err(XaiError::BadConfig(format!(
                "window {h}x{w} does not fit map {}x{}",
                self.height, self.width
            )));
        }
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for y0 in 0..=self.height - h {
            for x0 in 0..=self.width - w {
                let mut total = 0.0f64;
                for y in y0..y0 + h {
                    for x in x0..x0 + w {
                        total += self.values[y * self.width + x];
                    }
                }
                if total > best.2 {
                    best = (y0, x0, total);
                }
            }
        }
        Region::new(best.0, best.1, h, w)
            .map_err(|e| XaiError::BadConfig(format!("window construction failed: {e}")))
    }

    /// A copy rescaled to `[0, 1]` (all-equal maps become all-zero).
    pub fn normalized(&self) -> SaliencyMap {
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        let values = if range <= 0.0 {
            vec![0.0; self.values.len()]
        } else {
            self.values.iter().map(|v| (v - min) / range).collect()
        };
        SaliencyMap::new(values, self.height, self.width, self.target_class)
    }

    /// Fraction of total (non-negative) saliency mass inside a region —
    /// a concentration measure used by trust models.
    pub fn mass_in_region(&self, region: &Region) -> f64 {
        let total: f64 = self.values.iter().map(|v| v.max(0.0)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut inside = 0.0f64;
        for y in 0..self.height {
            for x in 0..self.width {
                if region.contains(y, x) {
                    inside += self.values[y * self.width + x].max(0.0);
                }
            }
        }
        inside / total
    }
}

/// Configuration for [`occlusion_saliency`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OcclusionConfig {
    /// Side of the square occluding patch.
    pub patch: usize,
    /// Stride between patch positions (1 = dense).
    pub stride: usize,
    /// Value the patch writes over the input.
    pub baseline: f32,
}

impl Default for OcclusionConfig {
    fn default() -> Self {
        OcclusionConfig {
            patch: 3,
            stride: 1,
            baseline: 0.0,
        }
    }
}

impl OcclusionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XaiError::BadConfig`] for zero patch/stride or a
    /// non-finite baseline.
    pub fn validate(&self) -> Result<(), XaiError> {
        if self.patch == 0 || self.stride == 0 {
            return Err(XaiError::BadConfig(
                "patch and stride must be non-zero".into(),
            ));
        }
        if !self.baseline.is_finite() {
            return Err(XaiError::BadConfig("baseline must be finite".into()));
        }
        Ok(())
    }
}

/// Occlusion sensitivity: slides a baseline-valued patch over the image
/// and records how much the target-class score drops at each position.
///
/// Saliency of a pixel is the mean score drop over all patch placements
/// covering it. Cost: one inference per patch position.
///
/// # Errors
///
/// Returns [`XaiError::BadInput`] if the model input is not rank-3 CHW or
/// the patch exceeds the image, [`XaiError::BadConfig`] on bad config, and
/// propagates inference errors.
pub fn occlusion_saliency(
    engine: &mut Engine,
    input: &[f32],
    target_class: usize,
    config: &OcclusionConfig,
) -> Result<SaliencyMap, XaiError> {
    config.validate()?;
    let (channels, h, w) = image_dims(engine)?;
    if config.patch > h || config.patch > w {
        return Err(XaiError::BadInput(format!(
            "patch {} exceeds image {h}x{w}",
            config.patch
        )));
    }
    let base_out = engine.infer(input)?;
    let base_score = *base_out.get(target_class).ok_or_else(|| {
        XaiError::BadInput(format!(
            "target class {target_class} out of range for {} outputs",
            base_out.len()
        ))
    })? as f64;

    let mut drop_sum = vec![0.0f64; h * w];
    let mut drop_count = vec![0u32; h * w];
    let mut occluded = input.to_vec();
    let mut y0 = 0usize;
    while y0 + config.patch <= h {
        let mut x0 = 0usize;
        while x0 + config.patch <= w {
            // Occlude.
            for c in 0..channels {
                for y in y0..y0 + config.patch {
                    for x in x0..x0 + config.patch {
                        occluded[c * h * w + y * w + x] = config.baseline;
                    }
                }
            }
            let out = engine.infer(&occluded)?;
            let drop = base_score - out[target_class] as f64;
            for y in y0..y0 + config.patch {
                for x in x0..x0 + config.patch {
                    drop_sum[y * w + x] += drop;
                    drop_count[y * w + x] += 1;
                }
            }
            // Restore.
            for c in 0..channels {
                for y in y0..y0 + config.patch {
                    for x in x0..x0 + config.patch {
                        occluded[c * h * w + y * w + x] = input[c * h * w + y * w + x];
                    }
                }
            }
            x0 += config.stride;
        }
        y0 += config.stride;
    }
    let values: Vec<f64> = drop_sum
        .iter()
        .zip(&drop_count)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    Ok(SaliencyMap::new(values, h, w, target_class))
}

/// Finite-difference input-gradient saliency.
///
/// Central differences of the target-class score with respect to every
/// pixel, aggregated over channels by the maximum absolute gradient. Cost:
/// two inferences per pixel per channel — acceptable at embedded image
/// sizes and completely model-agnostic.
///
/// # Errors
///
/// Returns [`XaiError::BadInput`] on non-image models or a bad target
/// class, [`XaiError::BadConfig`] for a non-positive epsilon, and
/// propagates inference errors.
pub fn gradient_saliency(
    engine: &mut Engine,
    input: &[f32],
    target_class: usize,
    epsilon: f32,
) -> Result<SaliencyMap, XaiError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(XaiError::BadConfig("epsilon must be positive".into()));
    }
    let (channels, h, w) = image_dims(engine)?;
    {
        let out = engine.infer(input)?;
        if target_class >= out.len() {
            return Err(XaiError::BadInput(format!(
                "target class {target_class} out of range for {} outputs",
                out.len()
            )));
        }
    }
    let mut values = vec![0.0f64; h * w];
    let mut perturbed = input.to_vec();
    for y in 0..h {
        for x in 0..w {
            let mut best = 0.0f64;
            for c in 0..channels {
                let idx = c * h * w + y * w + x;
                perturbed[idx] = input[idx] + epsilon;
                let plus = engine.infer(&perturbed)?[target_class] as f64;
                perturbed[idx] = input[idx] - epsilon;
                let minus = engine.infer(&perturbed)?[target_class] as f64;
                perturbed[idx] = input[idx];
                let grad = ((plus - minus) / (2.0 * epsilon as f64)).abs();
                if grad > best {
                    best = grad;
                }
            }
            values[y * w + x] = best;
        }
    }
    Ok(SaliencyMap::new(values, h, w, target_class))
}

/// Integrated gradients (Sundararajan et al. 2017) via finite
/// differences: averages the input gradient along the straight-line path
/// from `baseline` to the input and multiplies by `(input − baseline)`,
/// aggregating channels by absolute attribution.
///
/// Satisfies completeness approximately (attributions sum to the score
/// difference between input and baseline), which plain gradients do not.
/// Cost: `steps × 2 × pixels × channels` inferences.
///
/// # Errors
///
/// Returns [`XaiError::BadConfig`] for zero steps or a non-positive
/// epsilon, [`XaiError::BadInput`] on non-image models or a bad target
/// class, and propagates inference errors.
pub fn integrated_gradient_saliency(
    engine: &mut Engine,
    input: &[f32],
    target_class: usize,
    baseline: f32,
    steps: usize,
    epsilon: f32,
) -> Result<SaliencyMap, XaiError> {
    if steps == 0 {
        return Err(XaiError::BadConfig("steps must be non-zero".into()));
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(XaiError::BadConfig("epsilon must be positive".into()));
    }
    if !baseline.is_finite() {
        return Err(XaiError::BadConfig("baseline must be finite".into()));
    }
    let (channels, h, w) = image_dims(engine)?;
    {
        let out = engine.infer(input)?;
        if target_class >= out.len() {
            return Err(XaiError::BadInput(format!(
                "target class {target_class} out of range for {} outputs",
                out.len()
            )));
        }
    }
    // Accumulate per-element gradient averages along the path.
    let mut grad_sum = vec![0.0f64; input.len()];
    let mut point = vec![0.0f32; input.len()];
    for s in 0..steps {
        // Midpoint rule along the path.
        let alpha = (s as f32 + 0.5) / steps as f32;
        for (p, &x) in point.iter_mut().zip(input) {
            *p = baseline + alpha * (x - baseline);
        }
        for idx in 0..input.len() {
            let original = point[idx];
            point[idx] = original + epsilon;
            let plus = engine.infer(&point)?[target_class] as f64;
            point[idx] = original - epsilon;
            let minus = engine.infer(&point)?[target_class] as f64;
            point[idx] = original;
            grad_sum[idx] += (plus - minus) / (2.0 * epsilon as f64);
        }
    }
    // Attribution = mean gradient x (input - baseline); aggregate
    // channels by absolute value.
    let mut values = vec![0.0f64; h * w];
    for c in 0..channels {
        for y in 0..h {
            for x in 0..w {
                let idx = c * h * w + y * w + x;
                let attribution = grad_sum[idx] / steps as f64 * (input[idx] - baseline) as f64;
                values[y * w + x] += attribution.abs();
            }
        }
    }
    Ok(SaliencyMap::new(values, h, w, target_class))
}

/// RISE-style randomised-mask saliency (Petsiuk et al. 2018): scores many
/// random binary masks by the target-class output of the masked input and
/// credits each pixel with the score-weighted frequency of being visible.
///
/// Black-box, one inference per mask, and — because the masks come from
/// an explicit [`DetRng`] — deterministic for a given seed.
///
/// # Errors
///
/// Returns [`XaiError::BadConfig`] for zero masks or a keep-probability
/// outside `(0, 1)`, [`XaiError::BadInput`] on non-image models or a bad
/// target class, and propagates inference errors.
pub fn rise_saliency(
    engine: &mut Engine,
    input: &[f32],
    target_class: usize,
    masks: usize,
    keep_probability: f64,
    rng: &mut DetRng,
) -> Result<SaliencyMap, XaiError> {
    if masks == 0 {
        return Err(XaiError::BadConfig("masks must be non-zero".into()));
    }
    if !(keep_probability > 0.0 && keep_probability < 1.0) {
        return Err(XaiError::BadConfig(
            "keep probability must be in (0, 1)".into(),
        ));
    }
    let (channels, h, w) = image_dims(engine)?;
    {
        let out = engine.infer(input)?;
        if target_class >= out.len() {
            return Err(XaiError::BadInput(format!(
                "target class {target_class} out of range for {} outputs",
                out.len()
            )));
        }
    }
    let mut weighted = vec![0.0f64; h * w];
    let mut exposure = vec![0.0f64; h * w];
    let mut masked = vec![0.0f32; input.len()];
    let mut mask = vec![false; h * w];
    for _ in 0..masks {
        for m in mask.iter_mut() {
            *m = rng.chance(keep_probability);
        }
        for c in 0..channels {
            for i in 0..h * w {
                masked[c * h * w + i] = if mask[i] { input[c * h * w + i] } else { 0.0 };
            }
        }
        let score = engine.infer(&masked)?[target_class] as f64;
        for i in 0..h * w {
            if mask[i] {
                weighted[i] += score;
                exposure[i] += 1.0;
            }
        }
    }
    let values: Vec<f64> = weighted
        .iter()
        .zip(&exposure)
        .map(|(&wsum, &e)| if e > 0.0 { wsum / e } else { 0.0 })
        .collect();
    Ok(SaliencyMap::new(values, h, w, target_class))
}

fn image_dims(engine: &Engine) -> Result<(usize, usize, usize), XaiError> {
    let shape = engine.model().input_shape();
    if shape.rank() != 3 {
        return Err(XaiError::BadInput(format!(
            "image explainers need CHW input, model expects {shape}"
        )));
    }
    let dims = shape.dims();
    Ok((dims[0], dims[1], dims[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_nn::layer::Layer;
    use safex_nn::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    /// A model whose class-1 score is exactly the mean of a known pixel
    /// block: saliency ground truth is unambiguous.
    fn pixel_sum_engine(h: usize, w: usize, block: Region) -> Engine {
        let mut rng = DetRng::new(0);
        let mut model = ModelBuilder::new(Shape::chw(1, h, w))
            .flatten()
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        if let Layer::Dense(d) = &mut model.layers_mut()[1] {
            let weights = d.weights_mut();
            for v in weights.iter_mut() {
                *v = 0.0;
            }
            // Class 1 reads the block pixels.
            for y in block.y..block.y + block.h {
                for x in block.x..block.x + block.w {
                    weights[w * h + y * w + x] = 1.0;
                }
            }
        }
        Engine::new(model)
    }

    #[test]
    fn occlusion_finds_the_informative_block() {
        let block = Region::new(2, 3, 3, 3).unwrap();
        let mut engine = pixel_sum_engine(10, 10, block);
        let mut input = vec![0.0f32; 100];
        for y in 2..5 {
            for x in 3..6 {
                input[y * 10 + x] = 1.0;
            }
        }
        let map = occlusion_saliency(&mut engine, &input, 1, &OcclusionConfig::default()).unwrap();
        let (py, px) = map.peak();
        assert!(block.contains(py, px), "peak ({py},{px}) outside block");
        let best = map.best_window(3, 3).unwrap();
        assert!(best.iou(&block) > 0.5, "window {best:?} vs {block:?}");
    }

    #[test]
    fn gradient_finds_the_informative_block() {
        let block = Region::new(1, 1, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(8, 8, block);
        let input = vec![0.25f32; 64];
        let map = gradient_saliency(&mut engine, &input, 1, 1e-2).unwrap();
        let (py, px) = map.peak();
        assert!(block.contains(py, px), "peak ({py},{px}) outside block");
    }

    #[test]
    fn saliency_is_deterministic() {
        let block = Region::new(0, 0, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(8, 8, block);
        let input = vec![0.5f32; 64];
        let a = occlusion_saliency(&mut engine, &input, 1, &OcclusionConfig::default()).unwrap();
        let b = occlusion_saliency(&mut engine, &input, 1, &OcclusionConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        assert!(OcclusionConfig {
            patch: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcclusionConfig {
            stride: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OcclusionConfig {
            baseline: f32::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn rejects_non_image_models() {
        let mut rng = DetRng::new(1);
        let model = ModelBuilder::new(Shape::vector(4))
            .dense(2, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let mut engine = Engine::new(model);
        assert!(matches!(
            occlusion_saliency(&mut engine, &[0.0; 4], 0, &OcclusionConfig::default()),
            Err(XaiError::BadInput(_))
        ));
        assert!(matches!(
            gradient_saliency(&mut engine, &[0.0; 4], 0, 1e-2),
            Err(XaiError::BadInput(_))
        ));
    }

    #[test]
    fn rejects_bad_target_class() {
        let block = Region::new(0, 0, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(8, 8, block);
        let input = vec![0.5f32; 64];
        assert!(occlusion_saliency(&mut engine, &input, 9, &OcclusionConfig::default()).is_err());
        assert!(gradient_saliency(&mut engine, &input, 9, 1e-2).is_err());
        assert!(gradient_saliency(&mut engine, &input, 0, 0.0).is_err());
    }

    #[test]
    fn map_accessors() {
        let map = SaliencyMap::new(vec![0.0, 1.0, 2.0, 3.0], 2, 2, 0);
        assert_eq!(map.at(1, 1), Some(3.0));
        assert_eq!(map.at(2, 0), None);
        assert_eq!(map.peak(), (1, 1));
        assert_eq!(map.target_class(), 0);
        let norm = map.normalized();
        assert_eq!(norm.values(), &[0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn normalized_flat_map_is_zero() {
        let map = SaliencyMap::new(vec![2.0; 4], 2, 2, 0);
        assert!(map.normalized().values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mass_in_region() {
        let map = SaliencyMap::new(vec![1.0, 0.0, 0.0, 3.0], 2, 2, 0);
        let r = Region::new(1, 1, 1, 1).unwrap();
        assert_eq!(map.mass_in_region(&r), 0.75);
        // Negative values do not contribute mass.
        let map = SaliencyMap::new(vec![-5.0, 0.0, 0.0, 1.0], 2, 2, 0);
        assert_eq!(map.mass_in_region(&r), 1.0);
        // All-zero map: zero mass.
        let map = SaliencyMap::new(vec![0.0; 4], 2, 2, 0);
        assert_eq!(map.mass_in_region(&r), 0.0);
    }

    #[test]
    fn best_window_validation() {
        let map = SaliencyMap::new(vec![0.0; 4], 2, 2, 0);
        assert!(map.best_window(0, 1).is_err());
        assert!(map.best_window(3, 1).is_err());
        assert!(map.best_window(2, 2).is_ok());
    }

    #[test]
    fn integrated_gradients_find_the_block() {
        let block = Region::new(1, 1, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(6, 6, block);
        let mut input = vec![0.1f32; 36];
        for y in 1..3 {
            for x in 1..3 {
                input[y * 6 + x] = 0.9;
            }
        }
        let map = integrated_gradient_saliency(&mut engine, &input, 1, 0.0, 4, 1e-2).unwrap();
        let (py, px) = map.peak();
        assert!(block.contains(py, px), "peak ({py},{px}) outside block");
    }

    #[test]
    fn integrated_gradients_validation() {
        let block = Region::new(0, 0, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(6, 6, block);
        let input = vec![0.5f32; 36];
        assert!(integrated_gradient_saliency(&mut engine, &input, 1, 0.0, 0, 1e-2).is_err());
        assert!(integrated_gradient_saliency(&mut engine, &input, 1, 0.0, 4, 0.0).is_err());
        assert!(integrated_gradient_saliency(&mut engine, &input, 1, f32::NAN, 4, 1e-2).is_err());
        assert!(integrated_gradient_saliency(&mut engine, &input, 9, 0.0, 4, 1e-2).is_err());
    }

    #[test]
    fn rise_finds_the_block() {
        let block = Region::new(2, 2, 3, 3).unwrap();
        let mut engine = pixel_sum_engine(8, 8, block);
        let mut input = vec![0.0f32; 64];
        for y in 2..5 {
            for x in 2..5 {
                input[y * 8 + x] = 1.0;
            }
        }
        let mut rng = DetRng::new(3);
        let map = rise_saliency(&mut engine, &input, 1, 400, 0.5, &mut rng).unwrap();
        let (py, px) = map.peak();
        assert!(block.contains(py, px), "peak ({py},{px}) outside block");
    }

    #[test]
    fn rise_deterministic_per_seed() {
        let block = Region::new(0, 0, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(6, 6, block);
        let input = vec![0.4f32; 36];
        let a = rise_saliency(&mut engine, &input, 1, 50, 0.5, &mut DetRng::new(9)).unwrap();
        let b = rise_saliency(&mut engine, &input, 1, 50, 0.5, &mut DetRng::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rise_validation() {
        let block = Region::new(0, 0, 2, 2).unwrap();
        let mut engine = pixel_sum_engine(6, 6, block);
        let input = vec![0.4f32; 36];
        let mut rng = DetRng::new(1);
        assert!(rise_saliency(&mut engine, &input, 1, 0, 0.5, &mut rng).is_err());
        assert!(rise_saliency(&mut engine, &input, 1, 10, 0.0, &mut rng).is_err());
        assert!(rise_saliency(&mut engine, &input, 1, 10, 1.0, &mut rng).is_err());
        assert!(rise_saliency(&mut engine, &input, 9, 10, 0.5, &mut rng).is_err());
    }
}
