//! Explanation fidelity metrics against ground-truth salient regions.
//!
//! `safex-scenarios` plants class evidence at known locations, so an
//! explanation can be scored objectively instead of eyeballed — the basis
//! of experiment E4.

use safex_scenarios::Region;

use crate::error::XaiError;
use crate::saliency::SaliencyMap;

/// Pointing game: does the saliency peak land inside the ground-truth
/// region? (Zhang et al.'s standard localisation metric.)
pub fn pointing_game_hit(map: &SaliencyMap, truth: &Region) -> bool {
    let (y, x) = map.peak();
    truth.contains(y, x)
}

/// IoU between the ground-truth region and the best saliency window of
/// the same size.
///
/// # Errors
///
/// Returns [`XaiError::BadConfig`] if the truth region does not fit the
/// map.
pub fn best_window_iou(map: &SaliencyMap, truth: &Region) -> Result<f64, XaiError> {
    let window = map.best_window(truth.h, truth.w)?;
    Ok(window.iou(truth))
}

/// Fraction of positive saliency mass inside the ground-truth region
/// (1.0 = perfectly concentrated explanation).
pub fn mass_concentration(map: &SaliencyMap, truth: &Region) -> f64 {
    map.mass_in_region(truth)
}

/// Aggregate fidelity over a batch of `(map, truth)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FidelityReport {
    /// Fraction of samples whose peak hits the truth region.
    pub pointing_game: f64,
    /// Mean best-window IoU.
    pub mean_iou: f64,
    /// Mean saliency-mass concentration.
    pub mean_mass: f64,
    /// Number of samples scored.
    pub samples: usize,
}

/// Scores a batch of explanations.
///
/// # Errors
///
/// Returns [`XaiError::BadInput`] on an empty batch and propagates
/// windowing failures.
pub fn evaluate_batch(pairs: &[(SaliencyMap, Region)]) -> Result<FidelityReport, XaiError> {
    if pairs.is_empty() {
        return Err(XaiError::BadInput("empty fidelity batch".into()));
    }
    let mut hits = 0usize;
    let mut iou_sum = 0.0f64;
    let mut mass_sum = 0.0f64;
    for (map, truth) in pairs {
        if pointing_game_hit(map, truth) {
            hits += 1;
        }
        iou_sum += best_window_iou(map, truth)?;
        mass_sum += mass_concentration(map, truth);
    }
    let n = pairs.len();
    Ok(FidelityReport {
        pointing_game: hits as f64 / n as f64,
        mean_iou: iou_sum / n as f64,
        mean_mass: mass_sum / n as f64,
        samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with_hot_block(h: usize, w: usize, r: &Region) -> SaliencyMap {
        // Build via normalized API: construct values with the block hot.
        let mut values = vec![0.0f64; h * w];
        for y in r.y..r.y + r.h {
            for x in r.x..r.x + r.w {
                values[y * w + x] = 1.0;
            }
        }
        // SaliencyMap's constructor is crate-private by design (only
        // explainers mint them); crate-internal tests may use it.
        SaliencyMap::new(values, h, w, 0)
    }

    #[test]
    fn perfect_explanation_scores_one() {
        let truth = Region::new(2, 2, 3, 3).unwrap();
        let map = map_with_hot_block(8, 8, &truth);
        assert!(pointing_game_hit(&map, &truth));
        assert_eq!(best_window_iou(&map, &truth).unwrap(), 1.0);
        assert_eq!(mass_concentration(&map, &truth), 1.0);
    }

    #[test]
    fn wrong_explanation_scores_zero() {
        let truth = Region::new(0, 0, 2, 2).unwrap();
        let wrong = Region::new(5, 5, 2, 2).unwrap();
        let map = map_with_hot_block(8, 8, &wrong);
        assert!(!pointing_game_hit(&map, &truth));
        assert_eq!(best_window_iou(&map, &truth).unwrap(), 0.0);
        assert_eq!(mass_concentration(&map, &truth), 0.0);
    }

    #[test]
    fn batch_aggregates() {
        let truth = Region::new(1, 1, 2, 2).unwrap();
        let good = map_with_hot_block(6, 6, &truth);
        let wrong = Region::new(4, 4, 2, 2).unwrap();
        let bad = map_with_hot_block(6, 6, &wrong);
        let report = evaluate_batch(&[(good, truth), (bad, truth)]).unwrap();
        assert_eq!(report.samples, 2);
        assert_eq!(report.pointing_game, 0.5);
        assert_eq!(report.mean_iou, 0.5);
        assert_eq!(report.mean_mass, 0.5);
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(evaluate_batch(&[]).is_err());
    }
}
