#![forbid(unsafe_code)]
//! # safex-xai
//!
//! Explainability and prediction-trust tooling: the analytic half of
//! pillar 1 of the SAFEXPLAIN paper — *"DL solutions that provide
//! end-to-end traceability, with specific approaches to explain whether
//! predictions can be trusted"*.
//!
//! Four capabilities:
//!
//! * **Saliency explanations** ([`saliency`]): model-agnostic occlusion
//!   sensitivity and finite-difference input gradients, both black-box
//!   (they only call [`safex_nn::Engine::infer`], so they apply unchanged
//!   to the quantised deployment build) and both deterministic.
//! * **Explanation fidelity** ([`fidelity`]): because `safex-scenarios`
//!   plants objects with known bounding boxes, explanations can be scored
//!   objectively (pointing game, IoU of the top-saliency window) —
//!   experiment E4.
//! * **Confidence calibration** ([`calibration`]): temperature scaling
//!   fitted by deterministic golden-section search, plus expected
//!   calibration error (ECE) and Brier score — experiment E7.
//! * **Trust models** ([`trust`]): a small logistic model mapping
//!   per-inference signals (confidence, margin, supervisor anomaly score)
//!   to a probability that the prediction is *correct* — the paper's
//!   "whether predictions can be trusted" made operational.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_nn::{Engine, model::ModelBuilder};
//! use safex_tensor::{DetRng, Shape};
//! use safex_xai::saliency::{occlusion_saliency, OcclusionConfig};
//!
//! let mut rng = DetRng::new(2);
//! let model = ModelBuilder::new(Shape::chw(1, 12, 12))
//!     .conv2d(4, 3, 1, 1, &mut rng)?.relu().flatten()
//!     .dense(2, &mut rng)?.softmax()
//!     .build()?;
//! let mut engine = Engine::new(model);
//! let input = vec![0.5f32; 144];
//! let map = occlusion_saliency(&mut engine, &input, 0, &OcclusionConfig::default())?;
//! assert_eq!((map.height(), map.width()), (12, 12));
//! # Ok(())
//! # }
//! ```

pub mod calibration;
pub mod error;
pub mod fidelity;
pub mod saliency;
pub mod trust;

pub use error::XaiError;
pub use saliency::SaliencyMap;
