//! Trust models: per-prediction correctness probability.
//!
//! The paper's pillar 1 asks for *"specific approaches to explain whether
//! predictions can be trusted"*. A [`TrustModel`] is that approach made
//! concrete: a small logistic model mapping per-inference signals
//! (calibrated confidence, logit margin, supervisor anomaly score, ...) to
//! the probability that the prediction is correct. Because the model is a
//! linear scorer over named features, the resulting trust value is itself
//! explainable — each feature's signed contribution is reportable.

use crate::error::XaiError;

/// A logistic trust model over a fixed feature vector.
///
/// Fit with deterministic full-batch gradient descent (fixed iteration
/// count, fixed order — bit-reproducible).
///
/// # Examples
///
/// ```
/// use safex_xai::trust::TrustModel;
///
/// // One feature: confidence. Correctness correlates with it.
/// let features = vec![vec![0.95], vec![0.9], vec![0.55], vec![0.5], vec![0.92], vec![0.45]];
/// let correct = vec![true, true, false, false, true, false];
/// let model = TrustModel::fit(&features, &correct, 500, 0.5).unwrap();
/// let high = model.trust(&[0.95]).unwrap();
/// let low = model.trust(&[0.5]).unwrap();
/// assert!(high > low);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrustModel {
    /// Per-feature weights.
    weights: Vec<f64>,
    /// Intercept.
    bias: f64,
    /// Per-feature standardisation: (mean, std).
    scaling: Vec<(f64, f64)>,
}

impl TrustModel {
    /// Fits a logistic model on `(features, correct)` pairs.
    ///
    /// Features are standardised internally; `iterations` full-batch
    /// gradient steps with the given `learning_rate` are applied.
    ///
    /// # Errors
    ///
    /// Returns [`XaiError::BadInput`] on empty data, inconsistent
    /// dimensions, or non-finite features, and [`XaiError::BadConfig`] on
    /// a non-positive learning rate or zero iterations.
    pub fn fit(
        features: &[Vec<f64>],
        correct: &[bool],
        iterations: usize,
        learning_rate: f64,
    ) -> Result<Self, XaiError> {
        if features.is_empty() {
            return Err(XaiError::BadInput("empty trust training set".into()));
        }
        if features.len() != correct.len() {
            return Err(XaiError::BadInput(format!(
                "{} feature rows but {} outcomes",
                features.len(),
                correct.len()
            )));
        }
        let d = features[0].len();
        if d == 0 || features.iter().any(|f| f.len() != d) {
            return Err(XaiError::BadInput(
                "feature rows must be non-empty and consistent".into(),
            ));
        }
        if features.iter().flatten().any(|x| !x.is_finite()) {
            return Err(XaiError::BadInput("non-finite features".into()));
        }
        if iterations == 0 || !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(XaiError::BadConfig(
                "iterations and learning rate must be positive".into(),
            ));
        }
        let n = features.len();
        // Standardise.
        let mut scaling = Vec::with_capacity(d);
        for j in 0..d {
            let mean = features.iter().map(|f| f[j]).sum::<f64>() / n as f64;
            let var = features.iter().map(|f| (f[j] - mean).powi(2)).sum::<f64>() / n as f64;
            scaling.push((mean, var.sqrt().max(1e-9)));
        }
        let x: Vec<Vec<f64>> = features
            .iter()
            .map(|f| {
                f.iter()
                    .zip(&scaling)
                    .map(|(v, (m, s))| (v - m) / s)
                    .collect()
            })
            .collect();
        let y: Vec<f64> = correct.iter().map(|&c| c as u8 as f64).collect();

        let mut weights = vec![0.0f64; d];
        let mut bias = 0.0f64;
        for _ in 0..iterations {
            let mut grad_w = vec![0.0f64; d];
            let mut grad_b = 0.0f64;
            for (xi, &yi) in x.iter().zip(&y) {
                let z = bias + weights.iter().zip(xi).map(|(w, v)| w * v).sum::<f64>();
                let p = sigmoid(z);
                let err = p - yi;
                grad_b += err;
                for (g, &v) in grad_w.iter_mut().zip(xi) {
                    *g += err * v;
                }
            }
            bias -= learning_rate * grad_b / n as f64;
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= learning_rate * g / n as f64;
            }
        }
        Ok(TrustModel {
            weights,
            bias,
            scaling,
        })
    }

    /// Number of features the model expects.
    pub fn feature_count(&self) -> usize {
        self.weights.len()
    }

    /// Probability in `[0, 1]` that a prediction with these features is
    /// correct.
    ///
    /// # Errors
    ///
    /// Returns [`XaiError::BadInput`] on a dimension mismatch or
    /// non-finite features.
    pub fn trust(&self, features: &[f64]) -> Result<f64, XaiError> {
        if features.len() != self.weights.len() {
            return Err(XaiError::BadInput(format!(
                "expected {} features, got {}",
                self.weights.len(),
                features.len()
            )));
        }
        if features.iter().any(|x| !x.is_finite()) {
            return Err(XaiError::BadInput("non-finite features".into()));
        }
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(features)
                .zip(&self.scaling)
                .map(|((w, v), (m, s))| w * ((v - m) / s))
                .sum::<f64>();
        Ok(sigmoid(z))
    }

    /// Per-feature signed contributions to the trust logit for one input —
    /// the model's own explanation of its verdict.
    ///
    /// # Errors
    ///
    /// Returns [`XaiError::BadInput`] on a dimension mismatch.
    pub fn contributions(&self, features: &[f64]) -> Result<Vec<f64>, XaiError> {
        if features.len() != self.weights.len() {
            return Err(XaiError::BadInput(format!(
                "expected {} features, got {}",
                self.weights.len(),
                features.len()
            )));
        }
        Ok(self
            .weights
            .iter()
            .zip(features)
            .zip(&self.scaling)
            .map(|((w, v), (m, s))| w * ((v - m) / s))
            .collect())
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut features = Vec::new();
        let mut correct = Vec::new();
        for i in 0..50 {
            let jitter = (i % 7) as f64 * 0.01;
            features.push(vec![0.9 + jitter, 3.0 + jitter]);
            correct.push(true);
            features.push(vec![0.5 + jitter, 0.5 - jitter]);
            correct.push(false);
        }
        (features, correct)
    }

    #[test]
    fn learns_separable_data() {
        let (f, c) = separable();
        let m = TrustModel::fit(&f, &c, 400, 0.5).unwrap();
        assert!(m.trust(&[0.92, 3.1]).unwrap() > 0.85);
        assert!(m.trust(&[0.52, 0.4]).unwrap() < 0.15);
        assert_eq!(m.feature_count(), 2);
    }

    #[test]
    fn fit_is_deterministic() {
        let (f, c) = separable();
        let a = TrustModel::fit(&f, &c, 100, 0.5).unwrap();
        let b = TrustModel::fit(&f, &c, 100, 0.5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn contributions_sum_to_logit_direction() {
        let (f, c) = separable();
        let m = TrustModel::fit(&f, &c, 200, 0.5).unwrap();
        let contribs = m.contributions(&[0.92, 3.1]).unwrap();
        assert_eq!(contribs.len(), 2);
        // Good features push positive for this model.
        assert!(contribs.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn validation() {
        assert!(TrustModel::fit(&[], &[], 10, 0.1).is_err());
        assert!(TrustModel::fit(&[vec![1.0]], &[true, false], 10, 0.1).is_err());
        assert!(TrustModel::fit(&[vec![]], &[true], 10, 0.1).is_err());
        assert!(TrustModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[true, false], 10, 0.1).is_err());
        assert!(TrustModel::fit(&[vec![f64::NAN]], &[true], 10, 0.1).is_err());
        assert!(TrustModel::fit(&[vec![1.0]], &[true], 0, 0.1).is_err());
        assert!(TrustModel::fit(&[vec![1.0]], &[true], 10, 0.0).is_err());
    }

    #[test]
    fn trust_input_validation() {
        let (f, c) = separable();
        let m = TrustModel::fit(&f, &c, 50, 0.5).unwrap();
        assert!(m.trust(&[1.0]).is_err());
        assert!(m.trust(&[1.0, f64::INFINITY]).is_err());
        assert!(m.contributions(&[1.0]).is_err());
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let f = vec![
            vec![1.0, 5.0],
            vec![1.0, 0.0],
            vec![1.0, 5.1],
            vec![1.0, -0.1],
        ];
        let c = vec![true, false, true, false];
        let m = TrustModel::fit(&f, &c, 100, 0.5).unwrap();
        let t = m.trust(&[1.0, 5.0]).unwrap();
        assert!(t.is_finite());
        assert!(t > 0.5);
    }
}
