//! Property-based tests for explainability components.

use proptest::prelude::*;
use safex_nn::model::ModelBuilder;
use safex_nn::Engine;
use safex_tensor::{DetRng, Shape};
use safex_xai::calibration::{brier_score, expected_calibration_error, TemperatureScaling};
use safex_xai::saliency::{occlusion_saliency, OcclusionConfig};
use safex_xai::trust::TrustModel;

fn image_engine(seed: u64, side: usize, classes: usize) -> Engine {
    let mut rng = DetRng::new(seed);
    Engine::new(
        ModelBuilder::new(Shape::chw(1, side, side))
            .flatten()
            .dense(classes, &mut rng)
            .expect("dense")
            .softmax()
            .build()
            .expect("build"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Occlusion saliency is total over random models and inputs, its
    /// normalised copy is in [0, 1], and its windows stay in bounds.
    #[test]
    fn occlusion_map_well_formed(
        seed in any::<u64>(),
        side in 6usize..12,
        classes in 2usize..5,
        target_frac in 0.0f64..1.0,
    ) {
        let mut engine = image_engine(seed, side, classes);
        let mut rng = DetRng::new(seed ^ 0xABCD);
        let input: Vec<f32> = (0..side * side).map(|_| rng.next_f32()).collect();
        let target = ((classes - 1) as f64 * target_frac) as usize;
        let map = occlusion_saliency(&mut engine, &input, target, &OcclusionConfig::default())
            .expect("saliency");
        prop_assert_eq!(map.height(), side);
        prop_assert_eq!(map.width(), side);
        prop_assert!(map.values().iter().all(|v| v.is_finite()));
        let norm = map.normalized();
        prop_assert!(norm.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let (py, px) = map.peak();
        prop_assert!(py < side && px < side);
        let window = map.best_window(2, 2).expect("window");
        prop_assert!(window.y + window.h <= side && window.x + window.w <= side);
    }

    /// ECE is in [0, 1] and Brier in [0, 2] for any probability vectors.
    #[test]
    fn calibration_metrics_bounded(
        seed in any::<u64>(),
        n in 1usize..40,
        classes in 2usize..6,
    ) {
        let mut rng = DetRng::new(seed);
        let mut probs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            // Random distribution via softmax of random logits.
            let logits: Vec<f32> = (0..classes).map(|_| rng.next_f32() * 8.0 - 4.0).collect();
            probs.push(TemperatureScaling::identity().apply(&logits));
            labels.push(rng.below_usize(classes));
        }
        let ece = expected_calibration_error(&probs, &labels, 10).expect("ece");
        prop_assert!((0.0..=1.0).contains(&ece), "ECE {ece}");
        let brier = brier_score(&probs, &labels).expect("brier");
        prop_assert!((0.0..=2.0).contains(&brier), "Brier {brier}");
    }

    /// Temperature scaling always yields a probability distribution and
    /// preserves the argmax for any temperature.
    #[test]
    fn temperature_apply_is_distribution(
        logits in prop::collection::vec(-20.0f32..20.0, 2..8),
        t_exp in -2.0f64..2.0,
    ) {
        let ts = TemperatureScaling::fit(
            std::slice::from_ref(&logits),
            &[0],
        );
        // Fit on a single sample may pick an extreme T; test apply via a
        // synthetic temperature instead when fit is unavailable.
        let transform = match ts {
            Ok(f) => f,
            Err(_) => TemperatureScaling::identity(),
        };
        let _ = t_exp;
        let probs = transform.apply(&logits);
        let total: f32 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        let arg = |v: &[f32]| v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0;
        prop_assert_eq!(arg(&logits), arg(&probs));
    }

    /// Trust model outputs are probabilities for any fitted data.
    #[test]
    fn trust_outputs_are_probabilities(
        seed in any::<u64>(),
        n in 4usize..40,
        dims in 1usize..5,
    ) {
        let mut rng = DetRng::new(seed);
        let features: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dims).map(|_| rng.next_f64() * 10.0 - 5.0).collect())
            .collect();
        let correct: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let model = TrustModel::fit(&features, &correct, 50, 0.3).expect("fit");
        for f in &features {
            let t = model.trust(f).expect("trust");
            prop_assert!((0.0..=1.0).contains(&t), "trust {t}");
        }
    }
}
