#![forbid(unsafe_code)]
//! # safex-trace
//!
//! End-to-end traceability: the evidence backbone of pillar 1 of the
//! SAFEXPLAIN paper — *"DL solutions that provide end-to-end
//! traceability ... in accordance to certification standards"*.
//!
//! Certification of a DL component requires binding every artefact to its
//! provenance: which dataset trained which model, which model produced
//! which prediction, which monitor verdict gated which actuation. This
//! crate provides:
//!
//! * [`record::EvidenceRecord`] — one typed, key-value provenance record
//!   with a logical timestamp.
//! * [`chain::EvidenceChain`] — an append-only, hash-chained log of
//!   records. Each record's hash covers its content *and* the previous
//!   record's hash, so any retroactive modification invalidates the chain
//!   from that point on ([`chain::EvidenceChain::verify`] detects it —
//!   experiment E9 measures the detection rate). The 64-bit chain hash is
//!   non-cryptographic (FNV-1a): it detects accidental and random
//!   corruption, which is the FUSA threat model; swap in a cryptographic
//!   hash for an adversarial setting.
//! * [`json`] — a small dependency-free JSON writer used to export chains
//!   and experiment reports.
//!
//! ## Example
//!
//! ```
//! use safex_trace::chain::EvidenceChain;
//! use safex_trace::record::{RecordKind, Value};
//!
//! let mut chain = EvidenceChain::new("demo-campaign");
//! chain.append(RecordKind::ModelTrained, vec![
//!     ("model_digest".into(), Value::U64(0xabcd)),
//!     ("epochs".into(), Value::U64(20)),
//! ]);
//! chain.append(RecordKind::InferencePerformed, vec![
//!     ("class".into(), Value::U64(2)),
//! ]);
//! assert!(chain.verify().is_ok());
//! ```

pub mod chain;
pub mod json;
pub mod record;

pub use chain::EvidenceChain;
pub use record::{input_digest, EvidenceRecord, Fnv64, RecordKind, Value};
