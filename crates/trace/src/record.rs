//! Evidence records: typed provenance entries.

use std::fmt;

/// The artefact/event category a record documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RecordKind {
    /// A dataset was generated (config + seed).
    DatasetGenerated,
    /// A model finished training.
    ModelTrained,
    /// A model was quantised for deployment.
    ModelQuantized,
    /// A supervisor/monitor was fitted or calibrated.
    MonitorCalibrated,
    /// One inference was performed.
    InferencePerformed,
    /// A monitor rendered a verdict.
    MonitorVerdict,
    /// A safety pattern rendered a decision.
    PatternDecision,
    /// An explanation was produced.
    ExplanationProduced,
    /// A timing analysis completed.
    TimingAnalysis,
    /// A verification objective changed status.
    VerificationOutcome,
    /// The runtime health monitor changed state (degradation ladder).
    HealthTransition,
    /// A weight-memory fault was detected and corrected in place (ECC).
    FaultCorrected,
    /// A serving request was answered from the result cache: the record
    /// binds the hit to the input digest and the model that computed the
    /// original (verified) result, keeping cached answers on the
    /// evidence chain.
    CacheHit,
    /// A runtime resumed from a verified state snapshot: the record
    /// binds the restored ladder/queue/metrics state to the snapshot's
    /// checksum, so a restart is itself audit evidence rather than a
    /// silent reset to Nominal.
    RuntimeRestored,
    /// A fleet member's model was hot-swapped: the old backend was
    /// quiesced and the incoming weights were re-goldened (CRC-32),
    /// ECC-sidecar rebuilt, and verified before commit.
    ModelSwapped,
    /// A hot swap was aborted because the incoming weights failed
    /// verification; the old model kept serving untouched.
    SwapAborted,
    /// A watchdog stage missed its liveness deadline (the dog barked):
    /// warning rung of the escalation ladder.
    WatchdogAlarm,
    /// A watchdog escalation fired: repeated missed heartbeats forced a
    /// member Degraded or the fleet to SafeStop.
    WatchdogEscalation,
    /// A periodic watchdog liveness proof: per-stage heartbeat ages at a
    /// configured cadence, recording that every stage was recently alive.
    WatchdogProof,
}

impl RecordKind {
    /// Stable string tag used in hashing and JSON export.
    pub fn tag(&self) -> &'static str {
        match self {
            RecordKind::DatasetGenerated => "dataset_generated",
            RecordKind::ModelTrained => "model_trained",
            RecordKind::ModelQuantized => "model_quantized",
            RecordKind::MonitorCalibrated => "monitor_calibrated",
            RecordKind::InferencePerformed => "inference_performed",
            RecordKind::MonitorVerdict => "monitor_verdict",
            RecordKind::PatternDecision => "pattern_decision",
            RecordKind::ExplanationProduced => "explanation_produced",
            RecordKind::TimingAnalysis => "timing_analysis",
            RecordKind::VerificationOutcome => "verification_outcome",
            RecordKind::HealthTransition => "health_transition",
            RecordKind::FaultCorrected => "fault_corrected",
            RecordKind::CacheHit => "cache_hit",
            RecordKind::RuntimeRestored => "runtime_restored",
            RecordKind::ModelSwapped => "model_swapped",
            RecordKind::SwapAborted => "swap_aborted",
            RecordKind::WatchdogAlarm => "watchdog_alarm",
            RecordKind::WatchdogEscalation => "watchdog_escalation",
            RecordKind::WatchdogProof => "watchdog_proof",
        }
    }
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A field value in an evidence record.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Value {
    /// A string.
    Str(String),
    /// An unsigned integer (ids, digests, counts).
    U64(u64),
    /// A float (scores, bounds).
    F64(f64),
    /// A boolean (verdicts).
    Bool(bool),
}

impl Value {
    /// Stable byte encoding for hashing.
    pub(crate) fn hash_into(&self, h: &mut Fnv64) {
        match self {
            Value::Str(s) => {
                h.write_bytes(b"s");
                h.write_bytes(s.as_bytes());
            }
            Value::U64(v) => {
                h.write_bytes(b"u");
                h.write_u64(*v);
            }
            Value::F64(v) => {
                h.write_bytes(b"f");
                h.write_u64(v.to_bits());
            }
            Value::Bool(v) => {
                h.write_bytes(b"b");
                h.write_u64(*v as u64);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One hash-chained provenance record.
///
/// Construct via [`crate::chain::EvidenceChain::append`]; records are
/// immutable once appended (the chain exposes a deliberate tamper hook for
/// integrity experiments only).
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRecord {
    /// Position in the chain (0-based).
    pub index: u64,
    /// Logical timestamp (the chain's monotone counter; no wall clock).
    pub logical_time: u64,
    /// Record category.
    pub kind: RecordKind,
    /// Ordered key-value payload.
    pub fields: Vec<(String, Value)>,
    /// Hash of the previous record (0 for the genesis record).
    pub prev_hash: u64,
    /// Hash over `index || time || kind || fields || prev_hash`.
    pub hash: u64,
}

impl EvidenceRecord {
    /// Recomputes what this record's hash *should* be.
    pub fn computed_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.index);
        h.write_u64(self.logical_time);
        h.write_bytes(self.kind.tag().as_bytes());
        for (k, v) in &self.fields {
            h.write_bytes(k.as_bytes());
            v.hash_into(&mut h);
        }
        h.write_u64(self.prev_hash);
        h.finish()
    }

    /// Looks up a field by key (first match).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// FNV-1a 64-bit hasher: the stable, dependency-free digest every
/// evidence artefact in the workspace hashes with.
///
/// Public so the layers above (result caches, golden-report tests) key
/// their artefacts through the *same* hash that chains the evidence —
/// one digest convention, one place to swap it for a cryptographic hash.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Canonical digest of an inference input: FNV-1a over the exact bit
/// patterns of the values (no float rounding, `-0.0 != 0.0`, NaNs by
/// payload). Two inputs share a digest key only if they would produce
/// bit-identical inference — which is what makes the digest safe to key
/// a cross-request result cache with.
pub fn input_digest(input: &[f32]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(input.len() as u64);
    for v in input {
        h.write_bytes(&v.to_bits().to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> EvidenceRecord {
        let mut r = EvidenceRecord {
            index: 3,
            logical_time: 3,
            kind: RecordKind::InferencePerformed,
            fields: vec![
                ("class".into(), Value::U64(2)),
                ("conf".into(), Value::F64(0.9)),
            ],
            prev_hash: 0xdead,
            hash: 0,
        };
        r.hash = r.computed_hash();
        r
    }

    #[test]
    fn hash_is_content_sensitive() {
        let base = record();
        assert_eq!(base.hash, base.computed_hash());
        let mut tampered = base.clone();
        tampered.fields[0].1 = Value::U64(3);
        assert_ne!(tampered.computed_hash(), base.hash);
        let mut tampered = base.clone();
        tampered.prev_hash = 0xbeef;
        assert_ne!(tampered.computed_hash(), base.hash);
        let mut tampered = base.clone();
        tampered.kind = RecordKind::MonitorVerdict;
        assert_ne!(tampered.computed_hash(), base.hash);
    }

    #[test]
    fn field_lookup() {
        let r = record();
        assert_eq!(r.field("class"), Some(&Value::U64(2)));
        assert_eq!(r.field("missing"), None);
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(5u64).to_string(), "5");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(1.5f64).to_string(), "1.5");
    }

    #[test]
    fn kind_tags_stable() {
        assert_eq!(RecordKind::TimingAnalysis.tag(), "timing_analysis");
        assert_eq!(RecordKind::PatternDecision.to_string(), "pattern_decision");
        assert_eq!(RecordKind::CacheHit.tag(), "cache_hit");
    }

    #[test]
    fn input_digest_is_exact_and_length_aware() {
        let a = input_digest(&[0.5, -1.25]);
        assert_eq!(a, input_digest(&[0.5, -1.25]), "digest must be stable");
        assert_ne!(a, input_digest(&[0.5, -1.25, 0.0]));
        // Bit-exact: +0.0 and -0.0 are different inputs.
        assert_ne!(input_digest(&[0.0]), input_digest(&[-0.0]));
        // Length is part of the key: [0.0] vs [] vs [0.0, 0.0] all differ.
        assert_ne!(input_digest(&[0.0]), input_digest(&[]));
        assert_ne!(input_digest(&[0.0]), input_digest(&[0.0, 0.0]));
    }

    #[test]
    fn distinct_value_types_hash_differently() {
        // Value::U64(1) vs Value::Bool(true) must not collide trivially.
        let mut a = Fnv64::new();
        Value::U64(1).hash_into(&mut a);
        let mut b = Fnv64::new();
        Value::Bool(true).hash_into(&mut b);
        assert_ne!(a.finish(), b.finish());
    }
}
