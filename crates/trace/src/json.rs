//! A minimal dependency-free JSON writer.
//!
//! Used to export evidence chains and experiment reports. Writing (not
//! parsing) is all the workspace needs, and keeping the safety-critical
//! core free of third-party serialisation code is itself part of the FUSA
//! posture (every dependency is qualification surface).

use std::collections::BTreeMap;

use crate::chain::EvidenceChain;
use crate::record::Value;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (serialised via `f64`; NaN/inf serialise as `null` per
    /// the JSON standard's lack of them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts a key into an object (no-op with a debug assertion on
    /// non-objects).
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        if let Json::Obj(map) = self {
            map.insert(key.into(), value);
        } else {
            debug_assert!(false, "set on non-object Json");
        }
        self
    }

    /// Serialises to a compact string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers print without a fractional part.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&Value> for Json {
    fn from(v: &Value) -> Self {
        match v {
            Value::Str(s) => Json::Str(s.clone()),
            Value::U64(n) => Json::Num(*n as f64),
            Value::F64(n) => Json::Num(*n),
            Value::Bool(b) => Json::Bool(*b),
        }
    }
}

/// Serialises an evidence chain to JSON (campaign, head hash, records).
pub fn chain_to_json(chain: &EvidenceChain) -> Json {
    let records: Vec<Json> = chain
        .records()
        .iter()
        .map(|r| {
            let mut obj = Json::object();
            obj.set("index", Json::from(r.index))
                .set("time", Json::from(r.logical_time))
                .set("kind", Json::from(r.kind.tag()))
                .set("prev_hash", Json::Str(format!("{:016x}", r.prev_hash)))
                .set("hash", Json::Str(format!("{:016x}", r.hash)));
            let mut fields = Json::object();
            for (k, v) in &r.fields {
                fields.set(k.clone(), Json::from(v));
            }
            obj.set("fields", fields);
            obj
        })
        .collect();
    let mut root = Json::object();
    root.set("campaign", Json::from(chain.campaign()))
        .set(
            "head_hash",
            Json::Str(format!("{:016x}", chain.head_hash())),
        )
        .set("records", Json::Arr(records));
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    #[test]
    fn scalars_serialise() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.5).to_string_compact(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::from("hi").to_string_compact(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(s.to_string_compact(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn arrays_and_objects() {
        let mut obj = Json::object();
        obj.set("b", Json::from(2u64));
        obj.set("a", Json::Arr(vec![Json::from(1u64), Json::from("x")]));
        // Keys are sorted deterministically.
        assert_eq!(obj.to_string_compact(), r#"{"a":[1,"x"],"b":2}"#);
    }

    #[test]
    fn chain_serialises() {
        let mut c = EvidenceChain::new("camp");
        c.append(
            RecordKind::ModelTrained,
            vec![
                ("digest".into(), Value::U64(255)),
                ("name".into(), Value::Str("m1".into())),
            ],
        );
        let json = chain_to_json(&c).to_string_compact();
        assert!(json.contains("\"campaign\":\"camp\""));
        assert!(json.contains("\"kind\":\"model_trained\""));
        assert!(json.contains("\"digest\":255"));
        assert!(json.contains("\"name\":\"m1\""));
        assert!(json.contains("head_hash"));
    }

    #[test]
    fn value_conversion() {
        assert_eq!(Json::from(&Value::Bool(false)), Json::Bool(false));
        assert_eq!(Json::from(&Value::F64(1.5)), Json::Num(1.5));
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut o = Json::object();
            o.set("z", Json::from(1u64));
            o.set("a", Json::from(2u64));
            o.set("m", Json::Null);
            o.to_string_compact()
        };
        assert_eq!(build(), build());
    }
}
