//! The append-only, hash-chained evidence log.

use std::error::Error;
use std::fmt;

use crate::record::{EvidenceRecord, RecordKind, Value};

/// A chain-integrity defect found by [`EvidenceChain::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainDefect {
    /// Index of the first record whose integrity fails.
    pub index: u64,
    /// What failed.
    pub reason: DefectReason,
}

/// The kind of integrity failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefectReason {
    /// The record's stored hash does not match its content.
    HashMismatch,
    /// The record's `prev_hash` does not match its predecessor's hash.
    BrokenLink,
    /// Indices are not consecutive from zero.
    BadIndex,
}

impl fmt::Display for ChainDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reason = match self.reason {
            DefectReason::HashMismatch => "content hash mismatch",
            DefectReason::BrokenLink => "broken predecessor link",
            DefectReason::BadIndex => "non-consecutive index",
        };
        write!(
            f,
            "evidence chain defect at record {}: {reason}",
            self.index
        )
    }
}

impl Error for ChainDefect {}

/// An append-only evidence chain for one campaign/session.
///
/// See the crate docs for the integrity model.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceChain {
    campaign: String,
    records: Vec<EvidenceRecord>,
    clock: u64,
}

impl EvidenceChain {
    /// Creates an empty chain for a named campaign.
    pub fn new(campaign: impl Into<String>) -> Self {
        EvidenceChain {
            campaign: campaign.into(),
            records: Vec::new(),
            clock: 0,
        }
    }

    /// The campaign name.
    pub fn campaign(&self) -> &str {
        &self.campaign
    }

    /// Appends a record, returning its index.
    pub fn append(&mut self, kind: RecordKind, fields: Vec<(String, Value)>) -> u64 {
        let index = self.records.len() as u64;
        self.clock += 1;
        let prev_hash = self.records.last().map(|r| r.hash).unwrap_or(0);
        let mut record = EvidenceRecord {
            index,
            logical_time: self.clock,
            kind,
            fields,
            prev_hash,
            hash: 0,
        };
        record.hash = record.computed_hash();
        self.records.push(record);
        index
    }

    /// The records in order.
    pub fn records(&self) -> &[EvidenceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The hash of the latest record (the chain head), 0 when empty.
    pub fn head_hash(&self) -> u64 {
        self.records.last().map(|r| r.hash).unwrap_or(0)
    }

    /// Verifies the whole chain.
    ///
    /// # Errors
    ///
    /// Returns the first [`ChainDefect`] found.
    pub fn verify(&self) -> Result<(), ChainDefect> {
        let mut prev_hash = 0u64;
        for (i, r) in self.records.iter().enumerate() {
            if r.index != i as u64 {
                return Err(ChainDefect {
                    index: i as u64,
                    reason: DefectReason::BadIndex,
                });
            }
            if r.prev_hash != prev_hash {
                return Err(ChainDefect {
                    index: r.index,
                    reason: DefectReason::BrokenLink,
                });
            }
            if r.hash != r.computed_hash() {
                return Err(ChainDefect {
                    index: r.index,
                    reason: DefectReason::HashMismatch,
                });
            }
            prev_hash = r.hash;
        }
        Ok(())
    }

    /// Records matching a kind, in order.
    pub fn records_of_kind(&self, kind: RecordKind) -> Vec<&EvidenceRecord> {
        self.records.iter().filter(|r| r.kind == kind).collect()
    }

    /// **Integrity-experiment hook**: mutates a record in place, bypassing
    /// the append-only discipline. Exists so experiment E9 can measure
    /// tamper detection; production code must never call it.
    ///
    /// Returns `false` if the index is out of range.
    pub fn simulate_tamper<F: FnOnce(&mut EvidenceRecord)>(
        &mut self,
        index: usize,
        mutate: F,
    ) -> bool {
        match self.records.get_mut(index) {
            Some(r) => {
                mutate(r);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> EvidenceChain {
        let mut c = EvidenceChain::new("test");
        for i in 0..n {
            c.append(
                RecordKind::InferencePerformed,
                vec![("i".into(), Value::U64(i as u64))],
            );
        }
        c
    }

    #[test]
    fn append_links_records() {
        let c = chain(5);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.records()[0].prev_hash, 0);
        for w in c.records().windows(2) {
            assert_eq!(w[1].prev_hash, w[0].hash);
        }
        assert_eq!(c.head_hash(), c.records()[4].hash);
        c.verify().unwrap();
    }

    #[test]
    fn logical_time_monotone() {
        let c = chain(10);
        for w in c.records().windows(2) {
            assert!(w[1].logical_time > w[0].logical_time);
        }
    }

    #[test]
    fn tampering_content_detected() {
        let mut c = chain(10);
        c.simulate_tamper(4, |r| {
            r.fields[0].1 = Value::U64(999);
        });
        let defect = c.verify().unwrap_err();
        assert_eq!(defect.index, 4);
        assert_eq!(defect.reason, DefectReason::HashMismatch);
    }

    #[test]
    fn tampering_with_rehash_breaks_link() {
        // An attacker who recomputes the record's own hash still breaks
        // the successor's prev_hash link.
        let mut c = chain(10);
        c.simulate_tamper(4, |r| {
            r.fields[0].1 = Value::U64(999);
            r.hash = r.computed_hash();
        });
        let defect = c.verify().unwrap_err();
        assert_eq!(defect.index, 5);
        assert_eq!(defect.reason, DefectReason::BrokenLink);
    }

    #[test]
    fn tampering_last_record_with_rehash_is_undetected_by_design() {
        // The known limitation: rewriting the head and recomputing its
        // hash verifies — unless the head hash was anchored externally.
        let mut c = chain(3);
        let anchored_head = c.head_hash();
        c.simulate_tamper(2, |r| {
            r.fields[0].1 = Value::U64(999);
            r.hash = r.computed_hash();
        });
        assert!(c.verify().is_ok());
        // The external anchor catches it.
        assert_ne!(c.head_hash(), anchored_head);
    }

    #[test]
    fn index_tampering_detected() {
        let mut c = chain(5);
        c.simulate_tamper(2, |r| r.index = 7);
        let defect = c.verify().unwrap_err();
        assert_eq!(defect.reason, DefectReason::BadIndex);
    }

    #[test]
    fn records_of_kind_filters() {
        let mut c = chain(3);
        c.append(RecordKind::MonitorVerdict, vec![]);
        assert_eq!(c.records_of_kind(RecordKind::InferencePerformed).len(), 3);
        assert_eq!(c.records_of_kind(RecordKind::MonitorVerdict).len(), 1);
        assert_eq!(c.records_of_kind(RecordKind::ModelTrained).len(), 0);
    }

    #[test]
    fn tamper_out_of_range() {
        let mut c = chain(2);
        assert!(!c.simulate_tamper(9, |_| {}));
    }

    #[test]
    fn empty_chain_verifies() {
        let c = EvidenceChain::new("empty");
        c.verify().unwrap();
        assert_eq!(c.head_hash(), 0);
        assert_eq!(c.campaign(), "empty");
    }

    #[test]
    fn defect_display() {
        let d = ChainDefect {
            index: 3,
            reason: DefectReason::BrokenLink,
        };
        assert!(d.to_string().contains("record 3"));
    }
}
