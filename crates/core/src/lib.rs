#![forbid(unsafe_code)]
//! # safex-core
//!
//! The SAFEXPLAIN contribution proper: *"a flexible approach to allow the
//! certification — hence adoption — of DL-based solutions in CAIS"*. This
//! crate composes the four pillars into one deployable, certifiable
//! inference pipeline:
//!
//! * a DL model from `safex-nn` (float or quantised),
//! * runtime supervisors from `safex-supervision`,
//! * a safety pattern from `safex-patterns` matched to the target SIL,
//! * evidence recording into a `safex-trace` chain,
//! * and a certification report that binds model digests, monitor
//!   calibration, pattern behaviour statistics, timing bounds, and
//!   verification-objective coverage (`safex-fusa`) into one artefact.
//!
//! [`assemble`] provides the "flexible approach" entry point: given a
//! target SIL, trained model(s), and calibration data, it assembles the
//! recommended architecture ([`safex_patterns::Sil::recommended_pattern`])
//! with fitted monitors.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use safex_core::pipeline::PipelineBuilder;
//! use safex_patterns::channel::ConstantChannel;
//! use safex_patterns::pattern::Bare;
//! use safex_patterns::Sil;
//!
//! let pattern = Bare::new(ConstantChannel::new("stub", 0));
//! let mut pipeline = PipelineBuilder::new("demo", Sil::Sil1)
//!     .pattern(pattern)
//!     .allow_under_provisioned()
//!     .evidence("demo-campaign")
//!     .build()?;
//! let outcome = pipeline.decide(&[0.0, 1.0])?;
//! assert!(outcome.action.is_proceed());
//! assert!(pipeline.verify_evidence().is_ok());
//! # Ok(())
//! # }
//! ```

pub mod assemble;
pub mod campaign;
pub mod error;
pub mod health;
pub mod pipeline;
pub mod report;

pub use campaign::{
    chunk_lens, CampaignConfig, CampaignPattern, CampaignReport, CellReport, FaultClass,
    InputSupervision,
};
pub use error::CoreError;
pub use health::{
    HealthConfig, HealthMonitor, HealthState, HealthVerdict, LadderState, Transition,
};
pub use pipeline::{PipelineBuilder, SafePipeline};
