//! The certifiable inference pipeline.

use safex_nn::{HealthEvent, HealthSink};
use safex_patterns::criticality::PatternKind;
use safex_patterns::decision::{Action, FallbackReason};
use safex_patterns::pattern::SafetyPattern;
use safex_patterns::{Decision, Sil};
use safex_trace::record::{RecordKind, Value};
use safex_trace::EvidenceChain;

use crate::error::CoreError;
use crate::health::{HealthMonitor, HealthState, HealthVerdict};

/// Health supervision attached to a pipeline: the degradation-ladder
/// state machine plus the sink hardened engines publish into.
struct HealthWatch {
    monitor: HealthMonitor,
    sink: HealthSink,
    last_events: Vec<HealthEvent>,
}

/// A deployed pipeline: a safety pattern plus evidence recording and
/// operational statistics.
pub struct SafePipeline {
    name: String,
    sil: Sil,
    pattern: Box<dyn SafetyPattern>,
    chain: Option<EvidenceChain>,
    health: Option<HealthWatch>,
    decisions: u64,
    conservative: u64,
}

impl std::fmt::Debug for SafePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafePipeline")
            .field("name", &self.name)
            .field("sil", &self.sil)
            .field("pattern", &self.pattern.name())
            .field("decisions", &self.decisions)
            .field("conservative", &self.conservative)
            .field("traced", &self.chain.is_some())
            .field("health", &self.health.as_ref().map(|h| h.monitor.state()))
            .finish()
    }
}

impl SafePipeline {
    /// The pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The target integrity level.
    pub fn sil(&self) -> Sil {
        self.sil
    }

    /// The active pattern's name.
    pub fn pattern_name(&self) -> &'static str {
        self.pattern.name()
    }

    /// Decisions made so far.
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Conservative (fallback/safe-stop) decisions made so far.
    pub fn conservative_count(&self) -> u64 {
        self.conservative
    }

    /// Fraction of decisions that went conservative (0 when none made).
    pub fn conservative_rate(&self) -> f64 {
        if self.decisions == 0 {
            return 0.0;
        }
        self.conservative as f64 / self.decisions as f64
    }

    /// Renders a decision for one input, recording evidence if enabled.
    ///
    /// When health supervision is attached (see
    /// [`PipelineBuilder::health`]), the decision is additionally gated by
    /// the degradation ladder: health events drained after the pattern ran
    /// advance the [`HealthMonitor`], state transitions land in the
    /// evidence chain as [`RecordKind::HealthTransition`] records, and the
    /// post-step state can override the pattern's verdict — `Degraded`
    /// downgrades a proceed to a fallback on the same class
    /// ([`FallbackReason::Degraded`]), `SafeStop` forces a safe stop.
    ///
    /// # Errors
    ///
    /// Propagates pattern infrastructure failures as
    /// [`CoreError::Pattern`].
    pub fn decide(&mut self, input: &[f32]) -> Result<Decision, CoreError> {
        let mut decision = self.pattern.decide(input)?;
        if let Some(health) = &mut self.health {
            let events = health.sink.drain();
            // Corrected faults are warnings (the hit happened but the
            // damage is gone — see `HealthConfig::warn_budget`); anything
            // else drained this decision is unhealthy as before.
            let verdict = if events.is_empty() {
                HealthVerdict::Clean
            } else if events
                .iter()
                .all(|e| matches!(e, HealthEvent::CorrectedFault { .. }))
            {
                HealthVerdict::Warning
            } else {
                HealthVerdict::Unhealthy
            };
            let transition = health.monitor.step_verdict(verdict);
            let event_count = events.len() as u64;
            health.last_events = events;
            match health.monitor.state() {
                HealthState::Nominal => {}
                HealthState::Degraded => {
                    if let Action::Proceed { class, .. } = decision.action {
                        decision = Decision::fallback(
                            class,
                            FallbackReason::Degraded,
                            decision.channel_evals,
                            decision.monitor_evals,
                        );
                    }
                }
                HealthState::SafeStop => {
                    if !matches!(decision.action, Action::SafeStop { .. }) {
                        decision = Decision::safe_stop(
                            FallbackReason::Degraded,
                            decision.channel_evals,
                            decision.monitor_evals,
                        );
                    }
                }
            }
            if let Some(t) = transition {
                if let Some(chain) = &mut self.chain {
                    chain.append(
                        RecordKind::HealthTransition,
                        vec![
                            ("pipeline".into(), Value::Str(self.name.clone())),
                            ("from".into(), Value::Str(t.from.tag().into())),
                            ("to".into(), Value::Str(t.to.tag().into())),
                            ("decision".into(), Value::U64(t.at_decision)),
                            ("events".into(), Value::U64(event_count)),
                        ],
                    );
                }
            }
        }
        self.note(&decision);
        Ok(decision)
    }

    /// Renders decisions for a batch of inputs, in input order.
    ///
    /// Semantically identical to calling [`SafePipeline::decide`] per
    /// input: patterns are stateful, so the batch is processed
    /// sequentially and evidence records land in input order. Parallelism
    /// lives *inside* each decision (redundant channels, engine pools) —
    /// see the batch contract on
    /// [`SafetyPattern::decide_batch`].
    ///
    /// # Errors
    ///
    /// Returns the first infrastructure failure; no decisions are
    /// recorded for a failed batch.
    pub fn decide_batch<I: AsRef<[f32]>>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Decision>, CoreError> {
        if self.health.is_some() {
            // The degradation ladder consumes health events *per
            // decision*, so the batch must interleave pattern and monitor
            // steps — semantically identical either way (see above).
            return inputs
                .iter()
                .map(|input| self.decide(input.as_ref()))
                .collect();
        }
        let refs: Vec<&[f32]> = inputs.iter().map(AsRef::as_ref).collect();
        let decisions = self.pattern.decide_batch(&refs)?;
        for decision in &decisions {
            self.note(decision);
        }
        Ok(decisions)
    }

    /// Updates counters and appends the evidence record for one decision.
    fn note(&mut self, decision: &Decision) {
        self.decisions += 1;
        if decision.action.is_conservative() {
            self.conservative += 1;
        }
        if let Some(chain) = &mut self.chain {
            let (action_tag, class, reason): (&str, i64, String) = match decision.action {
                Action::Proceed { class, .. } => ("proceed", class as i64, String::new()),
                Action::Fallback { class, reason } => {
                    ("fallback", class as i64, reason.to_string())
                }
                Action::SafeStop { reason } => ("safe_stop", -1, reason.to_string()),
                // `Action` is #[non_exhaustive]; record unknown variants
                // conservatively.
                _ => ("unknown", -1, String::new()),
            };
            chain.append(
                RecordKind::PatternDecision,
                vec![
                    ("pipeline".into(), Value::Str(self.name.clone())),
                    ("action".into(), Value::Str(action_tag.into())),
                    ("class".into(), Value::U64(class.max(0) as u64)),
                    ("stopped".into(), Value::Bool(class < 0)),
                    ("reason".into(), Value::Str(reason)),
                    ("cost".into(), Value::U64(decision.total_cost() as u64)),
                ],
            );
        }
    }

    /// The health monitor, if health supervision is attached.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref().map(|h| &h.monitor)
    }

    /// Current operating state (`None` when no health supervision).
    pub fn health_state(&self) -> Option<HealthState> {
        self.health.as_ref().map(|h| h.monitor.state())
    }

    /// Health events consumed by the most recent decision (empty when no
    /// health supervision is attached or the last decision was clean).
    pub fn last_health_events(&self) -> &[HealthEvent] {
        self.health
            .as_ref()
            .map_or(&[], |h| h.last_events.as_slice())
    }

    /// Reports an externally-detected health event (e.g. from a watchdog
    /// or platform monitor outside the inference engines). It is consumed
    /// by the *next* decision's ladder step.
    pub fn report_health(&mut self, event: HealthEvent) {
        if let Some(health) = &self.health {
            health.sink.push(event);
        }
    }

    /// The evidence chain, if tracing is enabled.
    pub fn evidence(&self) -> Option<&EvidenceChain> {
        self.chain.as_ref()
    }

    /// Mutable evidence access, so callers can append their own campaign
    /// records (dataset generation, training, timing analyses).
    pub fn evidence_mut(&mut self) -> Option<&mut EvidenceChain> {
        self.chain.as_mut()
    }

    /// Verifies the evidence chain (trivially `Ok` when tracing is off).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] describing the first chain
    /// defect.
    pub fn verify_evidence(&self) -> Result<(), CoreError> {
        if let Some(chain) = &self.chain {
            chain
                .verify()
                .map_err(|d| CoreError::BadAssembly(format!("evidence chain broken: {d}")))?;
        }
        Ok(())
    }
}

/// Builder for [`SafePipeline`].
pub struct PipelineBuilder {
    name: String,
    sil: Sil,
    pattern: Option<Box<dyn SafetyPattern>>,
    campaign: Option<String>,
    health: Option<(HealthMonitor, HealthSink)>,
    allow_under_provisioned: bool,
}

impl std::fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("name", &self.name)
            .field("sil", &self.sil)
            .field("pattern", &self.pattern.as_ref().map(|p| p.name()))
            .field("campaign", &self.campaign)
            .finish()
    }
}

impl PipelineBuilder {
    /// Starts a pipeline for a named function at a target SIL.
    pub fn new(name: impl Into<String>, sil: Sil) -> Self {
        PipelineBuilder {
            name: name.into(),
            sil,
            pattern: None,
            campaign: None,
            health: None,
            allow_under_provisioned: false,
        }
    }

    /// Sets the safety pattern (required; boxed internally).
    pub fn pattern(mut self, pattern: impl SafetyPattern + 'static) -> Self {
        self.pattern = Some(Box::new(pattern));
        self
    }

    /// Sets an already-boxed safety pattern, for callers that select the
    /// pattern at runtime (e.g. the SIL assembly factory).
    pub fn pattern_boxed(mut self, pattern: Box<dyn SafetyPattern>) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Enables evidence recording into a named campaign chain.
    pub fn evidence(mut self, campaign: impl Into<String>) -> Self {
        self.campaign = Some(campaign.into());
        self
    }

    /// Attaches runtime health supervision: hardened engines publish
    /// [`HealthEvent`]s into `sink` (create the sink first and attach a
    /// clone to each engine via
    /// [`HardenedEngine::attach_sink`](safex_nn::HardenedEngine::attach_sink)),
    /// and `monitor` turns the per-decision event stream into the
    /// degradation ladder that gates every decision.
    pub fn health(mut self, monitor: HealthMonitor, sink: HealthSink) -> Self {
        self.health = Some((monitor, sink));
        self
    }

    /// Accepts a pattern weaker than the SIL recommendation (the check
    /// otherwise fails the build — certification would flag it anyway).
    pub fn allow_under_provisioned(mut self) -> Self {
        self.allow_under_provisioned = true;
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] when no pattern is set, or
    /// [`CoreError::UnderProvisioned`] when the pattern is below the SIL
    /// recommendation and that was not explicitly allowed.
    pub fn build(self) -> Result<SafePipeline, CoreError> {
        let pattern = self
            .pattern
            .ok_or_else(|| CoreError::BadAssembly("no safety pattern configured".into()))?;
        if !self.allow_under_provisioned {
            let recommended = self.sil.recommended_pattern();
            if let Some(configured) = kind_from_name(pattern.name()) {
                if configured < recommended {
                    return Err(CoreError::UnderProvisioned {
                        sil: self.sil,
                        recommended: recommended.name(),
                        configured: pattern.name(),
                    });
                }
            }
        }
        Ok(SafePipeline {
            name: self.name,
            sil: self.sil,
            pattern,
            chain: self.campaign.map(EvidenceChain::new),
            health: self.health.map(|(monitor, sink)| HealthWatch {
                monitor,
                sink,
                last_events: Vec::new(),
            }),
            decisions: 0,
            conservative: 0,
        })
    }
}

/// Maps a pattern's stable name back to its [`PatternKind`] for the
/// provisioning check (unknown/custom patterns are not checked).
fn kind_from_name(name: &str) -> Option<PatternKind> {
    match name {
        "bare" => Some(PatternKind::Bare),
        "monitor_actuator" => Some(PatternKind::MonitorActuator),
        "simplex" => Some(PatternKind::Simplex),
        "safety_bag" => Some(PatternKind::SafetyBag),
        "recovery_block" => Some(PatternKind::RecoveryBlock),
        "two_out_of_three" => Some(PatternKind::TwoOutOfThree),
        "cascade" => Some(PatternKind::Cascade),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_patterns::channel::{ConstantChannel, RuleChannel};
    use safex_patterns::pattern::{Bare, MonitorActuator, TwoOutOfThree};

    fn bare() -> Bare {
        Bare::new(ConstantChannel::new("c", 1))
    }

    #[test]
    fn builder_requires_pattern() {
        assert!(matches!(
            PipelineBuilder::new("p", Sil::Sil1).build(),
            Err(CoreError::BadAssembly(_))
        ));
    }

    #[test]
    fn under_provisioning_check() {
        // Bare at SIL3 without the waiver: rejected.
        assert!(matches!(
            PipelineBuilder::new("p", Sil::Sil3).pattern(bare()).build(),
            Err(CoreError::UnderProvisioned { .. })
        ));
        // With the waiver: accepted.
        assert!(PipelineBuilder::new("p", Sil::Sil3)
            .pattern(bare())
            .allow_under_provisioned()
            .build()
            .is_ok());
        // A 2oo3 at SIL1 exceeds the recommendation: fine.
        let two = TwoOutOfThree::new(
            ConstantChannel::new("a", 0),
            ConstantChannel::new("b", 0),
            ConstantChannel::new("c", 0),
        )
        .unwrap();
        assert!(PipelineBuilder::new("p", Sil::Sil1)
            .pattern(two)
            .build()
            .is_ok());
    }

    #[test]
    fn decide_counts_and_records() {
        // Monitor-actuator over a rule channel whose confidence is 1.0.
        let ma = MonitorActuator::new(
            RuleChannel::new("r", |x: &[f32]| usize::from(x[0] > 0.5)),
            0.5,
            0,
        )
        .unwrap();
        let mut p = PipelineBuilder::new("demo", Sil::Sil1)
            .pattern(ma)
            .evidence("t")
            .build()
            .unwrap();
        p.decide(&[0.9]).unwrap();
        p.decide(&[0.1]).unwrap();
        assert_eq!(p.decision_count(), 2);
        assert_eq!(p.conservative_count(), 0);
        assert_eq!(p.conservative_rate(), 0.0);
        let chain = p.evidence().unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(
            chain.records()[0].field("action"),
            Some(&Value::Str("proceed".into()))
        );
        p.verify_evidence().unwrap();
    }

    #[test]
    fn conservative_decisions_tracked() {
        // Confidence floor of 1.0 trips on the model channel below.
        let ma = MonitorActuator::new(
            RuleChannel::new("r", |_: &[f32]| 0),
            1.0,
            2, // temporal consistency holds the first frame back
        )
        .unwrap();
        let mut p = PipelineBuilder::new("demo", Sil::Sil1)
            .pattern(ma)
            .evidence("t")
            .build()
            .unwrap();
        let d = p.decide(&[0.0]).unwrap();
        assert!(d.action.is_conservative());
        assert_eq!(p.conservative_rate(), 1.0);
        let rec = &p.evidence().unwrap().records()[0];
        assert_eq!(rec.field("action"), Some(&Value::Str("safe_stop".into())));
        assert_eq!(rec.field("stopped"), Some(&Value::Bool(true)));
    }

    #[test]
    fn evidence_optional() {
        let mut p = PipelineBuilder::new("quiet", Sil::Sil1)
            .pattern(bare())
            .allow_under_provisioned()
            .build()
            .unwrap();
        p.decide(&[0.0]).unwrap();
        assert!(p.evidence().is_none());
        p.verify_evidence().unwrap();
    }

    #[test]
    fn evidence_mut_allows_campaign_records() {
        let mut p = PipelineBuilder::new("demo", Sil::Sil2)
            .pattern(bare())
            .allow_under_provisioned()
            .evidence("t")
            .build()
            .unwrap();
        p.evidence_mut()
            .unwrap()
            .append(RecordKind::ModelTrained, vec![]);
        p.decide(&[0.0]).unwrap();
        assert_eq!(p.evidence().unwrap().len(), 2);
        p.verify_evidence().unwrap();
    }

    mod health {
        use super::*;
        use crate::health::{HealthConfig, HealthMonitor, HealthState};
        use safex_nn::{HealthEvent, HealthSink};

        fn event() -> HealthEvent {
            HealthEvent::ChecksumMismatch {
                layer: 0,
                expected: 1,
                actual: 2,
                staleness: 1,
            }
        }

        /// A pipeline over a rule channel with the quick ladder used by
        /// the health unit tests: degrade at 2 events in a window of 8,
        /// stop at 4, recover after 3 clean, resume after 5.
        fn pipeline() -> (SafePipeline, HealthSink) {
            let sink = HealthSink::new();
            let monitor = HealthMonitor::new(HealthConfig {
                window: 8,
                degrade_events: 2,
                stop_events: 4,
                recover_after: 3,
                resume_after: 5,
                warn_budget: 3,
            })
            .unwrap();
            let ma = MonitorActuator::new(
                RuleChannel::new("r", |x: &[f32]| usize::from(x[0] > 0.5)),
                0.5,
                0,
            )
            .unwrap();
            let p = PipelineBuilder::new("hardened", Sil::Sil1)
                .pattern(ma)
                .evidence("t")
                .health(monitor, sink.clone())
                .build()
                .unwrap();
            (p, sink)
        }

        #[test]
        fn nominal_passes_decisions_through() {
            let (mut p, _sink) = pipeline();
            let d = p.decide(&[0.9]).unwrap();
            assert!(d.action.is_proceed());
            assert_eq!(p.health_state(), Some(HealthState::Nominal));
            assert!(p.last_health_events().is_empty());
        }

        #[test]
        fn degraded_downgrades_proceed_to_fallback() {
            let (mut p, sink) = pipeline();
            sink.push(event());
            p.decide(&[0.9]).unwrap(); // 1st event: still nominal
            sink.push(event());
            let d = p.decide(&[0.9]).unwrap(); // 2nd event: degraded
            assert_eq!(p.health_state(), Some(HealthState::Degraded));
            match d.action {
                Action::Fallback { class, reason } => {
                    assert_eq!(class, 1, "fallback keeps the proposed class");
                    assert_eq!(reason, FallbackReason::Degraded);
                }
                other => panic!("expected degraded fallback, got {other:?}"),
            }
            assert_eq!(p.last_health_events().len(), 1);
        }

        #[test]
        fn safe_stop_overrides_everything() {
            let (mut p, sink) = pipeline();
            for _ in 0..4 {
                sink.push(event());
                p.decide(&[0.9]).unwrap();
            }
            assert_eq!(p.health_state(), Some(HealthState::SafeStop));
            let d = p.decide(&[0.9]).unwrap();
            assert!(matches!(d.action, Action::SafeStop { .. }));
        }

        #[test]
        fn transitions_land_in_the_evidence_chain() {
            let (mut p, sink) = pipeline();
            // Escalate to safe stop, then earn the way back down.
            for _ in 0..4 {
                sink.push(event());
                p.decide(&[0.9]).unwrap();
            }
            for _ in 0..8 {
                p.decide(&[0.9]).unwrap();
            }
            assert_eq!(p.health_state(), Some(HealthState::Nominal));
            let tags: Vec<(String, String)> = p
                .evidence()
                .unwrap()
                .records()
                .iter()
                .filter(|r| r.kind == RecordKind::HealthTransition)
                .map(|r| {
                    let f = |k: &str| match r.field(k) {
                        Some(Value::Str(s)) => s.clone(),
                        other => panic!("bad field {k}: {other:?}"),
                    };
                    (f("from"), f("to"))
                })
                .collect();
            assert_eq!(
                tags,
                vec![
                    ("nominal".into(), "degraded".into()),
                    ("degraded".into(), "safe_stop".into()),
                    ("safe_stop".into(), "degraded".into()),
                    ("degraded".into(), "nominal".into()),
                ],
                "every ladder transition is evidence"
            );
            p.verify_evidence().unwrap();
        }

        #[test]
        fn batch_path_interleaves_health_steps() {
            let (mut p, sink) = pipeline();
            sink.push(event());
            sink.push(event());
            // Both queued events are consumed by the FIRST decision of the
            // batch (one unhealthy step), so the ladder sees 1 unhealthy
            // decision, not 2 — still nominal.
            let ds = p.decide_batch(&[vec![0.9f32], vec![0.9]]).unwrap();
            assert_eq!(ds.len(), 2);
            assert_eq!(p.health_state(), Some(HealthState::Nominal));
            assert_eq!(p.health().unwrap().unhealthy_in_window(), 1);
        }

        #[test]
        fn report_health_feeds_the_next_decision() {
            let (mut p, _sink) = pipeline();
            p.report_health(event());
            p.report_health(event());
            p.decide(&[0.9]).unwrap();
            assert_eq!(p.last_health_events().len(), 2);
        }
    }

    #[test]
    fn accessors() {
        let p = PipelineBuilder::new("acc", Sil::Sil2)
            .pattern(bare())
            .allow_under_provisioned()
            .build()
            .unwrap();
        assert_eq!(p.name(), "acc");
        assert_eq!(p.sil(), Sil::Sil2);
        assert_eq!(p.pattern_name(), "bare");
        assert!(format!("{p:?}").contains("acc"));
    }
}
