//! The certifiable inference pipeline.

use safex_patterns::criticality::PatternKind;
use safex_patterns::decision::Action;
use safex_patterns::pattern::SafetyPattern;
use safex_patterns::{Decision, Sil};
use safex_trace::record::{RecordKind, Value};
use safex_trace::EvidenceChain;

use crate::error::CoreError;

/// A deployed pipeline: a safety pattern plus evidence recording and
/// operational statistics.
pub struct SafePipeline {
    name: String,
    sil: Sil,
    pattern: Box<dyn SafetyPattern>,
    chain: Option<EvidenceChain>,
    decisions: u64,
    conservative: u64,
}

impl std::fmt::Debug for SafePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafePipeline")
            .field("name", &self.name)
            .field("sil", &self.sil)
            .field("pattern", &self.pattern.name())
            .field("decisions", &self.decisions)
            .field("conservative", &self.conservative)
            .field("traced", &self.chain.is_some())
            .finish()
    }
}

impl SafePipeline {
    /// The pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The target integrity level.
    pub fn sil(&self) -> Sil {
        self.sil
    }

    /// The active pattern's name.
    pub fn pattern_name(&self) -> &'static str {
        self.pattern.name()
    }

    /// Decisions made so far.
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Conservative (fallback/safe-stop) decisions made so far.
    pub fn conservative_count(&self) -> u64 {
        self.conservative
    }

    /// Fraction of decisions that went conservative (0 when none made).
    pub fn conservative_rate(&self) -> f64 {
        if self.decisions == 0 {
            return 0.0;
        }
        self.conservative as f64 / self.decisions as f64
    }

    /// Renders a decision for one input, recording evidence if enabled.
    ///
    /// # Errors
    ///
    /// Propagates pattern infrastructure failures as
    /// [`CoreError::Pattern`].
    pub fn decide(&mut self, input: &[f32]) -> Result<Decision, CoreError> {
        let decision = self.pattern.decide(input)?;
        self.note(&decision);
        Ok(decision)
    }

    /// Renders decisions for a batch of inputs, in input order.
    ///
    /// Semantically identical to calling [`SafePipeline::decide`] per
    /// input: patterns are stateful, so the batch is processed
    /// sequentially and evidence records land in input order. Parallelism
    /// lives *inside* each decision (redundant channels, engine pools) —
    /// see the batch contract on
    /// [`SafetyPattern::decide_batch`].
    ///
    /// # Errors
    ///
    /// Returns the first infrastructure failure; no decisions are
    /// recorded for a failed batch.
    pub fn decide_batch<I: AsRef<[f32]>>(
        &mut self,
        inputs: &[I],
    ) -> Result<Vec<Decision>, CoreError> {
        let refs: Vec<&[f32]> = inputs.iter().map(AsRef::as_ref).collect();
        let decisions = self.pattern.decide_batch(&refs)?;
        for decision in &decisions {
            self.note(decision);
        }
        Ok(decisions)
    }

    /// Updates counters and appends the evidence record for one decision.
    fn note(&mut self, decision: &Decision) {
        self.decisions += 1;
        if decision.action.is_conservative() {
            self.conservative += 1;
        }
        if let Some(chain) = &mut self.chain {
            let (action_tag, class, reason): (&str, i64, String) = match decision.action {
                Action::Proceed { class, .. } => ("proceed", class as i64, String::new()),
                Action::Fallback { class, reason } => {
                    ("fallback", class as i64, reason.to_string())
                }
                Action::SafeStop { reason } => ("safe_stop", -1, reason.to_string()),
                // `Action` is #[non_exhaustive]; record unknown variants
                // conservatively.
                _ => ("unknown", -1, String::new()),
            };
            chain.append(
                RecordKind::PatternDecision,
                vec![
                    ("pipeline".into(), Value::Str(self.name.clone())),
                    ("action".into(), Value::Str(action_tag.into())),
                    ("class".into(), Value::U64(class.max(0) as u64)),
                    ("stopped".into(), Value::Bool(class < 0)),
                    ("reason".into(), Value::Str(reason)),
                    ("cost".into(), Value::U64(decision.total_cost() as u64)),
                ],
            );
        }
    }

    /// The evidence chain, if tracing is enabled.
    pub fn evidence(&self) -> Option<&EvidenceChain> {
        self.chain.as_ref()
    }

    /// Mutable evidence access, so callers can append their own campaign
    /// records (dataset generation, training, timing analyses).
    pub fn evidence_mut(&mut self) -> Option<&mut EvidenceChain> {
        self.chain.as_mut()
    }

    /// Verifies the evidence chain (trivially `Ok` when tracing is off).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] describing the first chain
    /// defect.
    pub fn verify_evidence(&self) -> Result<(), CoreError> {
        if let Some(chain) = &self.chain {
            chain
                .verify()
                .map_err(|d| CoreError::BadAssembly(format!("evidence chain broken: {d}")))?;
        }
        Ok(())
    }
}

/// Builder for [`SafePipeline`].
pub struct PipelineBuilder {
    name: String,
    sil: Sil,
    pattern: Option<Box<dyn SafetyPattern>>,
    campaign: Option<String>,
    allow_under_provisioned: bool,
}

impl std::fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("name", &self.name)
            .field("sil", &self.sil)
            .field("pattern", &self.pattern.as_ref().map(|p| p.name()))
            .field("campaign", &self.campaign)
            .finish()
    }
}

impl PipelineBuilder {
    /// Starts a pipeline for a named function at a target SIL.
    pub fn new(name: impl Into<String>, sil: Sil) -> Self {
        PipelineBuilder {
            name: name.into(),
            sil,
            pattern: None,
            campaign: None,
            allow_under_provisioned: false,
        }
    }

    /// Sets the safety pattern (required; boxed internally).
    pub fn pattern(mut self, pattern: impl SafetyPattern + 'static) -> Self {
        self.pattern = Some(Box::new(pattern));
        self
    }

    /// Sets an already-boxed safety pattern, for callers that select the
    /// pattern at runtime (e.g. the SIL assembly factory).
    pub fn pattern_boxed(mut self, pattern: Box<dyn SafetyPattern>) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Enables evidence recording into a named campaign chain.
    pub fn evidence(mut self, campaign: impl Into<String>) -> Self {
        self.campaign = Some(campaign.into());
        self
    }

    /// Accepts a pattern weaker than the SIL recommendation (the check
    /// otherwise fails the build — certification would flag it anyway).
    pub fn allow_under_provisioned(mut self) -> Self {
        self.allow_under_provisioned = true;
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] when no pattern is set, or
    /// [`CoreError::UnderProvisioned`] when the pattern is below the SIL
    /// recommendation and that was not explicitly allowed.
    pub fn build(self) -> Result<SafePipeline, CoreError> {
        let pattern = self
            .pattern
            .ok_or_else(|| CoreError::BadAssembly("no safety pattern configured".into()))?;
        if !self.allow_under_provisioned {
            let recommended = self.sil.recommended_pattern();
            if let Some(configured) = kind_from_name(pattern.name()) {
                if configured < recommended {
                    return Err(CoreError::UnderProvisioned {
                        sil: self.sil,
                        recommended: recommended.name(),
                        configured: pattern.name(),
                    });
                }
            }
        }
        Ok(SafePipeline {
            name: self.name,
            sil: self.sil,
            pattern,
            chain: self.campaign.map(EvidenceChain::new),
            decisions: 0,
            conservative: 0,
        })
    }
}

/// Maps a pattern's stable name back to its [`PatternKind`] for the
/// provisioning check (unknown/custom patterns are not checked).
fn kind_from_name(name: &str) -> Option<PatternKind> {
    match name {
        "bare" => Some(PatternKind::Bare),
        "monitor_actuator" => Some(PatternKind::MonitorActuator),
        "simplex" => Some(PatternKind::Simplex),
        "safety_bag" => Some(PatternKind::SafetyBag),
        "recovery_block" => Some(PatternKind::RecoveryBlock),
        "two_out_of_three" => Some(PatternKind::TwoOutOfThree),
        "cascade" => Some(PatternKind::Cascade),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_patterns::channel::{ConstantChannel, RuleChannel};
    use safex_patterns::pattern::{Bare, MonitorActuator, TwoOutOfThree};

    fn bare() -> Bare {
        Bare::new(ConstantChannel::new("c", 1))
    }

    #[test]
    fn builder_requires_pattern() {
        assert!(matches!(
            PipelineBuilder::new("p", Sil::Sil1).build(),
            Err(CoreError::BadAssembly(_))
        ));
    }

    #[test]
    fn under_provisioning_check() {
        // Bare at SIL3 without the waiver: rejected.
        assert!(matches!(
            PipelineBuilder::new("p", Sil::Sil3).pattern(bare()).build(),
            Err(CoreError::UnderProvisioned { .. })
        ));
        // With the waiver: accepted.
        assert!(PipelineBuilder::new("p", Sil::Sil3)
            .pattern(bare())
            .allow_under_provisioned()
            .build()
            .is_ok());
        // A 2oo3 at SIL1 exceeds the recommendation: fine.
        let two = TwoOutOfThree::new(
            ConstantChannel::new("a", 0),
            ConstantChannel::new("b", 0),
            ConstantChannel::new("c", 0),
        )
        .unwrap();
        assert!(PipelineBuilder::new("p", Sil::Sil1)
            .pattern(two)
            .build()
            .is_ok());
    }

    #[test]
    fn decide_counts_and_records() {
        // Monitor-actuator over a rule channel whose confidence is 1.0.
        let ma = MonitorActuator::new(
            RuleChannel::new("r", |x: &[f32]| usize::from(x[0] > 0.5)),
            0.5,
            0,
        )
        .unwrap();
        let mut p = PipelineBuilder::new("demo", Sil::Sil1)
            .pattern(ma)
            .evidence("t")
            .build()
            .unwrap();
        p.decide(&[0.9]).unwrap();
        p.decide(&[0.1]).unwrap();
        assert_eq!(p.decision_count(), 2);
        assert_eq!(p.conservative_count(), 0);
        assert_eq!(p.conservative_rate(), 0.0);
        let chain = p.evidence().unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(
            chain.records()[0].field("action"),
            Some(&Value::Str("proceed".into()))
        );
        p.verify_evidence().unwrap();
    }

    #[test]
    fn conservative_decisions_tracked() {
        // Confidence floor of 1.0 trips on the model channel below.
        let ma = MonitorActuator::new(
            RuleChannel::new("r", |_: &[f32]| 0),
            1.0,
            2, // temporal consistency holds the first frame back
        )
        .unwrap();
        let mut p = PipelineBuilder::new("demo", Sil::Sil1)
            .pattern(ma)
            .evidence("t")
            .build()
            .unwrap();
        let d = p.decide(&[0.0]).unwrap();
        assert!(d.action.is_conservative());
        assert_eq!(p.conservative_rate(), 1.0);
        let rec = &p.evidence().unwrap().records()[0];
        assert_eq!(rec.field("action"), Some(&Value::Str("safe_stop".into())));
        assert_eq!(rec.field("stopped"), Some(&Value::Bool(true)));
    }

    #[test]
    fn evidence_optional() {
        let mut p = PipelineBuilder::new("quiet", Sil::Sil1)
            .pattern(bare())
            .allow_under_provisioned()
            .build()
            .unwrap();
        p.decide(&[0.0]).unwrap();
        assert!(p.evidence().is_none());
        p.verify_evidence().unwrap();
    }

    #[test]
    fn evidence_mut_allows_campaign_records() {
        let mut p = PipelineBuilder::new("demo", Sil::Sil2)
            .pattern(bare())
            .allow_under_provisioned()
            .evidence("t")
            .build()
            .unwrap();
        p.evidence_mut()
            .unwrap()
            .append(RecordKind::ModelTrained, vec![]);
        p.decide(&[0.0]).unwrap();
        assert_eq!(p.evidence().unwrap().len(), 2);
        p.verify_evidence().unwrap();
    }

    #[test]
    fn accessors() {
        let p = PipelineBuilder::new("acc", Sil::Sil2)
            .pattern(bare())
            .allow_under_provisioned()
            .build()
            .unwrap();
        assert_eq!(p.name(), "acc");
        assert_eq!(p.sil(), Sil::Sil2);
        assert_eq!(p.pattern_name(), "bare");
        assert!(format!("{p:?}").contains("acc"));
    }
}
