//! Runtime health monitoring and graceful degradation.
//!
//! Detection alone does not make a system safe — the pipeline must *act*
//! on what the hardened engines report. [`HealthMonitor`] is the
//! degradation ladder: a small, fully deterministic state machine that
//! folds per-decision health verdicts (any
//! [`HealthEvent`](safex_nn::HealthEvent) seen this decision?) into one of
//! three operating states:
//!
//! * [`HealthState::Nominal`] — decisions pass through unchanged.
//! * [`HealthState::Degraded`] — the pipeline forces conservative
//!   behaviour (proceeds become fallbacks) while the fault picture
//!   clarifies.
//! * [`HealthState::SafeStop`] — persistent faults; every decision is
//!   forced to a safe stop until (optionally) a long clean streak earns
//!   the system back one rung.
//!
//! Escalation is *windowed* (N unhealthy decisions among the last W),
//! which makes it robust to detectors that only run on a cadence (e.g. a
//! weight CRC re-checked every Kth decision). De-escalation is
//! *streak-based* (N consecutive clean decisions), which gives hysteresis:
//! one lucky clean frame never un-degrades a sick system.

use std::fmt;

use crate::error::CoreError;

/// The pipeline-level operating state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// No concerning fault activity; decisions pass through.
    Nominal,
    /// Fault activity above the degrade threshold; conservative actions
    /// are forced (proceed → fallback).
    Degraded,
    /// Fault activity above the stop threshold; every decision becomes a
    /// safe stop.
    SafeStop,
}

impl HealthState {
    /// Stable tag for evidence records.
    pub fn tag(&self) -> &'static str {
        match self {
            HealthState::Nominal => "nominal",
            HealthState::Degraded => "degraded",
            HealthState::SafeStop => "safe_stop",
        }
    }

    fn index(self) -> usize {
        match self {
            HealthState::Nominal => 0,
            HealthState::Degraded => 1,
            HealthState::SafeStop => 2,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One decision's health classification, as fed to
/// [`HealthMonitor::step_verdict`].
///
/// [`HealthVerdict::Warning`] is the middle ground the ECC repair path
/// needs: the fault *happened* (the memory took a hit) but it is *gone*
/// (corrected in place, CRC re-verified). Warnings spend from a bounded
/// budget ([`HealthConfig::warn_budget`]) instead of escalating outright —
/// a trickle of corrected upsets keeps the system Nominal, while a storm
/// of them still walks the ladder down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthVerdict {
    /// Nothing observed; counts toward recovery streaks.
    Clean,
    /// A fault was observed *and repaired* (e.g.
    /// `HealthEvent::CorrectedFault`); tolerated up to
    /// [`HealthConfig::warn_budget`] per window, unhealthy beyond it.
    Warning,
    /// An unrepaired fault was observed; escalates as before.
    Unhealthy,
}

/// Thresholds for the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Size of the sliding window of recent decisions considered for
    /// escalation (1..=64; the window is a u64 bitmask).
    pub window: u32,
    /// Unhealthy decisions within the window that trigger
    /// Nominal → Degraded.
    pub degrade_events: u32,
    /// Unhealthy decisions within the window that trigger → SafeStop.
    /// Must be ≥ `degrade_events`.
    pub stop_events: u32,
    /// Consecutive clean decisions required for Degraded → Nominal.
    pub recover_after: u32,
    /// Consecutive clean decisions required for SafeStop → Degraded
    /// (one rung at a time). `0` latches SafeStop permanently — the
    /// conservative default for real deployments, where leaving a safe
    /// stop should take maintenance action, not luck.
    pub resume_after: u32,
    /// How many [`HealthVerdict::Warning`] decisions (corrected faults)
    /// the window tolerates before a further warning is treated as
    /// unhealthy. Warnings at or under budget count as clean — they
    /// neither fill the escalation window nor break recovery streaks.
    /// Setting it `>= window` makes warnings never escalate.
    pub warn_budget: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 8,
            degrade_events: 2,
            stop_events: 4,
            recover_after: 16,
            resume_after: 0,
            warn_budget: 3,
        }
    }
}

impl HealthConfig {
    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] when the window is outside
    /// 1..=64, a threshold is zero, a threshold exceeds the window, or
    /// `stop_events < degrade_events`.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::BadAssembly(msg));
        if self.window == 0 || self.window > 64 {
            return bad(format!("health window {} outside 1..=64", self.window));
        }
        if self.degrade_events == 0 {
            return bad("degrade_events must be >= 1".into());
        }
        if self.stop_events < self.degrade_events {
            return bad(format!(
                "stop_events {} below degrade_events {}",
                self.stop_events, self.degrade_events
            ));
        }
        if self.degrade_events > self.window {
            return bad(format!(
                "degrade_events {} can never fire within window {}",
                self.degrade_events, self.window
            ));
        }
        if self.recover_after == 0 {
            return bad("recover_after must be >= 1".into());
        }
        Ok(())
    }
}

/// One recorded state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// 1-based decision count at which the transition fired.
    pub at_decision: u64,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} @ {}", self.from, self.to, self.at_decision)
    }
}

/// The degradation-ladder state machine.
///
/// Feed it one boolean per decision via [`HealthMonitor::step`]; it
/// reports transitions as they happen and keeps time-in-state counters
/// for campaign reporting. Everything is integer state — stepping is
/// deterministic and allocation-free outside the transition log.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    state: HealthState,
    /// Ring of recent unhealthy flags, newest in bit 0.
    history: u64,
    /// Ring of recent warning (corrected-fault) flags, newest in bit 0 —
    /// the budget [`HealthConfig::warn_budget`] is spent against this.
    warn_history: u64,
    clean_streak: u32,
    decisions: u64,
    time_in: [u64; 3],
    transitions: Vec<Transition>,
}

impl HealthMonitor {
    /// Creates a monitor in the nominal state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] for inconsistent thresholds
    /// (see [`HealthConfig::validate`]).
    pub fn new(config: HealthConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(HealthMonitor {
            config,
            state: HealthState::Nominal,
            history: 0,
            warn_history: 0,
            clean_streak: 0,
            decisions: 0,
            time_in: [0; 3],
            transitions: Vec::new(),
        })
    }

    /// Folds one decision's boolean health verdict into the ladder —
    /// [`HealthMonitor::step_verdict`] without the warning tier.
    pub fn step(&mut self, unhealthy: bool) -> Option<Transition> {
        self.step_verdict(if unhealthy {
            HealthVerdict::Unhealthy
        } else {
            HealthVerdict::Clean
        })
    }

    /// Folds one decision's three-way verdict into the ladder, returning
    /// the transition if the state changed.
    ///
    /// A [`HealthVerdict::Warning`] spends one unit of
    /// [`HealthConfig::warn_budget`]: while the window holds at most
    /// `warn_budget` warnings it behaves like a clean decision; the
    /// warning that exceeds the budget is folded in as unhealthy.
    pub fn step_verdict(&mut self, verdict: HealthVerdict) -> Option<Transition> {
        self.decisions += 1;
        let mask = if self.config.window == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.window) - 1
        };
        self.warn_history =
            ((self.warn_history << 1) | u64::from(verdict == HealthVerdict::Warning)) & mask;
        let unhealthy = match verdict {
            HealthVerdict::Clean => false,
            HealthVerdict::Unhealthy => true,
            HealthVerdict::Warning => self.warn_history.count_ones() > self.config.warn_budget,
        };
        self.history = ((self.history << 1) | u64::from(unhealthy)) & mask;
        self.clean_streak = if unhealthy { 0 } else { self.clean_streak + 1 };
        let count = self.history.count_ones();

        let next = match self.state {
            HealthState::Nominal => {
                if count >= self.config.stop_events {
                    HealthState::SafeStop
                } else if count >= self.config.degrade_events {
                    HealthState::Degraded
                } else {
                    HealthState::Nominal
                }
            }
            HealthState::Degraded => {
                if count >= self.config.stop_events {
                    HealthState::SafeStop
                } else if self.clean_streak >= self.config.recover_after {
                    HealthState::Nominal
                } else {
                    HealthState::Degraded
                }
            }
            HealthState::SafeStop => {
                if self.config.resume_after > 0 && self.clean_streak >= self.config.resume_after {
                    // One rung at a time: a safe stop resumes into
                    // degraded operation, never straight to nominal.
                    HealthState::Degraded
                } else {
                    HealthState::SafeStop
                }
            }
        };

        self.time_in[next.index()] += 1;
        if next == self.state {
            return None;
        }
        // De-escalation clears the window so stale fault bits cannot
        // immediately re-trigger the threshold that was just left behind,
        // and resets the streak so every rung of the way back up must be
        // earned with its own run of clean decisions.
        if next.index() < self.state.index() {
            self.history = 0;
            self.warn_history = 0;
            self.clean_streak = 0;
        }
        let t = Transition {
            from: self.state,
            to: next,
            at_decision: self.decisions,
        };
        self.state = next;
        self.transitions.push(t);
        Some(t)
    }

    /// Current operating state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The configured thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Decisions stepped so far.
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Unhealthy decisions currently inside the window.
    pub fn unhealthy_in_window(&self) -> u32 {
        self.history.count_ones()
    }

    /// Warning (corrected-fault) decisions currently inside the window.
    pub fn warnings_in_window(&self) -> u32 {
        self.warn_history.count_ones()
    }

    /// Current run of consecutive clean decisions.
    pub fn clean_streak(&self) -> u32 {
        self.clean_streak
    }

    /// Decisions spent in `state` so far.
    pub fn time_in(&self, state: HealthState) -> u64 {
        self.time_in[state.index()]
    }

    /// All transitions, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Exports the complete ladder state — rung, windows, streak,
    /// counters, and the transition log — for a process snapshot.
    ///
    /// [`HealthMonitor::restore`] is the inverse; together they let a
    /// restarted runtime resume the ladder exactly where it left off
    /// instead of silently resetting to Nominal.
    pub fn export_state(&self) -> LadderState {
        LadderState {
            state: self.state,
            history: self.history,
            warn_history: self.warn_history,
            clean_streak: self.clean_streak,
            decisions: self.decisions,
            time_in: self.time_in,
            transitions: self.transitions.clone(),
        }
    }

    /// Rebuilds a monitor from an exported [`LadderState`], validating
    /// the state against `config` so a corrupted or mismatched snapshot
    /// fails closed instead of resuming a ladder the thresholds cannot
    /// have produced.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] when `config` itself is
    /// invalid, a history window holds bits outside the configured
    /// window, the transition log is inconsistent with the final state,
    /// or counters disagree with the decision count.
    pub fn restore(config: HealthConfig, ladder: LadderState) -> Result<Self, CoreError> {
        config.validate()?;
        let bad = |msg: String| Err(CoreError::BadAssembly(msg));
        let mask = if config.window == 64 {
            u64::MAX
        } else {
            (1u64 << config.window) - 1
        };
        if ladder.history & !mask != 0 || ladder.warn_history & !mask != 0 {
            return bad(format!(
                "ladder history extends beyond the {}-decision window",
                config.window
            ));
        }
        if let Some(last) = ladder.transitions.last() {
            if last.to != ladder.state {
                return bad(format!(
                    "ladder state {} disagrees with last logged transition to {}",
                    ladder.state, last.to
                ));
            }
        } else if ladder.state != HealthState::Nominal {
            return bad(format!(
                "ladder state {} with an empty transition log",
                ladder.state
            ));
        }
        let mut prev = HealthState::Nominal;
        for t in &ladder.transitions {
            if t.from != prev {
                return bad(format!(
                    "transition log breaks continuity at {} -> {}",
                    t.from, t.to
                ));
            }
            if t.at_decision > ladder.decisions {
                return bad(format!(
                    "transition at decision {} beyond decision count {}",
                    t.at_decision, ladder.decisions
                ));
            }
            prev = t.to;
        }
        if ladder.time_in.iter().sum::<u64>() != ladder.decisions {
            return bad(format!(
                "time-in-state counters sum to {}, expected the decision count {}",
                ladder.time_in.iter().sum::<u64>(),
                ladder.decisions
            ));
        }
        if u64::from(ladder.clean_streak) > ladder.decisions {
            return bad("clean streak exceeds the decision count".into());
        }
        // Producibility: after d decisions only the low min(d, window)
        // history bits can be set — each decision shifts exactly one bit
        // in, and nothing else ever sets one.
        let lived_bits = ladder.decisions.min(u64::from(config.window)) as u32;
        if lived_bits < 64
            && (ladder.history >> lived_bits != 0 || ladder.warn_history >> lived_bits != 0)
        {
            return bad(format!(
                "history bits set beyond the {} decisions stepped",
                ladder.decisions
            ));
        }
        // Producibility: the clean streak counts decisions since the most
        // recent unhealthy one, and an unhealthy decision both sets
        // history bit 0 and zeroes the streak — so while any unhealthy
        // bit remains in the window the streak equals the distance to the
        // nearest one. (Paths that clear the streak — de-escalation,
        // `force` — clear the history with it, so `history != 0` always
        // pins the streak exactly.)
        if ladder.history != 0 && ladder.clean_streak != ladder.history.trailing_zeros() {
            return bad(format!(
                "clean streak {} disagrees with the unhealthy history (last unhealthy {} decisions ago)",
                ladder.clean_streak,
                ladder.history.trailing_zeros()
            ));
        }
        // Producibility: a resting state never sits at or above the
        // threshold that would have moved it — the decision that reached
        // the threshold transitioned then and there, and de-escalation
        // clears the window on the way down.
        let count = ladder.history.count_ones();
        match ladder.state {
            HealthState::Nominal if count >= config.degrade_events => {
                return bad(format!(
                    "nominal ladder with {count} unhealthy decisions in window (degrades at {})",
                    config.degrade_events
                ));
            }
            HealthState::Degraded if count >= config.stop_events => {
                return bad(format!(
                    "degraded ladder with {count} unhealthy decisions in window (stops at {})",
                    config.stop_events
                ));
            }
            _ => {}
        }
        Ok(HealthMonitor {
            config,
            state: ladder.state,
            history: ladder.history,
            warn_history: ladder.warn_history,
            clean_streak: ladder.clean_streak,
            decisions: ladder.decisions,
            time_in: ladder.time_in,
            transitions: ladder.transitions,
        })
    }

    /// Forces the ladder to `to` by supervisory action (watchdog
    /// escalation, maintenance override), bypassing the windowed verdict
    /// path. The windows and streak are cleared — the declared rung
    /// starts from scratch — and the transition is logged like any
    /// other. Returns `None` when already at `to`.
    pub fn force(&mut self, to: HealthState) -> Option<Transition> {
        if to == self.state {
            return None;
        }
        self.history = 0;
        self.warn_history = 0;
        self.clean_streak = 0;
        let t = Transition {
            from: self.state,
            to,
            at_decision: self.decisions,
        };
        self.state = to;
        self.transitions.push(t);
        Some(t)
    }
}

/// The complete internal state of a [`HealthMonitor`] ladder, as
/// exported by [`HealthMonitor::export_state`] for snapshotting. Plain
/// data: every field is what the monitor tracks, nothing derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderState {
    /// Current rung.
    pub state: HealthState,
    /// Recent-unhealthy window bitmask (newest in bit 0).
    pub history: u64,
    /// Recent-warning window bitmask (warn-budget consumption).
    pub warn_history: u64,
    /// Consecutive clean decisions so far.
    pub clean_streak: u32,
    /// Decisions stepped so far.
    pub decisions: u64,
    /// Decisions spent in each state `[nominal, degraded, safe_stop]`.
    pub time_in: [u64; 3],
    /// Transition log, in order.
    pub transitions: Vec<Transition>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(config: HealthConfig) -> HealthMonitor {
        HealthMonitor::new(config).expect("valid config")
    }

    fn quick() -> HealthConfig {
        HealthConfig {
            window: 8,
            degrade_events: 2,
            stop_events: 4,
            recover_after: 3,
            resume_after: 5,
            warn_budget: 3,
        }
    }

    #[test]
    fn validation_rejects_inconsistent_thresholds() {
        for bad in [
            HealthConfig {
                window: 0,
                ..Default::default()
            },
            HealthConfig {
                window: 65,
                ..Default::default()
            },
            HealthConfig {
                degrade_events: 0,
                ..Default::default()
            },
            HealthConfig {
                degrade_events: 5,
                stop_events: 3,
                ..Default::default()
            },
            HealthConfig {
                window: 4,
                degrade_events: 5,
                stop_events: 6,
                ..Default::default()
            },
            HealthConfig {
                recover_after: 0,
                ..Default::default()
            },
        ] {
            assert!(HealthMonitor::new(bad).is_err(), "accepted {bad:?}");
        }
        assert!(HealthMonitor::new(HealthConfig::default()).is_ok());
    }

    #[test]
    fn stays_nominal_on_clean_stream() {
        let mut m = monitor(quick());
        for _ in 0..100 {
            assert_eq!(m.step(false), None);
        }
        assert_eq!(m.state(), HealthState::Nominal);
        assert_eq!(m.time_in(HealthState::Nominal), 100);
        assert!(m.transitions().is_empty());
    }

    #[test]
    fn isolated_events_do_not_degrade() {
        // One unhealthy decision every 10 frames: the window (8) never
        // holds two at once, so the ladder never moves.
        let mut m = monitor(quick());
        for i in 0..100u64 {
            assert_eq!(m.step(i % 10 == 0), None);
        }
        assert_eq!(m.state(), HealthState::Nominal);
    }

    #[test]
    fn clustered_events_degrade_then_stop() {
        let mut m = monitor(quick());
        m.step(false);
        m.step(true);
        let t = m.step(true).expect("second event in window degrades");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Nominal, HealthState::Degraded)
        );
        assert_eq!(t.at_decision, 3);
        m.step(true);
        let t = m.step(true).expect("fourth event in window stops");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Degraded, HealthState::SafeStop)
        );
        assert_eq!(m.state(), HealthState::SafeStop);
    }

    #[test]
    fn burst_jumps_straight_to_safe_stop() {
        // Nominal can escalate directly to SafeStop if the window fills
        // fast enough — the ladder must not under-react to a burst.
        let mut m = monitor(HealthConfig {
            degrade_events: 4,
            stop_events: 4,
            ..quick()
        });
        m.step(true);
        m.step(true);
        m.step(true);
        let t = m.step(true).expect("burst transitions");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Nominal, HealthState::SafeStop)
        );
    }

    #[test]
    fn windowed_counting_survives_detection_cadence() {
        // Events arriving every other decision (a CRC on cadence 2) still
        // accumulate within the window even with clean frames between.
        let mut m = monitor(quick());
        let mut degraded_at = None;
        for i in 1..=8u64 {
            if let Some(t) = m.step(i % 2 == 1) {
                degraded_at.get_or_insert(t.at_decision);
            }
        }
        assert_eq!(degraded_at, Some(3), "1 event at d1 + 1 at d3 degrades");
    }

    #[test]
    fn recovery_needs_a_full_clean_streak() {
        let mut m = monitor(quick());
        m.step(true);
        m.step(true); // degraded
        assert_eq!(m.state(), HealthState::Degraded);
        m.step(false);
        m.step(false);
        assert_eq!(m.state(), HealthState::Degraded, "streak of 2 < 3");
        let t = m.step(false).expect("third clean decision recovers");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Degraded, HealthState::Nominal)
        );
        // The window was cleared: the two old events are forgotten and a
        // single fresh one does not instantly re-degrade.
        assert_eq!(m.unhealthy_in_window(), 0);
        assert_eq!(m.step(true), None);
    }

    #[test]
    fn unhealthy_decision_resets_the_streak() {
        let mut m = monitor(quick());
        m.step(true);
        m.step(true); // degraded
        m.step(false);
        m.step(false);
        m.step(true); // streak broken (and window at 3 events, below stop)
        assert_eq!(m.state(), HealthState::Degraded);
        m.step(false);
        m.step(false);
        assert_eq!(m.state(), HealthState::Degraded);
        assert!(m.step(false).is_some(), "fresh streak of 3 recovers");
    }

    #[test]
    fn safe_stop_latches_by_default() {
        let mut m = monitor(HealthConfig {
            resume_after: 0,
            ..quick()
        });
        for _ in 0..4 {
            m.step(true);
        }
        assert_eq!(m.state(), HealthState::SafeStop);
        for _ in 0..1000 {
            assert_eq!(m.step(false), None);
        }
        assert_eq!(m.state(), HealthState::SafeStop, "latched");
    }

    #[test]
    fn safe_stop_resumes_one_rung_when_allowed() {
        let mut m = monitor(quick()); // resume_after: 5
        for _ in 0..4 {
            m.step(true);
        }
        assert_eq!(m.state(), HealthState::SafeStop);
        for _ in 0..4 {
            assert_eq!(m.step(false), None);
        }
        let t = m.step(false).expect("fifth clean decision resumes");
        assert_eq!(
            (t.from, t.to),
            (HealthState::SafeStop, HealthState::Degraded)
        );
        // And a further clean streak walks it back to nominal.
        m.step(false);
        m.step(false);
        let t = m.step(false).expect("recover to nominal");
        assert_eq!(t.to, HealthState::Nominal);
        assert_eq!(m.transitions().len(), 4);
    }

    #[test]
    fn time_in_state_accounts_every_decision() {
        let mut m = monitor(quick());
        m.step(true);
        m.step(true); // decision 2 lands in Degraded
        m.step(false);
        m.step(false);
        m.step(false); // decision 5 lands back in Nominal
        let total = m.time_in(HealthState::Nominal)
            + m.time_in(HealthState::Degraded)
            + m.time_in(HealthState::SafeStop);
        assert_eq!(total, m.decision_count());
        assert_eq!(m.time_in(HealthState::Degraded), 3);
    }

    #[test]
    fn window_of_64_is_valid() {
        let mut m = monitor(HealthConfig {
            window: 64,
            degrade_events: 64,
            stop_events: 64,
            ..quick()
        });
        for _ in 0..63 {
            assert_eq!(m.step(true), None);
        }
        assert!(m.step(true).is_some(), "64th event fills the full window");
    }

    #[test]
    fn warnings_within_budget_behave_like_clean() {
        // warn_budget 3: a trickle of corrected faults neither degrades
        // the ladder nor breaks recovery streaks.
        let mut m = monitor(quick());
        for i in 0..24u64 {
            let verdict = if i % 8 == 0 {
                HealthVerdict::Warning
            } else {
                HealthVerdict::Clean
            };
            assert_eq!(m.step_verdict(verdict), None, "decision {i}");
        }
        assert_eq!(m.state(), HealthState::Nominal);
        assert_eq!(m.unhealthy_in_window(), 0);

        // Streak test: degrade, then recover across a within-budget
        // warning — the warning must not reset the clean streak.
        let mut m = monitor(quick());
        m.step(true);
        m.step(true);
        assert_eq!(m.state(), HealthState::Degraded);
        m.step_verdict(HealthVerdict::Clean);
        m.step_verdict(HealthVerdict::Warning);
        assert!(
            m.step_verdict(HealthVerdict::Clean).is_some(),
            "a budgeted warning counts toward the recovery streak"
        );
        assert_eq!(m.state(), HealthState::Nominal);
    }

    #[test]
    fn warnings_beyond_budget_escalate() {
        // Five warnings inside one window against a budget of 3: the 4th
        // and 5th fold in as unhealthy and the ladder degrades.
        let mut m = monitor(quick());
        let mut transition = None;
        for _ in 0..5 {
            if let Some(t) = m.step_verdict(HealthVerdict::Warning) {
                transition.get_or_insert(t);
            }
        }
        let t = transition.expect("budget exhaustion must degrade");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Nominal, HealthState::Degraded)
        );
        assert_eq!(t.at_decision, 5, "warnings 1–3 spend budget, 4–5 count");
        assert_eq!(m.warnings_in_window(), 5);
        assert_eq!(m.unhealthy_in_window(), 2);
    }

    #[test]
    fn warnings_age_out_of_the_window() {
        // 4 warnings, then a long clean stretch, then 3 more: the old
        // warnings have left the window, so the budget is fresh.
        let mut m = monitor(quick());
        for _ in 0..3 {
            assert_eq!(m.step_verdict(HealthVerdict::Warning), None);
        }
        for _ in 0..8 {
            assert_eq!(m.step_verdict(HealthVerdict::Clean), None);
        }
        for _ in 0..3 {
            assert_eq!(m.step_verdict(HealthVerdict::Warning), None);
        }
        assert_eq!(m.state(), HealthState::Nominal);
        assert_eq!(m.warnings_in_window(), 3);
    }

    #[test]
    fn zero_warn_budget_treats_every_warning_as_unhealthy() {
        let mut m = monitor(HealthConfig {
            warn_budget: 0,
            ..quick()
        });
        m.step_verdict(HealthVerdict::Warning);
        let t = m
            .step_verdict(HealthVerdict::Warning)
            .expect("two unhealthy-equivalent decisions degrade");
        assert_eq!(t.to, HealthState::Degraded);
    }

    #[test]
    fn display_and_tags() {
        assert_eq!(HealthState::Nominal.to_string(), "nominal");
        assert_eq!(HealthState::SafeStop.tag(), "safe_stop");
        let t = Transition {
            from: HealthState::Nominal,
            to: HealthState::Degraded,
            at_decision: 7,
        };
        assert_eq!(t.to_string(), "nominal -> degraded @ 7");
    }

    #[test]
    fn export_restore_round_trips_mid_walk() {
        // Walk a ladder into Degraded with a live window and a partial
        // streak, export, restore, and check both monitors step
        // identically from there on.
        let mut m = monitor(quick());
        m.step(true);
        m.step(true); // degraded
        m.step(false);
        m.step_verdict(HealthVerdict::Warning);
        let exported = m.export_state();
        let mut restored = HealthMonitor::restore(quick(), exported.clone()).expect("restore");
        assert_eq!(restored.state(), m.state());
        assert_eq!(restored.decision_count(), m.decision_count());
        assert_eq!(restored.clean_streak(), m.clean_streak());
        assert_eq!(restored.unhealthy_in_window(), m.unhealthy_in_window());
        assert_eq!(restored.warnings_in_window(), m.warnings_in_window());
        assert_eq!(restored.export_state(), exported);
        for verdict in [
            HealthVerdict::Clean,
            HealthVerdict::Warning,
            HealthVerdict::Unhealthy,
            HealthVerdict::Clean,
            HealthVerdict::Clean,
            HealthVerdict::Clean,
            HealthVerdict::Clean,
        ] {
            assert_eq!(m.step_verdict(verdict), restored.step_verdict(verdict));
            assert_eq!(m.state(), restored.state());
        }
    }

    #[test]
    fn restore_fails_closed_on_inconsistent_state() {
        let mut m = monitor(quick());
        m.step(true);
        m.step(true); // degraded
        let good = m.export_state();

        // History bits outside the window.
        let mut bad = good.clone();
        bad.history |= 1 << 60;
        assert!(HealthMonitor::restore(quick(), bad).is_err());

        // State disagreeing with the transition log.
        let mut bad = good.clone();
        bad.state = HealthState::SafeStop;
        assert!(HealthMonitor::restore(quick(), bad).is_err());

        // Non-nominal state with no transitions at all.
        let bad = LadderState {
            state: HealthState::Degraded,
            history: 0,
            warn_history: 0,
            clean_streak: 0,
            decisions: 5,
            time_in: [5, 0, 0],
            transitions: Vec::new(),
        };
        assert!(HealthMonitor::restore(quick(), bad).is_err());

        // Broken transition continuity.
        let mut bad = good.clone();
        bad.transitions.insert(
            0,
            Transition {
                from: HealthState::Degraded,
                to: HealthState::SafeStop,
                at_decision: 1,
            },
        );
        assert!(HealthMonitor::restore(quick(), bad).is_err());

        // Counters beyond the decision count.
        let mut bad = good.clone();
        bad.time_in = [100, 100, 100];
        assert!(HealthMonitor::restore(quick(), bad).is_err());
        let mut bad = good.clone();
        bad.clean_streak = 99;
        assert!(HealthMonitor::restore(quick(), bad).is_err());

        // A transition stamped after the decision count.
        let mut bad = good.clone();
        bad.transitions[0].at_decision = 50;
        assert!(HealthMonitor::restore(quick(), bad).is_err());

        // The untouched export still restores.
        assert!(HealthMonitor::restore(quick(), good).is_ok());
    }

    #[test]
    fn restore_rejects_unproducible_states() {
        // Found by the structure-aware fuzz harness (safex-fuzz, ladder
        // surface): the pre-hardening validator accepted exported states
        // no sequence of verdicts can produce, letting a tampered
        // snapshot resume a ladder with forged recovery credit.
        let mut m = monitor(quick());
        m.step(true);
        m.step(true); // degraded
        let good = m.export_state();

        // (a) History bits claiming more decisions than were stepped.
        let bad_state = LadderState {
            state: HealthState::Nominal,
            history: 0b1,
            warn_history: 0,
            clean_streak: 0,
            decisions: 0,
            time_in: [0, 0, 0],
            transitions: Vec::new(),
        };
        assert!(HealthMonitor::restore(quick(), bad_state).is_err());

        // (b) A clean streak coexisting with an unhealthy bit at the
        // newest window position — stepping unhealthy always zeroes the
        // streak, so this pair is forged recovery credit.
        let mut forged = good.clone();
        assert_eq!(forged.history & 1, 1, "last decision was unhealthy");
        forged.clean_streak = 1;
        forged.time_in = [1, 1, 0];
        forged.decisions = 2;
        assert!(HealthMonitor::restore(quick(), forged).is_err());

        // (c) Time-in-state counters that undercount decisions (the old
        // check only rejected overcounts).
        let mut skewed = good.clone();
        skewed.time_in = [0, 0, 0];
        assert!(HealthMonitor::restore(quick(), skewed).is_err());

        // (d) A resting state at or above its own escalation threshold.
        let nominal_over = LadderState {
            state: HealthState::Nominal,
            history: 0b11,
            warn_history: 0,
            clean_streak: 0,
            decisions: 2,
            time_in: [2, 0, 0],
            transitions: Vec::new(),
        };
        assert!(HealthMonitor::restore(quick(), nominal_over).is_err());

        // The genuine export still restores after all added checks.
        assert!(HealthMonitor::restore(quick(), good).is_ok());
    }

    #[test]
    fn force_walks_the_ladder_and_logs_like_any_transition() {
        let mut m = monitor(quick());
        m.step(false);
        assert_eq!(m.force(HealthState::Nominal), None, "no-op force");
        let t = m.force(HealthState::Degraded).expect("forced degrade");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Nominal, HealthState::Degraded)
        );
        assert_eq!(t.at_decision, 1);
        let t = m.force(HealthState::SafeStop).expect("forced stop");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Degraded, HealthState::SafeStop)
        );
        assert_eq!(m.transitions().len(), 2);
        assert_eq!(m.state(), HealthState::SafeStop);
        // Forcing cleared the windows: the exported state restores.
        let restored = HealthMonitor::restore(quick(), m.export_state()).expect("restorable");
        assert_eq!(restored.state(), HealthState::SafeStop);
    }
}
