//! Error type for pipeline assembly and operation.

use std::error::Error;
use std::fmt;

use safex_nn::NnError;
use safex_patterns::PatternError;
use safex_supervision::SupervisionError;

/// Errors produced by the core pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The pipeline was assembled inconsistently; the message explains.
    BadAssembly(String),
    /// The configured pattern is weaker than the SIL recommendation and
    /// under-provisioning was not explicitly allowed.
    UnderProvisioned {
        /// The target SIL.
        sil: safex_patterns::Sil,
        /// The recommended minimum pattern.
        recommended: &'static str,
        /// The configured pattern.
        configured: &'static str,
    },
    /// A pattern-level failure during a decision.
    Pattern(PatternError),
    /// A supervision failure during assembly.
    Supervision(SupervisionError),
    /// An inference failure during assembly.
    Nn(NnError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadAssembly(msg) => write!(f, "bad pipeline assembly: {msg}"),
            CoreError::UnderProvisioned {
                sil,
                recommended,
                configured,
            } => write!(
                f,
                "pattern {configured} is below the {sil} recommendation ({recommended}); \
                 call allow_under_provisioned() to accept the risk"
            ),
            CoreError::Pattern(e) => write!(f, "pattern error: {e}"),
            CoreError::Supervision(e) => write!(f, "supervision error: {e}"),
            CoreError::Nn(e) => write!(f, "inference error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Pattern(e) => Some(e),
            CoreError::Supervision(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for CoreError {
    fn from(e: PatternError) -> Self {
        CoreError::Pattern(e)
    }
}

impl From<SupervisionError> for CoreError {
    fn from(e: SupervisionError) -> Self {
        CoreError::Supervision(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::BadAssembly("no pattern".into());
        assert!(e.to_string().contains("no pattern"));
        assert!(e.source().is_none());
        let e = CoreError::from(NnError::EmptyModel);
        assert!(e.source().is_some());
        let e = CoreError::UnderProvisioned {
            sil: safex_patterns::Sil::Sil4,
            recommended: "two_out_of_three",
            configured: "bare",
        };
        assert!(e.to_string().contains("two_out_of_three"));
    }
}
