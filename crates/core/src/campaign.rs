//! Fault-injection campaigns: sweep fault classes × rates × patterns and
//! report IEC 61508-style hardening metrics.
//!
//! A campaign answers the certification question the hardened runtime
//! exists for: *of the faults we inject, how many does the runtime
//! detect, and how often does an undetected fault silently corrupt a
//! decision?* Each cell of the sweep builds a fresh
//! [`HardenedEngine`](safex_nn::HardenedEngine) behind a
//! [`HardenedChannel`](safex_patterns::channel::HardenedChannel), wires it
//! into a [`SafePipeline`](crate::SafePipeline) with a
//! [`HealthMonitor`](crate::health::HealthMonitor), replays a fixed input
//! stream under one fault class at one rate, and scores every decision
//! against a pristine reference engine.
//!
//! Everything is keyed off [`CampaignConfig::seed`]: the same config over
//! the same model and inputs reproduces the report bit for bit —
//! campaigns are certification evidence, not demos.
//!
//! Cells are *independent* — each builds its own engines, pipeline, and
//! derived RNG streams from its cell seed — so the sweep parallelises
//! trivially: [`CampaignConfig::workers`] partitions the cell list into
//! contiguous chunks on scoped threads (the same static partitioning the
//! engine pools use) and stitches results back in sweep order. The report
//! is byte-identical for any worker count.

use safex_nn::{
    layer_checksums, ActivationFault, Engine, FaultInjector, FaultPlan, HardenConfig,
    HardenedEngine, HardenedQEngine, HealthEvent, HealthSink, InputFault, Model, QModel,
};
use safex_patterns::channel::{HardenedChannel, HardenedQuantChannel, ModelChannel};
use safex_patterns::pattern::{Bare, MonitorActuator, SafetyPattern, TwoOutOfThree};
use safex_patterns::Sil;
use safex_supervision::odd::OddEnvelope;
use safex_tensor::DetRng;

use crate::error::CoreError;
use crate::health::{HealthConfig, HealthMonitor, HealthState};
use crate::pipeline::PipelineBuilder;

/// The fault classes a campaign can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A single-bit SEU in one model weight, persisting for one decision.
    WeightBitFlip,
    /// A 3-bit burst upset in one model weight (one decision).
    WeightMultiBitFlip,
    /// A single-bit flip in one intermediate activation element.
    ActivationBitFlip,
    /// Additive gaussian sensor noise (σ = 0.5).
    InputNoise,
    /// One sensor element railed high (stuck at 1.0).
    InputStuck,
    /// Random element blackout (50% of elements zeroed).
    InputDropout,
}

impl FaultClass {
    /// Stable tag for reports and evidence.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultClass::WeightBitFlip => "weight_bit_flip",
            FaultClass::WeightMultiBitFlip => "weight_multi_bit_flip",
            FaultClass::ActivationBitFlip => "activation_bit_flip",
            FaultClass::InputNoise => "input_noise",
            FaultClass::InputStuck => "input_stuck",
            FaultClass::InputDropout => "input_dropout",
        }
    }

    /// All classes, for exhaustive sweeps.
    pub fn all() -> [FaultClass; 6] {
        [
            FaultClass::WeightBitFlip,
            FaultClass::WeightMultiBitFlip,
            FaultClass::ActivationBitFlip,
            FaultClass::InputNoise,
            FaultClass::InputStuck,
            FaultClass::InputDropout,
        ]
    }

    fn is_weight(self) -> bool {
        matches!(
            self,
            FaultClass::WeightBitFlip | FaultClass::WeightMultiBitFlip
        )
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// The safety pattern a campaign cell deploys around the hardened channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampaignPattern {
    /// The hardened channel alone.
    Bare,
    /// Monitor-actuator with a 0.4 confidence floor.
    MonitorActuator,
    /// Diverse 2-out-of-3: the hardened f32 channel votes against a
    /// hardened Q16.16 channel and an unhardened f32 reference. Weight
    /// strikes hit *both* hardened implementations (independent SEU
    /// streams), so the cell measures whether diverse redundancy masks
    /// what a single implementation cannot.
    DiverseTwoOutOfThree,
}

impl CampaignPattern {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            CampaignPattern::Bare => "bare",
            CampaignPattern::MonitorActuator => "monitor_actuator",
            CampaignPattern::DiverseTwoOutOfThree => "diverse_2oo3",
        }
    }
}

/// Optional pillar-1 input supervision for a campaign: fits an
/// [`OddEnvelope`] on the calibration inputs and screens every decision's
/// *faulted* input view (via [`FaultPlan::preview_input`]) before the
/// pipeline acts. A rejection lands in the health sink as
/// [`HealthEvent::SupervisorReject`] and counts as a detection — closing
/// the in-range input-fault gap the hardened engine's guards cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputSupervision {
    /// Relative widening of the fitted per-dimension and statistic bands
    /// (e.g. `0.1` = 10% of the observed spread).
    pub margin: f64,
    /// Fraction of per-dimension range violations tolerated before the
    /// envelope rejects (in `[0, 1)`).
    pub violation_budget: f64,
}

impl Default for InputSupervision {
    fn default() -> Self {
        InputSupervision {
            margin: 0.1,
            violation_budget: 0.0,
        }
    }
}

/// Sweep definition: every combination of pattern × class × rate becomes
/// one [`CellReport`].
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every cell derives its own streams from it.
    pub seed: u64,
    /// Decisions per cell (the input stream is cycled).
    pub decisions: u64,
    /// Fault classes to sweep.
    pub classes: Vec<FaultClass>,
    /// Per-decision fault rates to sweep (each in `[0, 1]`).
    pub rates: Vec<f64>,
    /// Safety patterns to sweep.
    pub patterns: Vec<CampaignPattern>,
    /// Detection settings for the hardened engines.
    pub harden: HardenConfig,
    /// Degradation-ladder thresholds for the pipelines.
    pub health: HealthConfig,
    /// Pillar-1 input supervision; `None` (the default) runs the
    /// campaign without an input-stage detector, matching the pre-PR-4
    /// measurements.
    pub supervision: Option<InputSupervision>,
    /// Worker threads for cell execution; `1` (the default) runs the
    /// sweep sequentially. Cells are independent, so the report is
    /// byte-identical for any worker count.
    pub workers: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0FFEE,
            decisions: 200,
            classes: FaultClass::all().to_vec(),
            rates: vec![0.05],
            patterns: vec![CampaignPattern::MonitorActuator],
            harden: HardenConfig::default(),
            health: HealthConfig {
                // Campaigns want the full ladder exercised, so allow
                // resuming out of safe stop after a clean stretch.
                resume_after: 8,
                ..HealthConfig::default()
            },
            supervision: None,
            workers: 1,
        }
    }
}

impl CampaignConfig {
    /// Validates the sweep definition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadAssembly`] for an empty sweep axis, zero
    /// decisions, or a rate outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::BadAssembly(msg));
        if self.decisions == 0 {
            return bad("campaign needs at least one decision per cell".into());
        }
        if self.classes.is_empty() || self.rates.is_empty() || self.patterns.is_empty() {
            return bad("campaign sweep axes must all be non-empty".into());
        }
        for &r in &self.rates {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return bad(format!("fault rate {r} outside [0, 1]"));
            }
        }
        if self.workers == 0 {
            return bad("campaign needs at least one worker".into());
        }
        if let Some(s) = &self.supervision {
            if !s.margin.is_finite() || s.margin < 0.0 {
                return bad(format!(
                    "supervision margin must be finite and non-negative, got {}",
                    s.margin
                ));
            }
            if !(0.0..1.0).contains(&s.violation_budget) {
                return bad(format!(
                    "supervision violation budget {} outside [0, 1)",
                    s.violation_budget
                ));
            }
        }
        self.health.validate()
    }
}

/// Metrics for one campaign cell (pattern × class × rate).
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Pattern tag.
    pub pattern: &'static str,
    /// Injected fault class.
    pub class: FaultClass,
    /// Configured per-decision fault rate.
    pub rate: f64,
    /// Decisions executed.
    pub decisions: u64,
    /// Decisions with at least one fault actually active.
    pub faulted: u64,
    /// Faulted decisions on which the runtime raised a health event.
    pub detected: u64,
    /// Decisions on which the ECC sidecar corrected a weight fault in
    /// place (`HealthEvent::CorrectedFault`); always 0 when
    /// [`HardenConfig::repair`] is `None`.
    pub corrected: u64,
    /// Faulted decisions whose acted-on class differed from the pristine
    /// reference (the fault mattered).
    pub corrupted: u64,
    /// Corrupted decisions that proceeded *undetected* — silent data
    /// corruption, the number certification cares most about.
    pub silent: u64,
    /// Health events raised on clean decisions (false alarms).
    pub false_alarms: u64,
    /// Decisions from the first active fault to the first detection
    /// (`None` when nothing was detected or nothing was injected).
    pub detection_latency: Option<u64>,
    /// Ladder transitions observed.
    pub transitions: usize,
    /// Decisions spent degraded.
    pub time_degraded: u64,
    /// Decisions spent in safe stop.
    pub time_stopped: u64,
    /// Worst-case decisions between a corrupting weight write and its
    /// detection under the cell's CRC configuration (`None` when checksum
    /// verification is disabled) — the bound a certification argument
    /// quotes against the detection-latency measurement.
    pub crc_staleness_bound: Option<u64>,
    /// Decisions from the first active fault to the first in-place ECC
    /// correction (`None` when nothing was corrected) — the repair
    /// counterpart of `detection_latency`.
    pub repair_latency: Option<u64>,
    /// ECC sidecar memory as a percentage of the protected parameter bits
    /// (0.0 when repair is disabled) — the cost column the repair benefit
    /// is weighed against.
    pub sidecar_overhead_pct: f64,
}

impl CellReport {
    /// Diagnostic coverage: detected / faulted (1.0 when nothing faulted,
    /// matching the IEC 61508 convention that an idle diagnostic has no
    /// dangerous undetected share to answer for).
    pub fn diagnostic_coverage(&self) -> f64 {
        if self.faulted == 0 {
            return 1.0;
        }
        self.detected as f64 / self.faulted as f64
    }

    /// Silent-data-corruption rate over all decisions.
    pub fn sdc_rate(&self) -> f64 {
        if self.decisions == 0 {
            return 0.0;
        }
        self.silent as f64 / self.decisions as f64
    }
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The master seed the report was produced under.
    pub seed: u64,
    /// One report per sweep cell, in sweep order
    /// (patterns → classes → rates).
    pub cells: Vec<CellReport>,
}

impl CampaignReport {
    /// The worst silent-data-corruption rate across cells.
    pub fn worst_sdc(&self) -> f64 {
        self.cells
            .iter()
            .map(CellReport::sdc_rate)
            .fold(0.0, f64::max)
    }

    /// The lowest diagnostic coverage across cells that saw faults.
    pub fn worst_coverage(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.faulted > 0)
            .map(CellReport::diagnostic_coverage)
            .fold(1.0, f64::min)
    }

    /// Looks up a cell by its sweep coordinates.
    pub fn cell(
        &self,
        pattern: CampaignPattern,
        class: FaultClass,
        rate: f64,
    ) -> Option<&CellReport> {
        self.cells
            .iter()
            .find(|c| c.pattern == pattern.tag() && c.class == class && c.rate == rate)
    }
}

/// Runs the sweep over `model`, cycling `inputs` as both the calibration
/// set and the decision stream.
///
/// # Errors
///
/// Returns [`CoreError::BadAssembly`] for an invalid config or empty
/// inputs, and propagates engine/pattern failures.
pub fn run(
    config: &CampaignConfig,
    model: &Model,
    inputs: &[Vec<f32>],
) -> Result<CampaignReport, CoreError> {
    config.validate()?;
    if inputs.is_empty() {
        return Err(CoreError::BadAssembly("campaign needs inputs".into()));
    }
    let mut specs = Vec::new();
    let mut cell_index = 0u64;
    for &pattern in &config.patterns {
        for &class in &config.classes {
            for &rate in &config.rates {
                cell_index += 1;
                let cell_seed = config
                    .seed
                    .wrapping_add(cell_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                specs.push(CellSpec {
                    pattern,
                    class,
                    rate,
                    cell_seed,
                });
            }
        }
    }
    let workers = config.workers.min(specs.len());
    let cells = if workers <= 1 {
        let mut cells = Vec::with_capacity(specs.len());
        for spec in &specs {
            cells.push(run_cell(config, model, inputs, spec)?);
        }
        cells
    } else {
        run_cells_partitioned(config, model, inputs, &specs, workers)?
    };
    Ok(CampaignReport {
        seed: config.seed,
        cells,
    })
}

/// Sweep coordinates plus the derived seed for one cell — everything a
/// worker needs; the cell seed is fixed before partitioning, so the chunk
/// layout cannot influence any RNG stream.
#[derive(Debug, Clone, Copy)]
struct CellSpec {
    pattern: CampaignPattern,
    class: FaultClass,
    rate: f64,
    cell_seed: u64,
}

/// Splits `n` work items into `workers` contiguous chunk lengths that
/// differ by at most one (earlier chunks take the remainder) — the same
/// static partitioning `safex_nn`'s engine pools use. Public so other
/// deterministic sweep drivers (`safex-falsify`) partition identically:
/// as long as each item's seed is fixed *before* partitioning, the chunk
/// layout cannot influence any RNG stream and results stitched in chunk
/// order are byte-identical for any worker count.
pub fn chunk_lens(n: usize, workers: usize) -> Vec<usize> {
    let base = n / workers;
    let rem = n % workers;
    (0..workers)
        .map(|i| base + usize::from(i < rem))
        .filter(|&len| len > 0)
        .collect()
}

/// Runs the cell list on `workers` scoped threads and stitches results
/// back in sweep order.
///
/// Determinism argument: every cell is a pure function of
/// `(config, model, inputs, spec)` — engines, pipelines, and RNG streams
/// are all built per cell from the pre-assigned cell seed — so the chunk
/// a cell lands in cannot change its report. Chunks are contiguous and
/// joined in chunk order, which *is* sweep order; on failure the first
/// error in sweep order wins (each worker stops at its first error, and
/// earlier chunks hold earlier cells), matching the sequential path.
fn run_cells_partitioned(
    config: &CampaignConfig,
    model: &Model,
    inputs: &[Vec<f32>],
    specs: &[CellSpec],
    workers: usize,
) -> Result<Vec<CellReport>, CoreError> {
    let lens = chunk_lens(specs.len(), workers);
    let results: Vec<Result<Vec<CellReport>, CoreError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lens.len());
        let mut rest = specs;
        for &len in &lens {
            let (chunk, tail) = rest.split_at(len);
            rest = tail;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .map(|spec| run_cell(config, model, inputs, spec))
                    .collect::<Result<Vec<_>, _>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });
    let mut cells = Vec::with_capacity(specs.len());
    for chunk in results {
        cells.extend(chunk?);
    }
    Ok(cells)
}

/// The fault plan a non-weight class hands to the hardened engine.
fn plan_for(class: FaultClass, rate: f64, seed: u64) -> Option<FaultPlan> {
    match class {
        FaultClass::WeightBitFlip | FaultClass::WeightMultiBitFlip => None,
        FaultClass::ActivationBitFlip => Some(FaultPlan::activation(
            seed,
            ActivationFault { p: rate, bits: 1 },
        )),
        FaultClass::InputNoise => Some(FaultPlan::input(
            seed,
            InputFault::Noise {
                sigma: 0.5,
                p: rate,
            },
        )),
        FaultClass::InputStuck => Some(FaultPlan::input(
            seed,
            InputFault::Stuck {
                index: 0,
                level: 1.0,
                p: rate,
            },
        )),
        FaultClass::InputDropout => Some(FaultPlan::input(
            seed,
            InputFault::Dropout { drop: 0.5, p: rate },
        )),
    }
}

fn run_cell(
    config: &CampaignConfig,
    model: &Model,
    inputs: &[Vec<f32>],
    spec: &CellSpec,
) -> Result<CellReport, CoreError> {
    let CellSpec {
        pattern,
        class,
        rate,
        cell_seed,
    } = *spec;
    let mut engine = HardenedEngine::new(model.clone(), config.harden)?;
    engine.calibrate(inputs)?;
    let sidecar_overhead_pct = engine.sidecar_overhead().map_or(0.0, |f| f * 100.0);
    let sink = HealthSink::new();
    engine.attach_sink(sink.clone());
    let plan = plan_for(class, rate, cell_seed);
    if let Some(plan) = plan {
        engine.set_plan(plan)?;
    }
    let channel = HardenedChannel::new("hardened", engine);
    let handle = channel.handle();

    // The diverse cell adds a hardened Q16.16 replica (same health sink,
    // independently calibrated) so weight strikes can hit both
    // implementations; `qhandle`/`pristine_q` stay `None` otherwise.
    let mut qhandle = None;
    let mut pristine_q = None;
    let boxed: Box<dyn SafetyPattern> = match pattern {
        CampaignPattern::Bare => Box::new(Bare::new(channel)),
        CampaignPattern::MonitorActuator => Box::new(MonitorActuator::new(channel, 0.4, 0)?),
        CampaignPattern::DiverseTwoOutOfThree => {
            let qmodel = QModel::quantize(model)?;
            let mut qengine = HardenedQEngine::new(qmodel.clone(), config.harden)?;
            qengine.calibrate_f32(inputs)?;
            qengine.attach_sink(sink.clone());
            let qchannel = HardenedQuantChannel::new("hardened_q16", qengine);
            qhandle = Some(qchannel.handle());
            pristine_q = Some(qmodel);
            let reference = ModelChannel::new("reference_f32", Engine::new(model.clone()));
            Box::new(TwoOutOfThree::new(channel, qchannel, reference)?)
        }
    };
    let monitor = HealthMonitor::new(config.health)?;
    let mut pipeline = PipelineBuilder::new(
        format!("campaign/{}/{}/{rate}", pattern.tag(), class.tag()),
        Sil::Sil2,
    )
    .pattern_boxed(boxed)
    .allow_under_provisioned()
    .health(monitor, sink)
    .build()?;

    // Pristine reference for silent-corruption ground truth, and the
    // pristine weights restored after each weight strike (strikes persist
    // for exactly one decision so coverage is measured per strike, not
    // per exposure window).
    let mut reference = Engine::new(model.clone());
    let pristine = model.clone();
    let mut strike_rng = DetRng::new(cell_seed ^ 0x57_41_4B_45);
    let mut injector = FaultInjector::new(cell_seed ^ 0x46_4C_49_50);
    let mut qinjector = FaultInjector::new(cell_seed ^ 0x51_46_4C_50);
    let envelope = match &config.supervision {
        Some(s) => Some(OddEnvelope::fit(inputs, s.margin, s.violation_budget)?),
        None => None,
    };

    let mut report = CellReport {
        pattern: pattern.tag(),
        class,
        rate,
        decisions: config.decisions,
        faulted: 0,
        detected: 0,
        corrected: 0,
        corrupted: 0,
        silent: 0,
        false_alarms: 0,
        detection_latency: None,
        transitions: 0,
        time_degraded: 0,
        time_stopped: 0,
        crc_staleness_bound: config.harden.staleness_bound(layer_checksums(model).len()),
        repair_latency: None,
        sidecar_overhead_pct,
    };
    let mut first_fault_at: Option<u64> = None;

    for k in 0..config.decisions {
        let input = &inputs[(k % inputs.len() as u64) as usize];
        let clean_class = reference.classify(input)?.class;

        let mut struck = false;
        if class.is_weight() && strike_rng.chance(rate) {
            let bits = if class == FaultClass::WeightMultiBitFlip {
                3
            } else {
                1
            };
            let mut e = handle.lock().expect("campaign engine");
            injector.flip_weight_bits(e.model_mut(), 1, bits)?;
            if let Some(qh) = &qhandle {
                // The diverse replica takes its own independent SEU
                // stream — shared strikes would be a common-cause fault
                // diverse redundancy is not meant to mask.
                let mut qe = qh.lock().expect("campaign quantised engine");
                qinjector.flip_qweight_bits(qe.model_mut(), 1, bits)?;
            }
            struck = true;
        }

        // Pillar-1 input supervision screens the same faulted input view
        // the hardened engine will see; a rejection is pushed to the sink
        // *before* the decision so `decide` drains it as this decision's
        // health evidence.
        if let (Some(envelope), Some(plan)) = (&envelope, &plan) {
            let preview = plan.preview_input(k, input);
            if !envelope.contains(&preview)? {
                pipeline.report_health(HealthEvent::SupervisorReject {
                    monitor: "odd_envelope",
                });
            }
        }

        let decision = pipeline.decide(input)?;

        let injected = struck || {
            let e = handle.lock().expect("campaign engine");
            !e.last_injections().is_empty()
        };
        let detected = !pipeline.last_health_events().is_empty();
        let corrected = pipeline
            .last_health_events()
            .iter()
            .any(|e| matches!(e, HealthEvent::CorrectedFault { .. }));

        if struck {
            // Restore pristine weights; the golden checksums were never
            // rebaselined, so the next decision starts clean.
            let mut e = handle.lock().expect("campaign engine");
            *e.model_mut() = pristine.clone();
            drop(e);
            if let (Some(qh), Some(pq)) = (&qhandle, &pristine_q) {
                let mut qe = qh.lock().expect("campaign quantised engine");
                *qe.model_mut() = pq.clone();
            }
        }

        if injected {
            report.faulted += 1;
            first_fault_at.get_or_insert(k);
            if detected {
                report.detected += 1;
            }
            let acted = decision.action.class();
            let wrong = acted.is_some_and(|c| c != clean_class);
            if wrong {
                report.corrupted += 1;
                if !detected && decision.action.is_proceed() {
                    report.silent += 1;
                }
            }
        } else if detected {
            report.false_alarms += 1;
        }
        if detected && report.detection_latency.is_none() {
            if let Some(first) = first_fault_at {
                report.detection_latency = Some(k - first);
            }
        }
        if corrected {
            report.corrected += 1;
            if report.repair_latency.is_none() {
                if let Some(first) = first_fault_at {
                    report.repair_latency = Some(k - first);
                }
            }
        }
    }

    let health = pipeline.health().expect("campaign pipeline has health");
    report.transitions = health.transitions().len();
    report.time_degraded = health.time_in(HealthState::Degraded);
    report.time_stopped = health.time_in(HealthState::SafeStop);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safex_nn::model::ModelBuilder;
    use safex_tensor::{DetRng, Shape};

    /// A small MLP plus an input stream covering its nominal range.
    fn fixture() -> (Model, Vec<Vec<f32>>) {
        let mut rng = DetRng::new(77);
        let model = ModelBuilder::new(Shape::vector(8))
            .dense(12, &mut rng)
            .unwrap()
            .relu()
            .dense(4, &mut rng)
            .unwrap()
            .softmax()
            .build()
            .unwrap();
        let inputs: Vec<Vec<f32>> = (0..32)
            .map(|_| (0..8).map(|_| rng.next_f32()).collect())
            .collect();
        (model, inputs)
    }

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            seed: 9,
            decisions: 120,
            classes: vec![FaultClass::WeightBitFlip, FaultClass::InputNoise],
            rates: vec![0.1],
            patterns: vec![CampaignPattern::MonitorActuator],
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        assert!(CampaignConfig::default().validate().is_ok());
        for bad in [
            CampaignConfig {
                decisions: 0,
                ..CampaignConfig::default()
            },
            CampaignConfig {
                classes: vec![],
                ..CampaignConfig::default()
            },
            CampaignConfig {
                rates: vec![1.5],
                ..CampaignConfig::default()
            },
            CampaignConfig {
                patterns: vec![],
                ..CampaignConfig::default()
            },
            CampaignConfig {
                workers: 0,
                ..CampaignConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn parallel_campaign_is_byte_identical_for_any_worker_count() {
        // The tentpole guarantee: partitioning cells across threads must
        // not change a single byte of the report, including when workers
        // exceed cells (8 workers, 2×2×2 = 8 cells here, also try a
        // non-dividing 3).
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 60,
            classes: vec![FaultClass::WeightBitFlip, FaultClass::InputNoise],
            rates: vec![0.0, 0.2],
            patterns: vec![CampaignPattern::Bare, CampaignPattern::MonitorActuator],
            ..quick_config()
        };
        let sequential = run(&config, &model, &inputs).unwrap();
        for workers in [2usize, 3, 4, 8] {
            let parallel = run(
                &CampaignConfig {
                    workers,
                    ..config.clone()
                },
                &model,
                &inputs,
            )
            .unwrap();
            assert_eq!(
                parallel, sequential,
                "{workers} workers diverged from sequential"
            );
        }
    }

    #[test]
    fn cells_report_the_crc_staleness_bound() {
        let (model, inputs) = fixture();
        // Full strategy on cadence 1: bound is 1 decision.
        let report = run(&quick_config(), &model, &inputs).unwrap();
        assert!(report
            .cells
            .iter()
            .all(|c| c.crc_staleness_bound == Some(1)));
        // Rotating over this model's 2 parametric layers on cadence 2:
        // bound is 4 decisions.
        let rotating = CampaignConfig {
            harden: HardenConfig {
                crc_cadence: 2,
                crc_strategy: safex_nn::CrcStrategy::Rotating,
                ..HardenConfig::default()
            },
            ..quick_config()
        };
        let report = run(&rotating, &model, &inputs).unwrap();
        assert!(report
            .cells
            .iter()
            .all(|c| c.crc_staleness_bound == Some(4)));
        // CRC disabled: no bound.
        let disabled = CampaignConfig {
            harden: HardenConfig {
                crc_cadence: 0,
                ..HardenConfig::default()
            },
            ..quick_config()
        };
        let report = run(&disabled, &model, &inputs).unwrap();
        assert!(report.cells.iter().all(|c| c.crc_staleness_bound.is_none()));
    }

    #[test]
    fn rotating_campaign_is_byte_identical_for_any_worker_count() {
        // The rotation cursor is a pure function of the global decision
        // index, so it must survive parallel cell execution too.
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 60,
            classes: vec![FaultClass::WeightBitFlip],
            rates: vec![0.2],
            patterns: vec![CampaignPattern::Bare, CampaignPattern::MonitorActuator],
            harden: HardenConfig {
                crc_cadence: 1,
                crc_strategy: safex_nn::CrcStrategy::Rotating,
                ..HardenConfig::default()
            },
            ..quick_config()
        };
        let sequential = run(&config, &model, &inputs).unwrap();
        for workers in [2usize, 4] {
            let parallel = run(
                &CampaignConfig {
                    workers,
                    ..config.clone()
                },
                &model,
                &inputs,
            )
            .unwrap();
            assert_eq!(parallel, sequential, "{workers} workers diverged");
        }
    }

    #[test]
    fn campaign_is_reproducible_by_seed() {
        let (model, inputs) = fixture();
        let config = quick_config();
        let a = run(&config, &model, &inputs).unwrap();
        let b = run(&config, &model, &inputs).unwrap();
        assert_eq!(a, b, "same seed must reproduce the full report");
        let other = run(
            &CampaignConfig {
                seed: 10,
                ..quick_config()
            },
            &model,
            &inputs,
        )
        .unwrap();
        assert_ne!(a, other, "a different seed must change the campaign");
    }

    #[test]
    fn weight_bit_flips_are_caught_by_checksums() {
        // Acceptance criterion: diagnostic coverage > 0.9 for weight
        // bit-flips at default detection settings (CRC every decision
        // catches every strike).
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 300,
            classes: vec![FaultClass::WeightBitFlip],
            ..quick_config()
        };
        let report = run(&config, &model, &inputs).unwrap();
        let cell = &report.cells[0];
        assert!(
            cell.faulted >= 10,
            "the 10% rate must actually strike: {cell:?}"
        );
        assert!(
            cell.diagnostic_coverage() > 0.9,
            "weight-flip coverage {:.3} below 0.9: {cell:?}",
            cell.diagnostic_coverage()
        );
        assert_eq!(cell.silent, 0, "detected strikes cannot be silent");
        assert_eq!(
            cell.detection_latency,
            Some(0),
            "CRC on cadence 1 detects on the strike decision"
        );
    }

    #[test]
    fn zero_rate_cell_is_a_clean_control() {
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 80,
            classes: vec![FaultClass::InputNoise],
            rates: vec![0.0],
            ..quick_config()
        };
        let report = run(&config, &model, &inputs).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.faulted, 0);
        assert_eq!(
            cell.false_alarms, 0,
            "calibrated guards must not trip clean"
        );
        assert_eq!(cell.diagnostic_coverage(), 1.0);
        assert_eq!(cell.sdc_rate(), 0.0);
        assert_eq!(cell.transitions, 0);
    }

    #[test]
    fn sweep_produces_one_cell_per_combination() {
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 40,
            classes: vec![FaultClass::WeightBitFlip, FaultClass::InputStuck],
            rates: vec![0.0, 0.2],
            patterns: vec![CampaignPattern::Bare, CampaignPattern::MonitorActuator],
            ..quick_config()
        };
        let report = run(&config, &model, &inputs).unwrap();
        assert_eq!(report.cells.len(), 8);
        assert!(report
            .cell(CampaignPattern::Bare, FaultClass::InputStuck, 0.2)
            .is_some());
        assert!(report.worst_coverage() <= 1.0);
        assert!(report.worst_sdc() >= 0.0);
    }

    #[test]
    fn input_supervision_closes_the_in_range_dropout_gap() {
        // Dropout zeroes half the (in-range) elements, so the hardened
        // engine's non-finite and guard checks mostly miss it — the gap
        // E11 measured. The ODD envelope's statistic bands catch the
        // collapsed mean/std, so supervised coverage must strictly beat
        // unsupervised coverage on the same seed.
        let (model, inputs) = fixture();
        let base = CampaignConfig {
            decisions: 200,
            classes: vec![FaultClass::InputDropout],
            rates: vec![0.2],
            ..quick_config()
        };
        let unsupervised = run(&base, &model, &inputs).unwrap();
        let supervised = run(
            &CampaignConfig {
                supervision: Some(InputSupervision::default()),
                ..base.clone()
            },
            &model,
            &inputs,
        )
        .unwrap();
        let without = unsupervised.cells[0].diagnostic_coverage();
        let with = supervised.cells[0].diagnostic_coverage();
        assert!(supervised.cells[0].faulted >= 10, "dropout must strike");
        assert!(
            with > without + 0.25,
            "supervision must add substantial coverage: {with:.3} vs {without:.3}"
        );
        // Not every burst moves the input statistics out of band — a
        // 1-element drop out of 8 is statistically invisible — so the
        // bar is "most of the gap closed", not perfection.
        assert!(
            with > 0.6,
            "envelope should catch most dropout bursts ({with:.3} vs {without:.3} unsupervised)"
        );
        assert_eq!(
            supervised.cells[0].false_alarms, 0,
            "training inputs sit inside the fitted envelope by construction"
        );
    }

    #[test]
    fn supervision_config_is_validated() {
        for bad in [
            InputSupervision {
                margin: f64::NAN,
                ..InputSupervision::default()
            },
            InputSupervision {
                margin: -0.1,
                ..InputSupervision::default()
            },
            InputSupervision {
                violation_budget: 1.0,
                ..InputSupervision::default()
            },
        ] {
            let config = CampaignConfig {
                supervision: Some(bad),
                ..CampaignConfig::default()
            };
            assert!(config.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn diverse_2oo3_strikes_both_implementations_and_masks() {
        // The diverse cell injects independent SEU streams into the f32
        // and Q16.16 replicas. Both hardened engines checksum their own
        // weights, so coverage stays high — and the 2oo3 voter masks
        // single-channel corruption, so nothing silent gets through.
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 200,
            classes: vec![FaultClass::WeightBitFlip],
            rates: vec![0.15],
            patterns: vec![CampaignPattern::DiverseTwoOutOfThree],
            ..quick_config()
        };
        let report = run(&config, &model, &inputs).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.pattern, "diverse_2oo3");
        assert!(cell.faulted >= 10, "strikes must land: {cell:?}");
        assert!(
            cell.diagnostic_coverage() > 0.9,
            "dual-implementation CRC coverage {:.3} below 0.9: {cell:?}",
            cell.diagnostic_coverage()
        );
        assert_eq!(cell.silent, 0, "2oo3 must not pass silent corruption");
    }

    #[test]
    fn diverse_and_supervised_cells_are_deterministic_across_workers() {
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 80,
            classes: vec![FaultClass::WeightBitFlip, FaultClass::InputDropout],
            rates: vec![0.1, 0.3],
            patterns: vec![
                CampaignPattern::MonitorActuator,
                CampaignPattern::DiverseTwoOutOfThree,
            ],
            supervision: Some(InputSupervision::default()),
            ..quick_config()
        };
        let sequential = run(&config, &model, &inputs).unwrap();
        for workers in [2usize, 4, 8] {
            let parallel = run(
                &CampaignConfig {
                    workers,
                    ..config.clone()
                },
                &model,
                &inputs,
            )
            .unwrap();
            assert_eq!(parallel, sequential, "{workers} workers diverged");
        }
        let again = run(&config, &model, &inputs).unwrap();
        assert_eq!(again, sequential, "rerun must reproduce byte-for-byte");
    }

    #[test]
    fn repair_converts_weight_seu_from_degrade_to_keep_serving() {
        use safex_nn::EccConfig;
        // E13's core claim: with the ECC sidecar enabled (and a warning
        // budget that tolerates corrected faults), every single-bit
        // weight SEU is corrected in place — zero silent corruption,
        // zero wrong decisions, zero time outside Nominal — at a
        // measured ~6 % memory overhead. Without repair the very same
        // strike stream walks the degradation ladder.
        let (model, inputs) = fixture();
        let base = CampaignConfig {
            decisions: 200,
            classes: vec![FaultClass::WeightBitFlip],
            rates: vec![0.15],
            ..quick_config()
        };
        let without = run(&base, &model, &inputs).unwrap();
        let with = run(
            &CampaignConfig {
                harden: HardenConfig {
                    repair: Some(EccConfig::default()),
                    ..HardenConfig::default()
                },
                health: HealthConfig {
                    warn_budget: 8,
                    resume_after: 8,
                    ..HealthConfig::default()
                },
                ..base.clone()
            },
            &model,
            &inputs,
        )
        .unwrap();
        let cell = &with.cells[0];
        assert!(cell.faulted >= 10, "strikes must land: {cell:?}");
        assert_eq!(
            cell.corrected, cell.faulted,
            "every single-bit strike is corrected: {cell:?}"
        );
        assert!(
            cell.diagnostic_coverage() > 0.99,
            "corrections still count as detections: {cell:?}"
        );
        assert_eq!(cell.corrupted, 0, "repair lands before the layer loop");
        assert_eq!(cell.silent, 0, "{cell:?}");
        assert_eq!(
            cell.repair_latency,
            Some(0),
            "CRC cadence 1 repairs on the strike decision"
        );
        assert_eq!(cell.time_degraded, 0, "budgeted warnings never degrade");
        assert_eq!(cell.time_stopped, 0, "budgeted warnings never stop");
        assert!(
            (5.0..10.0).contains(&cell.sidecar_overhead_pct),
            "interleaved parity ≈ 6.25 %: {cell:?}"
        );
        // The detect-only baseline pays for the same strikes on the
        // ladder instead.
        let baseline = &without.cells[0];
        assert_eq!(baseline.corrected, 0);
        assert_eq!(baseline.sidecar_overhead_pct, 0.0);
        assert_eq!(baseline.repair_latency, None);
        assert!(
            baseline.time_degraded > 0 || baseline.time_stopped > 0,
            "without repair the ladder must move: {baseline:?}"
        );
    }

    #[test]
    fn sustained_faults_drive_the_degradation_ladder() {
        // A high weight-strike rate must walk the pipeline down the
        // ladder: transitions recorded, time spent outside nominal.
        let (model, inputs) = fixture();
        let config = CampaignConfig {
            decisions: 150,
            classes: vec![FaultClass::WeightBitFlip],
            rates: vec![0.5],
            ..quick_config()
        };
        let report = run(&config, &model, &inputs).unwrap();
        let cell = &report.cells[0];
        assert!(cell.transitions >= 2, "ladder must move: {cell:?}");
        assert!(cell.time_degraded > 0, "{cell:?}");
        assert!(cell.time_stopped > 0, "{cell:?}");
    }
}
